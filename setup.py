"""Legacy setup shim.

The environment's setuptools is too old for PEP 660 editable installs without
the ``wheel`` package; ``python setup.py develop`` (or ``pip install -e .
--no-build-isolation``) works through this shim.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The engine is dependency-free: without numpy the execution kernels fall
    # back to their pure-Python backend (identical results, slower wall
    # clock) and workload dataset generation raises a clear error.  The
    # `fast` extra enables the array kernel backend and dataset generation.
    install_requires=[],
    extras_require={"fast": ["numpy>=1.24"]},
    python_requires=">=3.10",
)
