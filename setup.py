"""Legacy setup shim.

The environment's setuptools is too old for PEP 660 editable installs without
the ``wheel`` package; ``python setup.py develop`` (or ``pip install -e .
--no-build-isolation``) works through this shim.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    python_requires=">=3.10",
)
