"""Non-clustered B+-tree index.

The paper's indexed range selection rebuilds the sequential selection after
"constructing a non-clustered index on R.a2".  A non-clustered index stores
``(key, record-id)`` pairs in its leaves; a range probe descends from the
root, then walks the leaf chain, and fetches each qualifying record from the
heap file by its record id.  Because heap placement is unrelated to key
order, those fetches have far less spatial locality than the sequential scan
-- which is the paper's explanation for the indexed selection's larger memory
stall component despite touching fewer records (Section 5.1).

The tree here is a textbook B+-tree with:

* internal nodes holding separator keys and child pointers,
* leaf nodes holding sorted ``(key, rid)`` pairs and a next-leaf link,
* duplicate keys supported (the indexed attribute ``a2`` is non-unique),
* point insertion with node splits, point deletion (lazy, no rebalancing --
  sufficient for the workloads here and clearly documented), bulk loading
  from sorted input, exact and range probes.

Every node is assigned a virtual address in the ``index`` region of the
simulated address space so index traversals generate realistic data accesses
for the cache model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..storage.address_space import AddressSpace
from ..storage.page import RecordId


class BTreeError(RuntimeError):
    """Raised on invalid index operations."""


#: Default fan-out values sized so that a node occupies roughly half a page,
#: giving realistic tree heights for the scaled-down relations.
DEFAULT_LEAF_CAPACITY = 64
DEFAULT_INTERNAL_CAPACITY = 64

#: Bytes charged per leaf/internal entry when sizing nodes in the simulated
#: address space (key + pointer + overhead).
_ENTRY_BYTES = 16
_NODE_HEADER_BYTES = 32


class _Node:
    """Common bookkeeping for internal and leaf nodes."""

    __slots__ = ("address", "keys")

    def __init__(self, address: int) -> None:
        self.address = address
        self.keys: List = []

    def entry_address(self, position: int) -> int:
        """Simulated address of the ``position``-th entry in this node."""
        return self.address + _NODE_HEADER_BYTES + position * _ENTRY_BYTES


class _LeafNode(_Node):
    __slots__ = ("rids", "next_leaf")

    def __init__(self, address: int) -> None:
        super().__init__(address)
        self.rids: List[RecordId] = []
        self.next_leaf: Optional["_LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        return True


class _InternalNode(_Node):
    __slots__ = ("children",)

    def __init__(self, address: int) -> None:
        super().__init__(address)
        self.children: List[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


@dataclass(frozen=True)
class IndexProbeStep:
    """One node visit during a probe, for trace generation.

    ``address`` is the address of the entry that the search examined last in
    the node (binary search touches a handful of entries; the executor
    charges the node header plus this entry, a good model of the 1--2 cache
    lines a real node search touches).
    """

    node_address: int
    entry_address: int
    is_leaf: bool


@dataclass(frozen=True)
class IndexMatch:
    """One qualifying ``(key, rid)`` pair returned by a range probe."""

    key: object
    rid: RecordId
    entry_address: int


class BTreeIndex:
    """A non-clustered B+-tree mapping keys to heap record ids."""

    def __init__(self,
                 name: str,
                 address_space: AddressSpace,
                 leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
                 internal_capacity: int = DEFAULT_INTERNAL_CAPACITY,
                 unique: bool = False) -> None:
        if leaf_capacity < 2 or internal_capacity < 3:
            raise BTreeError("node capacities are too small")
        self.name = name
        self.address_space = address_space
        self.leaf_capacity = leaf_capacity
        self.internal_capacity = internal_capacity
        self.unique = unique
        self._height = 1
        self._entry_count = 0
        self._node_count = 0
        self._root: _Node = self._new_leaf()

    # --------------------------------------------------------- construction
    def _allocate_node_address(self, capacity: int) -> int:
        size = _NODE_HEADER_BYTES + capacity * _ENTRY_BYTES
        return self.address_space.allocate("index", size, alignment=64)

    def _new_leaf(self) -> _LeafNode:
        self._node_count += 1
        return _LeafNode(self._allocate_node_address(self.leaf_capacity))

    def _new_internal(self) -> _InternalNode:
        self._node_count += 1
        return _InternalNode(self._allocate_node_address(self.internal_capacity))

    # -------------------------------------------------------------- metrics
    @property
    def height(self) -> int:
        return self._height

    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def node_count(self) -> int:
        return self._node_count

    # ---------------------------------------------------------- bulk loading
    def bulk_load(self, entries: Iterable[Tuple[object, RecordId]]) -> None:
        """Build the tree bottom-up from (key, rid) pairs.

        The input is sorted internally; bulk loading an already-populated
        index raises, matching the create-index-then-query usage of the
        paper's experiments.
        """
        if self._entry_count:
            raise BTreeError("bulk_load requires an empty index")
        pairs = sorted(entries, key=lambda kv: kv[0])
        if self.unique:
            for i in range(1, len(pairs)):
                if pairs[i][0] == pairs[i - 1][0]:
                    raise BTreeError(f"duplicate key {pairs[i][0]!r} in unique index {self.name!r}")
        if not pairs:
            return

        # Fill leaves to ~90% so subsequent inserts do not immediately split.
        fill = max(int(self.leaf_capacity * 0.9), 2)
        leaves: List[_LeafNode] = []
        for start in range(0, len(pairs), fill):
            leaf = self._new_leaf()
            chunk = pairs[start:start + fill]
            leaf.keys = [key for key, _ in chunk]
            leaf.rids = [rid for _, rid in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        self._entry_count = len(pairs)

        # Build internal levels until a single root remains.
        level: List[_Node] = list(leaves)
        height = 1
        internal_fill = max(int(self.internal_capacity * 0.9), 3)
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), internal_fill):
                children = level[start:start + internal_fill]
                node = self._new_internal()
                node.children = list(children)
                node.keys = [self._smallest_key(child) for child in children[1:]]
                parents.append(node)
            level = parents
            height += 1
        self._root = level[0]
        self._height = height

    @staticmethod
    def _smallest_key(node: _Node):
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node.keys[0]

    # -------------------------------------------------------------- insert
    def insert(self, key, rid: RecordId) -> None:
        """Insert one entry, splitting nodes as needed."""
        result = self._insert_into(self._root, key, rid)
        if result is not None:
            separator, new_node = result
            new_root = self._new_internal()
            new_root.keys = [separator]
            new_root.children = [self._root, new_node]
            self._root = new_root
            self._height += 1
        self._entry_count += 1

    def _insert_into(self, node: _Node, key, rid: RecordId):
        if node.is_leaf:
            return self._insert_into_leaf(node, key, rid)  # type: ignore[arg-type]
        assert isinstance(node, _InternalNode)
        child_index = bisect.bisect_right(node.keys, key)
        result = self._insert_into(node.children[child_index], key, rid)
        if result is None:
            return None
        separator, new_child = result
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, new_child)
        if len(node.children) <= self.internal_capacity:
            return None
        # Split the internal node.
        mid = len(node.keys) // 2
        up_key = node.keys[mid]
        sibling = self._new_internal()
        sibling.keys = node.keys[mid + 1:]
        sibling.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return up_key, sibling

    def _insert_into_leaf(self, leaf: _LeafNode, key, rid: RecordId):
        position = bisect.bisect_right(leaf.keys, key)
        if self.unique and position > 0 and leaf.keys[position - 1] == key:
            raise BTreeError(f"duplicate key {key!r} in unique index {self.name!r}")
        leaf.keys.insert(position, key)
        leaf.rids.insert(position, rid)
        if len(leaf.keys) <= self.leaf_capacity:
            return None
        # Split the leaf.
        mid = len(leaf.keys) // 2
        sibling = self._new_leaf()
        sibling.keys = leaf.keys[mid:]
        sibling.rids = leaf.rids[mid:]
        sibling.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:mid]
        leaf.rids = leaf.rids[:mid]
        leaf.next_leaf = sibling
        return sibling.keys[0], sibling

    # -------------------------------------------------------------- delete
    def delete(self, key, rid: Optional[RecordId] = None) -> int:
        """Delete entries with ``key`` (optionally only a specific rid).

        Returns the number of entries removed.  Underfull nodes are not
        rebalanced (lazy deletion); the tree stays correct for searches.
        """
        leaf, position = self._find_leaf(key)
        removed = 0
        while leaf is not None:
            while position < len(leaf.keys) and leaf.keys[position] == key:
                if rid is None or leaf.rids[position] == rid:
                    del leaf.keys[position]
                    del leaf.rids[position]
                    removed += 1
                    if rid is not None:
                        self._entry_count -= removed
                        return removed
                else:
                    position += 1
            if position < len(leaf.keys):
                break
            leaf = leaf.next_leaf
            position = 0
        self._entry_count -= removed
        return removed

    # -------------------------------------------------------------- search
    def _find_leaf(self, key) -> Tuple[_LeafNode, int]:
        node = self._root
        while not node.is_leaf:
            assert isinstance(node, _InternalNode)
            child_index = bisect.bisect_left(node.keys, key)
            node = node.children[child_index]
        assert isinstance(node, _LeafNode)
        return node, bisect.bisect_left(node.keys, key)

    def search(self, key) -> List[RecordId]:
        """Exact-match lookup; returns every rid stored under ``key``."""
        return [match.rid for match in self.range_search(key, key,
                                                         include_low=True, include_high=True)]

    def descend(self, key) -> List[IndexProbeStep]:
        """Return the root-to-leaf node visits for a probe of ``key``.

        The executor replays these visits as data accesses so the cache model
        sees the index traversal pattern.
        """
        steps: List[IndexProbeStep] = []
        node = self._root
        while not node.is_leaf:
            assert isinstance(node, _InternalNode)
            child_index = bisect.bisect_left(node.keys, key)
            probe_pos = min(child_index, max(len(node.keys) - 1, 0))
            steps.append(IndexProbeStep(node.address, node.entry_address(probe_pos), False))
            node = node.children[child_index]
        assert isinstance(node, _LeafNode)
        position = bisect.bisect_left(node.keys, key)
        probe_pos = min(position, max(len(node.keys) - 1, 0))
        steps.append(IndexProbeStep(node.address, node.entry_address(probe_pos), True))
        return steps

    def range_search(self, low, high,
                     include_low: bool = True,
                     include_high: bool = False) -> Iterator[IndexMatch]:
        """Yield entries with ``low <= key <= high`` (bounds configurable).

        ``None`` for either bound means unbounded on that side.
        """
        if low is None:
            leaf: Optional[_LeafNode] = self._leftmost_leaf()
            position = 0
        else:
            leaf, position = self._find_leaf(low)
            if not include_low:
                while (leaf is not None and position < len(leaf.keys)
                       and leaf.keys[position] == low):
                    position += 1
                    if position >= len(leaf.keys):
                        leaf = leaf.next_leaf
                        position = 0
        while leaf is not None:
            keys = leaf.keys
            while position < len(keys):
                key = keys[position]
                if high is not None:
                    if key > high or (key == high and not include_high):
                        return
                yield IndexMatch(key=key, rid=leaf.rids[position],
                                 entry_address=leaf.entry_address(position))
                position += 1
            leaf = leaf.next_leaf
            position = 0

    def _leftmost_leaf(self) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    # ------------------------------------------------------------ validation
    def keys_in_order(self) -> List:
        """All keys in leaf order (ascending); used by property tests."""
        out: List = []
        leaf: Optional[_LeafNode] = self._leftmost_leaf()
        while leaf is not None:
            out.extend(leaf.keys)
            leaf = leaf.next_leaf
        return out

    def check_invariants(self) -> None:
        """Verify structural invariants; raises :class:`BTreeError` on violation."""
        keys = self.keys_in_order()
        if keys != sorted(keys):
            raise BTreeError("leaf chain is not sorted")
        if len(keys) != self._entry_count:
            raise BTreeError(
                f"entry_count {self._entry_count} does not match leaf entries {len(keys)}")
        self._check_node(self._root, depth=1)

    def _check_node(self, node: _Node, depth: int) -> int:
        if node.is_leaf:
            if depth != self._height:
                raise BTreeError("leaves are not all at the same depth")
            return depth
        assert isinstance(node, _InternalNode)
        if len(node.children) != len(node.keys) + 1:
            raise BTreeError("internal node child/key count mismatch")
        for child in node.children:
            self._check_node(child, depth + 1)
        return depth

    def __len__(self) -> int:
        return self._entry_count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"BTreeIndex({self.name!r}, {self._entry_count} entries, "
                f"height={self._height})")
