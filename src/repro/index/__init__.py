"""Secondary index structures (non-clustered B+-tree)."""

from .btree import (BTreeError, BTreeIndex, IndexMatch, IndexProbeStep,
                    DEFAULT_INTERNAL_CAPACITY, DEFAULT_LEAF_CAPACITY)

__all__ = [
    "BTreeError", "BTreeIndex", "IndexMatch", "IndexProbeStep",
    "DEFAULT_INTERNAL_CAPACITY", "DEFAULT_LEAF_CAPACITY",
]
