"""Catalog resolution helpers shared by both executors.

Turning a plan node into an operator requires resolving (possibly
qualified) output-column requests against a table's schema and locating
the index a plan demands.  Both the tuple and the vectorized builders need
these, and the vectorized engine re-instantiates inner operators once per
outer *batch* (block nested-loop rescans), so the resolution results are
also memoized per plan execution on the
:class:`~repro.execution.context.ExecutionContext` -- this module holds the
uncached logic so that :mod:`.executor`, :mod:`.vectorized` and
:mod:`.context` can share it without an import cycle.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..storage.catalog import Table


class ExecutorError(RuntimeError):
    """Raised when a plan cannot be instantiated against the catalog."""


def _columns_for_table(table: Table, columns: Sequence[str]) -> Tuple[str, ...]:
    """Subset of (possibly qualified) columns that belong to ``table``.

    Qualified names are matched against the table: ``"S.a3"`` belongs to
    table ``S`` only, even when another table also declares a column
    ``a3``.  The caller's request order is preserved (first occurrence of a
    duplicate wins), so the operator's output-column tuple is deterministic
    for duplicate and mixed qualified/unqualified requests.
    """
    names = set(table.schema.column_names())
    out: List[str] = []
    seen = set()
    for column in columns:
        qualifier, _, short = column.rpartition(".")
        if qualifier and qualifier != table.name:
            continue
        if short in names and short not in seen:
            seen.add(short)
            out.append(short)
    return tuple(out)


def _index_for(table: Table, column: str):
    index = table.index_on(column.split(".")[-1])
    if index is None:
        raise ExecutorError(f"plan requires an index on {table.name}.{column} "
                            f"but none exists")
    return index
