"""Physical operators (Volcano-style iterators).

Each operator produces rows as dictionaries keyed by unqualified column name
and charges the execution context for the routines it runs: fetching the next
record from a page, evaluating the predicate, probing the hash table, fetching
a record by rid, and so on.  The actual relational work (reading bytes from
slotted pages, maintaining hash tables, walking B+-tree leaves) is performed
for real -- the query answers come out of the same code that generates the
hardware trace, so a wrong simulation shows up as a wrong query result in the
tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..index.btree import BTreeIndex
from ..query.expressions import Aggregate, AggregateState, Expression
from ..storage.catalog import Table
from ..storage.page import RecordId
from .context import ExecutionContext

Row = Dict[str, object]


class OperatorError(RuntimeError):
    """Raised on operator misconfiguration."""


def row_value(row: Mapping[str, object], column: str):
    """Fetch ``column`` from a row, accepting qualified or unqualified names."""
    if column in row:
        return row[column]
    short = column.split(".")[-1]
    if short in row:
        return row[short]
    raise OperatorError(f"row {sorted(row)} has no column {column!r}")


class Operator:
    """Base class: an iterable of rows."""

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        return self.rows()


class SeqScanOperator(Operator):
    """Sequential scan with an optional filter predicate.

    ``next_operation`` selects which profiled routine is charged per record
    (the inner side of a nested-loop join uses the cheaper
    ``inner_scan_next`` path, everything else uses ``scan_next``).
    """

    def __init__(self,
                 table: Table,
                 ctx: ExecutionContext,
                 predicate: Optional[Expression] = None,
                 output_columns: Sequence[str] = (),
                 next_operation: str = "scan_next",
                 count_records: bool = True) -> None:
        self.table = table
        self.ctx = ctx
        self.predicate = predicate
        self.next_operation = next_operation
        self.count_records = count_records
        predicate_columns = sorted(c.split(".")[-1] for c in (predicate.columns() if predicate else ()))
        outputs = sorted({c.split(".")[-1] for c in output_columns})
        self.predicate_columns: Tuple[str, ...] = tuple(predicate_columns)
        self.extra_columns: Tuple[str, ...] = tuple(c for c in outputs if c not in predicate_columns)

    def rows(self) -> Iterator[Row]:
        ctx = self.ctx
        table = self.table
        layout = table.layout
        predicate = self.predicate
        for page, slots in table.heap.scan_pages():
            ctx.visit("page_boundary")
            for slot in slots:
                ctx.visit(self.next_operation)
                entry = table.heap.fetch(RecordId(page.page_number, slot))
                row: Row = {}
                if self.predicate_columns:
                    row.update(ctx.read_fields(entry, layout, self.predicate_columns))
                qualifies = True
                if predicate is not None:
                    qualifies = bool(predicate.evaluate(row))
                    ctx.visit("predicate", data_taken=qualifies)
                if qualifies:
                    if self.extra_columns:
                        row.update(ctx.read_fields(entry, layout, self.extra_columns))
                    ctx.row_produced()
                    yield row
                if self.count_records:
                    ctx.record_done()


class IndexRangeScanOperator(Operator):
    """Non-clustered index range scan: descend, walk leaves, fetch by rid."""

    def __init__(self,
                 table: Table,
                 index: BTreeIndex,
                 ctx: ExecutionContext,
                 low, high,
                 include_low: bool = False,
                 include_high: bool = False,
                 residual_predicate: Optional[Expression] = None,
                 output_columns: Sequence[str] = ()) -> None:
        self.table = table
        self.index = index
        self.ctx = ctx
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.residual_predicate = residual_predicate
        residual_columns = sorted(c.split(".")[-1]
                                  for c in (residual_predicate.columns() if residual_predicate else ()))
        outputs = sorted({c.split(".")[-1] for c in output_columns})
        self.fetch_columns: Tuple[str, ...] = tuple(dict.fromkeys(list(residual_columns) + outputs))

    def rows(self) -> Iterator[Row]:
        ctx = self.ctx
        table = self.table
        layout = table.layout

        # Root-to-leaf descent for the lower bound.
        descent_key = self.low if self.low is not None else self.high
        for step in self.index.descend(descent_key):
            ctx.visit("index_descend_node")
            ctx.read_address(step.node_address, 8)
            ctx.read_address(step.entry_address, 16)

        for match in self.index.range_search(self.low, self.high,
                                             include_low=self.include_low,
                                             include_high=self.include_high):
            ctx.visit("leaf_advance", data_taken=True)
            ctx.read_address(match.entry_address, 16)

            ctx.visit("rid_fetch")
            entry = table.heap.fetch(match.rid)
            row: Row = {self.index.name.split("_")[1] if "_" in self.index.name else "key": match.key}
            if self.fetch_columns:
                row.update(ctx.read_fields(entry, layout, self.fetch_columns))
            qualifies = True
            if self.residual_predicate is not None:
                qualifies = bool(self.residual_predicate.evaluate(row))
                ctx.visit("predicate", data_taken=qualifies)
            if qualifies:
                ctx.row_produced()
                yield row
            ctx.record_done()


class IndexPointLookupOperator(Operator):
    """Exact-match index lookup returning the matching heap rows."""

    def __init__(self, table: Table, index: BTreeIndex, ctx: ExecutionContext,
                 value, output_columns: Sequence[str] = ()) -> None:
        self.table = table
        self.index = index
        self.ctx = ctx
        self.value = value
        self.output_columns = tuple(sorted({c.split(".")[-1] for c in output_columns}))

    def rows(self) -> Iterator[Row]:
        ctx = self.ctx
        layout = self.table.layout
        for step in self.index.descend(self.value):
            ctx.visit("index_descend_node")
            ctx.read_address(step.node_address, 8)
            ctx.read_address(step.entry_address, 16)
        for match in self.index.range_search(self.value, self.value,
                                             include_low=True, include_high=True):
            ctx.visit("leaf_advance", data_taken=True)
            ctx.read_address(match.entry_address, 16)
            ctx.visit("rid_fetch")
            entry = self.table.heap.fetch(match.rid)
            row: Row = {}
            columns = self.output_columns or self.table.schema.column_names()
            row.update(ctx.read_fields(entry, layout, columns))
            row["__rid__"] = match.rid
            ctx.row_produced()
            yield row
        ctx.record_done()


class HashJoinOperator(Operator):
    """In-memory hash join: build on one input, probe with the other."""

    #: Bytes charged per hash-table bucket/entry in the workspace region.
    ENTRY_BYTES = 16

    def __init__(self,
                 probe: Operator,
                 build: Operator,
                 probe_column: str,
                 build_column: str,
                 ctx: ExecutionContext,
                 build_row_estimate: int = 1024) -> None:
        self.probe = probe
        self.build = build
        self.probe_column = probe_column.split(".")[-1]
        self.build_column = build_column.split(".")[-1]
        self.ctx = ctx
        self.build_row_estimate = max(build_row_estimate, 16)

    def rows(self) -> Iterator[Row]:
        ctx = self.ctx
        hash_area = ctx.allocate_workspace(self.build_row_estimate * self.ENTRY_BYTES)
        buckets = self.build_row_estimate

        # Build phase.
        hash_table: Dict[object, List[Row]] = {}
        for row in self.build.rows():
            key = row_value(row, self.build_column)
            ctx.visit("hash_build")
            bucket_address = hash_area + (hash(key) % buckets) * self.ENTRY_BYTES
            ctx.write_address(bucket_address, self.ENTRY_BYTES)
            hash_table.setdefault(key, []).append(row)

        # Probe phase.
        for row in self.probe.rows():
            key = row_value(row, self.probe_column)
            bucket_address = hash_area + (hash(key) % buckets) * self.ENTRY_BYTES
            ctx.read_address(bucket_address, self.ENTRY_BYTES)
            matches = hash_table.get(key)
            ctx.visit("hash_probe", data_taken=matches is not None)
            if not matches:
                continue
            for build_row in matches:
                ctx.visit("join_output")
                joined = dict(build_row)
                joined.update(row)
                ctx.row_produced()
                yield joined


class NestedLoopJoinOperator(Operator):
    """Tuple-at-a-time nested-loop join (the inner input is rescanned).

    Quadratic; included for completeness and for the planner's
    ``nested_loop`` policy, but none of the default system profiles choose it
    for the microbenchmark join (the commercial systems all used hash- or
    sort-based plans for the no-index equijoin).
    """

    def __init__(self,
                 outer: Operator,
                 inner_factory: Callable[[], Operator],
                 outer_column: str,
                 inner_column: str,
                 ctx: ExecutionContext) -> None:
        self.outer = outer
        self.inner_factory = inner_factory
        self.outer_column = outer_column.split(".")[-1]
        self.inner_column = inner_column.split(".")[-1]
        self.ctx = ctx

    def rows(self) -> Iterator[Row]:
        ctx = self.ctx
        for outer_row in self.outer.rows():
            outer_key = row_value(outer_row, self.outer_column)
            for inner_row in self.inner_factory().rows():
                matches = row_value(inner_row, self.inner_column) == outer_key
                ctx.visit("inner_scan_next", data_taken=matches)
                if matches:
                    ctx.visit("join_output")
                    joined = dict(inner_row)
                    joined.update(outer_row)
                    ctx.row_produced()
                    yield joined


class IndexNestedLoopJoinOperator(Operator):
    """Nested-loop join probing an index on the inner table per outer row."""

    def __init__(self,
                 outer: Operator,
                 inner_table: Table,
                 inner_index: BTreeIndex,
                 outer_column: str,
                 ctx: ExecutionContext,
                 inner_output_columns: Sequence[str] = ()) -> None:
        self.outer = outer
        self.inner_table = inner_table
        self.inner_index = inner_index
        self.outer_column = outer_column.split(".")[-1]
        self.inner_output_columns = tuple(sorted({c.split(".")[-1] for c in inner_output_columns}))
        self.ctx = ctx

    def rows(self) -> Iterator[Row]:
        ctx = self.ctx
        layout = self.inner_table.layout
        for outer_row in self.outer.rows():
            key = row_value(outer_row, self.outer_column)
            for step in self.inner_index.descend(key):
                ctx.visit("index_descend_node")
                ctx.read_address(step.node_address, 8)
                ctx.read_address(step.entry_address, 16)
            matched = False
            for match in self.inner_index.range_search(key, key, include_low=True,
                                                       include_high=True):
                matched = True
                ctx.visit("leaf_advance", data_taken=True)
                ctx.read_address(match.entry_address, 16)
                ctx.visit("rid_fetch")
                entry = self.inner_table.heap.fetch(match.rid)
                joined = dict(outer_row)
                if self.inner_output_columns:
                    joined.update(ctx.read_fields(entry, layout, self.inner_output_columns))
                ctx.visit("join_output")
                ctx.row_produced()
                yield joined
            if not matched:
                ctx.visit("leaf_advance", data_taken=False)


class ScalarAggregateOperator(Operator):
    """Scalar (non-grouped) aggregation over the child rows."""

    #: Bytes of accumulator state charged per aggregate.
    STATE_BYTES = 32

    def __init__(self, child: Operator, aggregates: Sequence[Aggregate],
                 ctx: ExecutionContext) -> None:
        if not aggregates:
            raise OperatorError("ScalarAggregateOperator needs at least one aggregate")
        self.child = child
        self.aggregates = tuple(aggregates)
        self.ctx = ctx

    def rows(self) -> Iterator[Row]:
        ctx = self.ctx
        state_base = ctx.allocate_workspace(len(self.aggregates) * self.STATE_BYTES)
        states = [AggregateState(agg) for agg in self.aggregates]
        for row in self.child.rows():
            ctx.visit("agg_update")
            for position, (agg, state) in enumerate(zip(self.aggregates, states)):
                address = state_base + position * self.STATE_BYTES
                ctx.read_address(address, 8)
                value = None if agg.column is None else row_value(row, agg.column)
                state.update(value if agg.column is not None else 1)
                ctx.write_address(address, 8)
        yield {agg.label: state.result() for agg, state in zip(self.aggregates, states)}
