"""Execution context: the bridge between operators and the simulated hardware.

Every physical operator runs against an :class:`ExecutionContext`, which owns

* the :class:`~repro.hardware.processor.SimulatedProcessor` being driven,
* the system profile and its :class:`~repro.execution.code_layout.CodeLayout`,
* the system's private *workspace* (hash areas, aggregation state, scratch
  structures) in the simulated address space, and
* the bookkeeping for cold-code rotation, bulk-branch extrapolation and
  deterministic pseudo-random branch outcomes.

Operators interact with it through a handful of calls:

``visit(operation, data_taken=...)``
    Charge one invocation of an executor routine: fetch its hot and cold
    instruction lines, retire its instructions, account its bulk memory
    references, touch the private working set, execute its branch sites and
    charge its resource-stall cycles.

``read_fields(entry, layout, columns)`` / ``read_record(entry, layout)``
    Issue the data-side accesses for a record according to the profile's
    record-access style, and decode the requested column values.

``read_address(addr, size)`` / ``write_address(addr, size)``
    Raw data accesses for index nodes, hash buckets and similar structures.

``record_done()``
    Mark a record boundary (per-record metrics, OS-interrupt pacing).

The context also owns two cross-cutting concerns of the columnar engine:

* **Span charging** (``charge_mode="span"``, the default): column-vector
  reads, full-record sweeps and workspace churn reach the simulated
  hardware as bulk strided operations instead of per-address probes.  The
  bulk paths are count-identical to the ``per_address`` mode -- same
  cache/TLB hits and misses, same LRU evolution -- they only make the
  *simulator* several times faster (the differential harness asserts the
  equivalence on every plan shape).
* **Memoized plan resolution**: ``columns_for_table``/``index_for`` cache
  schema-subset and index lookups per context, so operators that are
  re-instantiated per batch (block nested-loop inners) do not re-resolve.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..hardware.cache import _NATIVE
from ..hardware.processor import SimulatedProcessor
from ..query.plans import CHARGE_MODES, CHARGE_SPAN
from ..storage.address_space import AddressSpace
from ..storage.catalog import Table
from ..storage.heapfile import ScanEntry
from ..storage.schema import RecordLayout
from ..systems.profile import (ACCESS_FIELDS_ONLY, BRANCH_KIND_ALTERNATING,
                               BRANCH_KIND_COLD, BRANCH_KIND_DATA, BRANCH_KIND_LOOP,
                               BRANCH_KIND_RARE, SystemProfile)
from .code_layout import CodeLayout, CodeSegment, LINE_BYTES
from .kernels import PYTHON_KERNELS
from .resolve import _columns_for_table, _index_for

#: Knuth multiplicative-hash constant used for deterministic pseudo-random
#: branch outcomes (the simulation must be reproducible run to run).
_HASH_CONSTANT = 2654435761

#: Branch-site kind codes for the native visit fast path (``_cachesim.c``
#: resolves site outcomes itself; the codes mirror ``BRANCH_KIND_*``).
_NATIVE_KIND_CODES = {BRANCH_KIND_LOOP: 0, BRANCH_KIND_DATA: 1,
                      BRANCH_KIND_ALTERNATING: 2, BRANCH_KIND_RARE: 3,
                      BRANCH_KIND_COLD: 4}


def _consecutive_runs(slots: Sequence[int]) -> Iterable[Sequence[int]]:
    """Split an ascending slot list into maximal consecutive runs."""
    count = len(slots)
    if count and slots[count - 1] - slots[0] == count - 1:
        yield slots  # a single consecutive run -- the common full-scan case
        return
    start = 0
    for position in range(1, len(slots)):
        if slots[position] != slots[position - 1] + 1:
            yield slots[start:position]
            start = position
    yield slots[start:]


class ExecutionContext:
    """Per-(system, processor) execution state shared by all operators."""

    def __init__(self,
                 processor: SimulatedProcessor,
                 profile: SystemProfile,
                 address_space: AddressSpace,
                 code_layout: Optional[CodeLayout] = None,
                 charge_mode: str = CHARGE_SPAN,
                 kernels=None) -> None:
        if charge_mode not in CHARGE_MODES:
            raise ValueError(f"unknown charge mode {charge_mode!r}; "
                             f"expected one of {CHARGE_MODES}")
        self.processor = processor
        self.profile = profile
        self.address_space = address_space
        self.layout = code_layout or CodeLayout(profile, address_space)
        #: Data-plane kernel backend (:mod:`repro.execution.kernels`) the
        #: vectorized operators compute with.  Kernels never charge the
        #: simulated hardware -- they only transform plain data -- so the
        #: choice is invisible to every simulated counter.  ``None`` (the
        #: default) selects the pure-Python backend.
        self.kernels = kernels if kernels is not None else PYTHON_KERNELS
        #: ``span`` presents vector touches to the hardware as bulk
        #: operations; ``per_address`` probes one address at a time.  Both
        #: modes generate the same trace, so every cache/TLB hit and miss
        #: count is identical -- span charging is a simulator fast path, not
        #: a model change (asserted by the differential harness).
        self.charge_mode = charge_mode
        self._span_charging = charge_mode == CHARGE_SPAN

        # Private working set (cycled through on every routine invocation).
        self.workspace_base = address_space.allocate("workspace", profile.workspace_bytes,
                                                      alignment=64)
        self._workspace_cursor = 0
        self._workspace_size = profile.workspace_bytes
        self._workspace_stride = profile.workspace_touch_stride

        # Cold-code rotation state.
        self._cold_cursor = 0

        # Bulk-branch misprediction extrapolation keeps a fractional
        # remainder so small per-visit quantities do not round away.
        self._bulk_mispred_carry = 0.0

        # Deterministic per-visit counter for pseudo-random branch outcomes
        # and per-site state for alternating / rare branches.
        self._visit_counter = 0
        self._site_state: Dict[int, int] = {}

        self.rows_produced = 0

        #: Optional morsel-parallel executor
        #: (:class:`~repro.execution.parallel.ParallelExecution`).  When set
        #: with ``workers > 1``, vectorized sequential scans are built as
        #: exchange operators that fan page morsels out to workers and
        #: replay their charge tapes here, in canonical order.
        self.parallel = None

        #: Optional shared-scan coordinator
        #: (:class:`~repro.execution.parallel.SharedScanCoordinator`),
        #: attached by the serving layer for one admission round.  When set,
        #: vectorized sequential scans attach to (or record) one in-flight
        #: morsel stream per scan signature: the stream's charge tapes are
        #: replayed into this context, so the data work runs once per round
        #: while simulated counts stay identical to a solo execution.
        #: ``None`` (the default) leaves every code path untouched.
        self.shared_scans = None

        #: Backing-store region name for spill buffer pools (``None`` = the
        #: shared ``disk`` region).  The serving layer points each logical
        #: session at a private, region-size-aligned namespace so concurrent
        #: memory-budgeted joins cannot collide on backing-store pages.
        self.disk_namespace: Optional[str] = None

        #: Optional query tracer (:class:`~repro.observability.trace.Tracer`),
        #: attached by the session around one measured unit when
        #: ``tracing != "off"``.  Tracing hooks are single attribute checks
        #: against this field; ``None`` (the default) leaves every code path
        #: bit-identical to previous releases.  The tracer only *reads*
        #: hardware state (snapshot-delta spans), so even when attached it
        #: changes zero simulated counts.
        self.tracer = None

        #: Optional micro-adaptive execution manager
        #: (:class:`~repro.adaptive.AdaptiveExecution`), attached by the
        #: session when ``adaptivity != "off"``.  When set, vectorized
        #: filters decompose multi-conjunct ``And`` predicates and evaluate
        #: them in policy order with short-circuit selection vectors;
        #: ``None`` (the default) leaves every code path bit-identical to
        #: previous releases.
        self.adaptive = None

        #: Join working-memory budget in bytes (``None`` = unlimited), set by
        #: the session from ``ExecutionConfig.memory_budget_bytes``.  When
        #: set, the vectorized hash join runs its grace/hybrid spilling path
        #: and charges page traffic through :meth:`page_io_out` /
        #: :meth:`page_io_in`; ``None`` leaves every code path bit-identical
        #: to previous releases.
        self.memory_budget_bytes: Optional[int] = None
        #: Cumulative simulated page-transfer counters (all spill pools).
        self.io_stats: Dict[str, int] = {"page_reads": 0, "page_writes": 0,
                                         "bytes_read": 0, "bytes_written": 0}

        # Lazily allocated instruction block holding the synthetic branch
        # sites of adaptive conjunct evaluations (never allocated on the
        # ``off`` path, so legacy address layouts are untouched).
        self._conjunct_sites_base: Optional[int] = None

        # Routine-invocation counts: one entry per interpreted call.  A
        # batched call (:meth:`visit_batch`) counts once however many
        # records it covers -- the whole point of vectorization is that the
        # invocation count stops scaling with the record count.
        self.op_invocations: Dict[str, int] = {}

        # Memoized plan-resolution results (column subsets and index
        # lookups).  The vectorized block nested-loop join re-instantiates
        # its inner operator once per outer batch, so without the cache the
        # schema set/loop work of ``_columns_for_table`` re-runs per batch.
        self._columns_cache: Dict[Tuple[str, Tuple[str, ...]], Tuple[str, ...]] = {}
        self._index_cache: Dict[Tuple[str, str], object] = {}

        # Native visit fast path (``_cachesim.c``): the whole of
        # ``_visit_segment`` / ``_touch_workspace`` runs as one C call over
        # the live hardware state, count- and state-identical to the Python
        # code (asserted by tests/test_native_charging.py).  Eligible only
        # when the native module loaded, the processor built its state block,
        # no OS-interference model is attached (``charge_routine`` must run
        # its interrupt hook), span charging is on (``per_address`` stays a
        # pure-Python oracle of the span contract) and the workspace geometry
        # is non-degenerate.  Segment handles (plain-data views of
        # ``CodeSegment``) are built lazily per operation; ``False`` marks a
        # segment whose cold slice wraps the whole pool (Python fallback).
        self._segment_handles: Dict[str, object] = {}
        self._native_ctx = None
        if (_NATIVE is not None
                and getattr(processor, "_native_state", None) is not None
                and processor.os is None
                and self._span_charging
                and 0 < self._workspace_stride < self._workspace_size):
            self._native_ctx = _NATIVE.pack_ctx(
                self, processor._native_state, self.workspace_base,
                self._workspace_stride, self._workspace_size,
                self.layout.cold_pool_base, self.layout.cold_pool_lines,
                self._site_state, LINE_BYTES)

    # ------------------------------------------------------------ resolution
    def columns_for_table(self, table: Table, columns: Sequence[str]) -> Tuple[str, ...]:
        """Memoized :func:`~repro.execution.resolve._columns_for_table`."""
        key = (table.name, tuple(columns))
        cached = self._columns_cache.get(key)
        if cached is None:
            cached = _columns_for_table(table, columns)
            self._columns_cache[key] = cached
        return cached

    def index_for(self, table: Table, column: str):
        """Memoized :func:`~repro.execution.resolve._index_for`."""
        key = (table.name, column)
        cached = self._index_cache.get(key)
        if cached is None:
            cached = _index_for(table, column)
            self._index_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ core
    def visit(self, operation: str, data_taken: Optional[bool] = None,
              repeat: int = 1) -> None:
        """Charge ``repeat`` invocations of ``operation`` to the processor."""
        segment = self.layout.segment(operation)
        self.op_invocations[operation] = self.op_invocations.get(operation, 0) + repeat
        for _ in range(repeat):
            self._visit_segment(segment, data_taken)

    def visit_batch(self, operation: str, count: int) -> None:
        """Charge ``count`` record-iterations of ``operation`` run as one batch.

        The vectorized engine invokes a routine once per *batch* and loops a
        tight body over the records, so the interpretation overhead -- call
        dispatch, per-call setup, the cold-code excursion, the poorly
        predicted call-site branches -- is paid once and amortised.  The
        charge is therefore one full interpreted visit plus ``count - 1``
        loop-body iterations that:

        * retire only ``vector_body_fraction`` of the routine's instruction
          path (and of its workspace churn and resource stalls),
        * fetch no instruction lines (the body stays resident in L1I across
          iterations -- exactly the locality the tuple engine lacks), and
        * execute one well-predicted loop-closing branch per iteration
          instead of the routine's data/cold branch sites.
        """
        if count <= 0:
            return
        segment = self.layout.segment(operation)
        self.op_invocations[operation] = self.op_invocations.get(operation, 0) + 1
        self._visit_segment(segment, None)
        iterations = count - 1
        if iterations <= 0:
            return
        processor = self.processor
        fraction = self.profile.vector_body_fraction
        body_instructions = max(int(round(segment.instructions * fraction)), 1)
        body_uops = max(int(round(segment.uops * fraction)), 1)
        processor.retire(body_instructions * iterations, body_uops * iterations)
        if segment.data_refs:
            processor.count_data_refs(segment.data_refs * iterations)
        body_touches = int(round(segment.workspace_touches * fraction))
        self._touch_workspace(body_touches * iterations)
        # The loop-closing branch: backward, taken every iteration, predicted
        # after the first trip -- charged in bulk with no mispredictions.
        processor.count_branches(iterations, taken=iterations)
        processor.add_resource_stalls(
            segment.dependency_stall_cycles * fraction * iterations,
            segment.fu_stall_cycles * fraction * iterations,
            segment.ild_stall_cycles * fraction * iterations)

    def visit_conjunct_batch(self, operation: str, outcomes: Sequence,
                             site: int = 0, key: Optional[str] = None) -> None:
        """Charge one adaptive conjunct evaluation over ``len(outcomes)`` rows.

        The instruction/retirement side is exactly one batched routine visit
        (:meth:`visit_batch`); the branch side executes one *data-dependent*
        conditional per row whose outcome is that row's pass/fail -- the
        selection branch the tuple engine models per record and the
        vectorized engine amortised away.  ``site`` identifies the conjunct
        (not its current evaluation position), so the predictor's per-site
        state follows a conjunct across policy reorderings: a well-skewed
        conjunct trains its 2-bit counters and mispredicts rarely, a
        50%-selective one stays a coin flip.  This is what makes conjunct
        ordering measurable on the simulated branch unit.

        ``key`` (the conjunct's stable identity) routes the simulated branch
        outcomes into the adaptive statistics collector when one is attached.
        """
        count = len(outcomes)
        if count <= 0:
            return
        self.visit_batch(operation, count)
        # One synthetic site per conjunct in a dedicated instruction block,
        # 16 bytes apart: the predictor drops the low 4 address bits, so
        # sites in this block can never share a predictor entry with each
        # other or with any code segment's real branch sites (the block is
        # its own allocation).  256 sites before the block wraps -- far
        # beyond any real conjunct count.
        base = self._conjunct_sites_base
        if base is None:
            base = self._conjunct_sites_base = self.address_space.allocate(
                "code", 4096, alignment=64)
        address = base + ((site & 0xFF) << 4)
        native_state = getattr(self.processor, "_native_state", None)
        if native_state is not None:
            # Native per-row branch loop (predictor state, stats and
            # counter folds identical to the Python loop below).
            taken, mispredictions, btb_misses = _NATIVE.conjunct(
                native_state, address, outcomes)
            self.processor.count_branches(count, taken=taken,
                                          mispredictions=mispredictions,
                                          btb_misses=btb_misses)
        else:
            branch_unit = self.processor.branch_unit
            btb_before = branch_unit.stats.btb_misses
            taken = mispredictions = 0
            execute = branch_unit.execute
            for outcome in outcomes:
                outcome = bool(outcome)
                if execute(address, outcome):
                    mispredictions += 1
                if outcome:
                    taken += 1
            self.processor.count_branches(
                count, taken=taken, mispredictions=mispredictions,
                btb_misses=branch_unit.stats.btb_misses - btb_before)
        if key is not None and self.adaptive is not None:
            self.adaptive.collector.observe_branches(key, count, taken,
                                                     mispredictions)

    def observe_conjuncts(self, key: str, rows_in: int, rows_passed: int) -> None:
        """Feed one conjunct's data-side observation to the stats collector.

        Issued by the adaptive evaluator after each conjunct; morsel workers
        record the same call on their charge tapes, so replay merges worker
        observations into this (the parent's) collector in canonical order.
        """
        if self.adaptive is not None:
            self.adaptive.collector.observe_batch(key, rows_in, rows_passed)

    def l1d_misses(self) -> Optional[int]:
        """Current simulated L1 data-cache miss total (all ports).

        The adaptive batch-size decision samples this around a scan batch's
        charges; the delta is the batch's L1D pressure.  Span and
        per-address charging produce identical miss counts by contract, so
        the observed pressure -- and therefore every downstream sizing
        decision -- is charge-mode independent.  A morsel worker's
        :class:`~repro.execution.parallel.TapeRecorder` returns ``None``
        (it drives no hardware); pressure is then observed by the parent at
        tape-replay time instead.
        """
        return self.processor.caches.l1d.stats.total_misses

    def total_invocations(self) -> int:
        """Total interpreted routine invocations charged so far."""
        return sum(self.op_invocations.values())

    def snapshot_invocations(self) -> Dict[str, int]:
        return dict(self.op_invocations)

    def _visit_segment(self, segment: CodeSegment, data_taken: Optional[bool]) -> None:
        ctx_state = self._native_ctx
        if ctx_state is not None:
            handle = self._segment_handles.get(segment.name)
            if handle is None:
                handle = self._native_segment_handle(segment)
                self._segment_handles[segment.name] = handle
            if handle is not False:
                _NATIVE.visit(ctx_state, handle,
                              -1 if data_taken is None else int(bool(data_taken)))
                return
        processor = self.processor
        self._visit_counter += 1

        # Instruction side: hot lines every visit, plus the cold-code slice.
        # Both are contiguous line runs (hot code is laid out as one run,
        # cold code rotates through a contiguous pool), so they take the
        # run-based fetch fast path -- count-identical to per-line fetches.
        processor.fetch_code_run(segment.base_address, len(segment.hot_lines))
        cold_count = segment.cold_lines_per_visit
        if cold_count:
            pool = self.layout.cold_pool_lines
            if cold_count < pool:
                base = self.layout.cold_pool_base
                cursor = self._cold_cursor
                run = pool - cursor
                if cold_count <= run:
                    processor.fetch_code_run(base + cursor * LINE_BYTES, cold_count)
                else:
                    processor.fetch_code_run(base + cursor * LINE_BYTES, run)
                    processor.fetch_code_run(base, cold_count - run)
                self._cold_cursor = (cursor + cold_count) % pool
            else:
                # Degenerate geometry (slice wraps the whole pool): keep the
                # generic per-line path so repeated lines stay exact.
                processor.fetch_code(self._next_cold_lines(cold_count))

        # Retirement, bulk L1D-hit references and (pre-rounded) resource
        # stalls in one fused counter pass; the adds commute, so this is
        # count-identical to the separate retire/count_data_refs/
        # add_resource_stalls calls it replaces.
        stall_ints = segment.stall_ints
        processor.charge_routine(segment.instructions, segment.uops,
                                 segment.data_refs, stall_ints[0],
                                 stall_ints[1], stall_ints[2], stall_ints[3])

        # Private working-set touches.
        self._touch_workspace(segment.workspace_touches)

        # Branch sites.  The predictor is exercised per site; the retirement
        # counters are folded into one bulk update per segment visit.
        if segment.branch_sites:
            branch_unit = processor.branch_unit
            btb_before = branch_unit.stats.btb_misses
            branches = taken_count = mispredictions = 0
            for site in segment.branch_sites:
                taken, address = self._site_outcome(site, data_taken)
                mispredicted = branch_unit.execute(
                    address, taken, backward=(site.kind == BRANCH_KIND_LOOP))
                weight = site.weight
                branches += weight
                if taken:
                    taken_count += weight
                if mispredicted:
                    mispredictions += weight
            processor.count_branches(branches, taken=taken_count,
                                     mispredictions=mispredictions,
                                     btb_misses=branch_unit.stats.btb_misses - btb_before)

        # Bulk branch population.
        if segment.bulk_branches:
            expected = (segment.bulk_branches * self.profile.bulk_branch_misprediction_rate
                        + self._bulk_mispred_carry)
            mispredictions = int(expected)
            self._bulk_mispred_carry = expected - mispredictions
            btb_misses = int(round(segment.bulk_branches
                                   * self.profile.bulk_branch_btb_miss_rate))
            processor.count_branches(segment.bulk_branches, taken=segment.bulk_taken,
                                     mispredictions=mispredictions,
                                     btb_misses=btb_misses)

    def _touch_workspace(self, touches: int) -> None:
        """Charge ``touches`` cyclic private-working-set reads.

        The executor strides a 4-byte read through its workspace region on
        every routine (and loop-body) iteration.  Under span charging a run
        of touches is presented to the hardware as one strided bulk read per
        wrap of the cyclic cursor -- count-identical to issuing the reads
        one :meth:`~repro.hardware.processor.SimulatedProcessor.data_read`
        at a time, which is exactly what the ``per_address`` mode still
        does.
        """
        if touches <= 0:
            return
        if self._native_ctx is not None:
            _NATIVE.workspace(self._native_ctx, touches)
            return
        processor = self.processor
        stride = self._workspace_stride
        size = self._workspace_size
        cursor = self._workspace_cursor
        if self._span_charging and touches > 1 and 0 < stride < size:
            base = self.workspace_base
            remaining = touches
            while remaining:
                run = min(remaining, (size - cursor + stride - 1) // stride)
                processor.data_read_strided(base + cursor, stride, run, 4)
                cursor = (cursor + run * stride) % size
                remaining -= run
            self._workspace_cursor = cursor
            return
        for _ in range(touches):
            processor.data_read(self.workspace_base + cursor, 4)
            cursor = (cursor + stride) % size
        self._workspace_cursor = cursor

    def _native_segment_handle(self, segment: CodeSegment):
        """Plain-data view of ``segment`` for the native visit fast path.

        ``False`` marks a segment the native path must not handle (its cold
        slice wraps the whole pool, which takes the generic per-line fetch).
        The bulk-branch misprediction expectation is pre-multiplied: the
        product is the same float the Python path computes each visit, so
        the fractional carry evolves bit-identically.
        """
        cold = segment.cold_lines_per_visit
        if cold and cold >= self.layout.cold_pool_lines:
            return False
        stall_ints = segment.stall_ints
        profile = self.profile
        bulk = segment.bulk_branches
        sites = tuple((_NATIVE_KIND_CODES[site.kind], site.address, site.weight)
                      for site in segment.branch_sites)
        return _NATIVE.pack_segment(
            (segment.base_address, len(segment.hot_lines), cold,
             segment.instructions, segment.uops, segment.data_refs,
             stall_ints[0], stall_ints[1], stall_ints[2], stall_ints[3],
             segment.workspace_touches, bulk, segment.bulk_taken,
             bulk * profile.bulk_branch_misprediction_rate,
             int(round(bulk * profile.bulk_branch_btb_miss_rate)),
             sites))

    def _next_cold_lines(self, count: int) -> Tuple[int, ...]:
        base = self.layout.cold_pool_base
        pool = self.layout.cold_pool_lines
        cursor = self._cold_cursor
        lines = tuple(base + ((cursor + i) % pool) * LINE_BYTES for i in range(count))
        self._cold_cursor = (cursor + count) % pool
        return lines

    def _site_outcome(self, site, data_taken: Optional[bool]) -> Tuple[bool, int]:
        """Resolve the outcome and (possibly varying) address of a branch site."""
        kind = site.kind
        if kind == BRANCH_KIND_LOOP:
            return True, site.address
        if kind == BRANCH_KIND_DATA:
            if data_taken is None:
                return self._pseudo_random_bit(site.address), site.address
            return bool(data_taken), site.address
        if kind == BRANCH_KIND_ALTERNATING:
            state = self._site_state.get(site.address, 0) ^ 1
            self._site_state[site.address] = state
            return bool(state), site.address
        if kind == BRANCH_KIND_RARE:
            state = self._site_state.get(site.address, 0) + 1
            self._site_state[site.address] = state
            return (state % 64) == 0, site.address
        # Cold: the site address varies from visit to visit (different call
        # sites / indirect targets), so the BTB essentially never hits.
        offset = (self._visit_counter * _HASH_CONSTANT) & 0x1FFF
        address = site.address + 64 + (offset & ~0x3F)
        return self._pseudo_random_bit(address), address

    def _pseudo_random_bit(self, salt: int) -> bool:
        value = ((self._visit_counter + salt) * _HASH_CONSTANT) & 0xFFFFFFFF
        return bool((value >> 17) & 1)

    # ----------------------------------------------------------- data access
    def read_address(self, address: int, size: int = 4) -> None:
        """Simulated load from an arbitrary structure (index node, bucket...)."""
        self.processor.data_read(address, size)

    def write_address(self, address: int, size: int = 4) -> None:
        """Simulated store to an arbitrary structure."""
        self.processor.data_write(address, size)

    # ------------------------------------------------------------- page I/O
    # The buffer pool's simulated backing store charges page transfers here
    # (the ``io`` collaborator of :class:`~repro.storage.buffer_pool.
    # BufferPool`).  A transfer runs the buffer-manager code path once (the
    # same ``page_boundary`` segment a scan charges when it crosses into a
    # new page) and then moves the page's cache lines to/from the ``disk``
    # region address.  Span charging presents the read side as one strided
    # bulk operation -- count-identical to the per-line loop ``per_address``
    # still takes; the write side has no bulk primitive, so both modes loop.

    def page_io_out(self, address: int, nbytes: int) -> None:
        """Charge one page write-back to the backing store at ``address``."""
        tracer = self.tracer
        if tracer is not None and tracer.full:
            with tracer.span("spill_write", kind="io"):
                self._page_io_out(address, nbytes)
            tracer.io_event("spill_write", nbytes)
            return
        self._page_io_out(address, nbytes)

    def _page_io_out(self, address: int, nbytes: int) -> None:
        self.visit("page_boundary")
        lines = (nbytes + LINE_BYTES - 1) // LINE_BYTES
        if self._span_charging and lines > 1:
            self.processor.data_write_strided(address, LINE_BYTES, lines, LINE_BYTES)
        else:
            processor = self.processor
            for offset in range(0, nbytes, LINE_BYTES):
                processor.data_write(address + offset, LINE_BYTES)
        self.io_stats["page_writes"] += 1
        self.io_stats["bytes_written"] += nbytes

    def page_io_in(self, address: int, nbytes: int) -> None:
        """Charge one page reload from the backing store at ``address``."""
        tracer = self.tracer
        if tracer is not None and tracer.full:
            with tracer.span("spill_read", kind="io"):
                self._page_io_in(address, nbytes)
            tracer.io_event("spill_read", nbytes)
            return
        self._page_io_in(address, nbytes)

    def _page_io_in(self, address: int, nbytes: int) -> None:
        self.visit("page_boundary")
        lines = (nbytes + LINE_BYTES - 1) // LINE_BYTES
        if self._span_charging and lines > 1:
            self.processor.data_read_strided(address, LINE_BYTES, lines, LINE_BYTES)
        else:
            processor = self.processor
            for offset in range(0, nbytes, LINE_BYTES):
                processor.data_read(address + offset, LINE_BYTES)
        self.io_stats["page_reads"] += 1
        self.io_stats["bytes_read"] += nbytes

    def read_fields(self, entry: ScanEntry, layout: RecordLayout,
                    columns: Sequence[str]) -> Dict[str, object]:
        """Access and decode the given columns of a heap record.

        Systems with the ``fields_only`` access style touch only the cache
        lines containing the requested fields; ``full_record`` systems sweep
        the whole record (slot parsing / record copy), which is what drives
        their higher L2 data-miss counts per record.
        """
        processor = self.processor
        columnar = getattr(entry.page, "columnar", False)
        if self.profile.record_access_style == ACCESS_FIELDS_ONLY:
            for column in columns:
                offset, width = layout.field_slice(column)
                if columnar:
                    processor.data_read(entry.page.field_address(entry.slot, offset), width)
                else:
                    processor.data_read(entry.address + offset, width)
        elif columnar:
            # "Full record" access on a PAX page touches every minipage slice
            # of the record -- the values are scattered, there is no single
            # contiguous sweep to issue.
            self._touch_pax_record(entry, layout, processor.data_read)
        else:
            processor.data_read(entry.address, layout.record_size)
        page, slot = entry.page, entry.slot
        if columnar:
            # PAX rows are not contiguous; decode straight from the
            # minipages instead of materialising an NSM record image.
            return {column: page.column_values(column, (slot,))[0]
                    for column in columns}
        view = page.record_view(slot)
        codecs = layout.column_codecs
        out = {}
        for column in columns:
            offset, code, width = codecs[column]
            if code is None:
                raw = bytes(view[offset:offset + width])
                out[column] = raw.rstrip(b"\x00").decode(errors="replace")
            else:
                out[column] = struct.unpack_from(code, view, offset)[0]
        return out

    def read_record(self, entry: ScanEntry, layout: RecordLayout) -> Tuple:
        """Access the full record and decode every column (OLTP paths)."""
        if getattr(entry.page, "columnar", False):
            self._touch_pax_record(entry, layout, self.processor.data_read)
        else:
            self.processor.data_read(entry.address, layout.record_size)
        return layout.decode(bytes(entry.page.record_view(entry.slot)))

    def write_record(self, entry: ScanEntry, layout: RecordLayout) -> None:
        """Simulate the store traffic of an in-place record update."""
        if getattr(entry.page, "columnar", False):
            self._touch_pax_record(entry, layout, self.processor.data_write)
        else:
            self.processor.data_write(entry.address, layout.record_size)

    def _touch_pax_record(self, entry: ScanEntry, layout: RecordLayout, access) -> None:
        """Issue one access per minipage slice of a PAX record."""
        page = entry.page
        for index, column in enumerate(layout.schema):
            access(page.field_address(entry.slot, layout.offsets[index]),
                   column.byte_width)
        if layout.padding_bytes:
            access(page.field_address(entry.slot, layout.packed_size),
                   layout.padding_bytes)

    def read_column_batch(self, page, layout: RecordLayout, slots: Sequence[int],
                          column: str) -> list:
        """Read and decode one column for a batch of slots on one page.

        On a PAX page the values are contiguous in the column's minipage, so
        the batch becomes streaming span reads -- one per consecutive run of
        selected slots, so a sparse selection does not touch the cache lines
        of filtered-out rows.  On an NSM page the engine must still stride
        record by record, issuing one field-sized load per slot -- the
        layout, not the operator, determines the access pattern.

        Under span charging (:attr:`charge_mode` ``"span"``) each
        consecutive-slot run reaches the hardware as one bulk strided read;
        ``per_address`` mode issues the very same element loads one at a
        time.  Both produce identical hit/miss counts by construction.
        """
        if not slots:
            return []
        offset, width = layout.field_slice(column)
        processor = self.processor
        if getattr(page, "columnar", False):
            if self._span_charging:
                for run in _consecutive_runs(slots):
                    address, _span_bytes = page.column_span(column, run)
                    processor.data_read_strided(address, width, len(run), width)
            else:
                for slot in slots:
                    processor.data_read(page.field_address(slot, offset), width)
            return page.column_values(column, slots)
        self._charge_nsm_stride(page, slots, offset, width, layout.record_size)
        field_offset, code, _width = layout.column_codecs[column]
        if code is not None:
            return page.field_values(field_offset, code, slots)
        packed = layout.packed_size
        decode = layout.decode_column
        return [decode(bytes(page.record_view(slot)[:packed]), column)
                for slot in slots]

    def read_column_group_batch(self, page, layout: RecordLayout,
                                slots: Sequence[int],
                                columns: Sequence[str]) -> Dict[str, list]:
        """Read and decode a group of columns for a batch of slots on one page.

        This is the batch counterpart of :meth:`read_fields` and honours the
        same access-style contract: ``fields_only`` systems (and PAX pages)
        load each referenced column individually, while ``full_record``
        systems on NSM pages sweep every record once per group (slot
        parsing / record copy) -- exactly the per-record traffic the tuple
        engine charges per ``read_fields`` call, so the engine switch does
        not silently change a system's data-stall profile.  Under span
        charging the full-record sweep of a consecutive-slot run is one
        contiguous bulk read.
        """
        if not slots or not columns:
            return {column: [] for column in columns}
        if (getattr(page, "columnar", False)
                or self.profile.record_access_style == ACCESS_FIELDS_ONLY):
            return {column: self.read_column_batch(page, layout, slots, column)
                    for column in columns}
        record_size = layout.record_size
        self._charge_nsm_stride(page, slots, 0, record_size, record_size)
        codecs = layout.column_codecs
        if all(codecs[column][1] is not None for column in columns):
            return {column: page.field_values(codecs[column][0],
                                              codecs[column][1], slots)
                    for column in columns}
        packed = layout.packed_size
        decode = layout.decode_column
        out: Dict[str, list] = {column: [] for column in columns}
        for slot in slots:
            data = bytes(page.record_view(slot)[:packed])
            for column in columns:
                out[column].append(decode(data, column))
        return out

    def _charge_nsm_stride(self, page, slots: Sequence[int], offset: int,
                           width: int, record_size: int) -> None:
        """Charge one ``width``-byte load at ``offset`` into each slot's record.

        Span mode presents each consecutive-slot run as one bulk read
        strided by the (fixed) record size; the per-address mode -- and any
        run whose records turn out not to be evenly spaced -- issues the
        loads individually.
        """
        processor = self.processor
        if self._span_charging:
            for run in _consecutive_runs(slots):
                base = page.slot_address(run[0])
                count = len(run)
                if count > 1 and (page.slot_address(run[-1]) - base
                                  != (count - 1) * record_size):
                    for slot in run:
                        processor.data_read(page.slot_address(slot) + offset, width)
                else:
                    processor.data_read_strided(base + offset, record_size,
                                                count, width)
            return
        for slot in slots:
            processor.data_read(page.slot_address(slot) + offset, width)

    # ------------------------------------------------------------- workspace
    def allocate_workspace(self, size: int, alignment: int = 64) -> int:
        """Allocate a dedicated workspace area (hash table, sort run, ...)."""
        return self.address_space.allocate("workspace", size, alignment=alignment)

    # -------------------------------------------------------------- progress
    def record_done(self, count: int = 1) -> None:
        self.processor.record_done(count)

    def row_produced(self, count: int = 1) -> None:
        self.rows_produced += count
