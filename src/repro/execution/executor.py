"""Physical-plan executor.

Turns the planner's physical plans into operator trees, runs them against an
:class:`~repro.execution.context.ExecutionContext`, and returns the result
rows.  One ``query_setup`` invocation is charged per executed plan (parsing,
optimisation, cursor management), matching the paper's unit of measurement
"from the moment [the DBMS] receives a query until the moment it returns the
results".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..query.expressions import Aggregate
from ..query.plans import (AggregatePlan, ExecutionConfig, HashJoinPlan,
                           IndexNestedLoopJoinPlan, IndexPointLookupPlan,
                           IndexRangeScanPlan, JoinPlan, NestedLoopJoinPlan,
                           PhysicalPlan, ScanPlan, SeqScanPlan, UpdatePlan)
from ..storage.catalog import Catalog
from .context import ExecutionContext
from .operators import (HashJoinOperator, IndexNestedLoopJoinOperator,
                        IndexPointLookupOperator, IndexRangeScanOperator,
                        NestedLoopJoinOperator, Operator, OperatorError, Row,
                        ScalarAggregateOperator, SeqScanOperator, row_value)
from .resolve import ExecutorError, _columns_for_table, _index_for


def build_scan(plan: ScanPlan, catalog: Catalog, ctx: ExecutionContext,
               output_columns: Sequence[str] = (),
               next_operation: str = "scan_next") -> Operator:
    """Instantiate a scan plan node into an operator."""
    if isinstance(plan, SeqScanPlan):
        table = catalog.table(plan.table)
        return SeqScanOperator(table, ctx, predicate=plan.predicate,
                               output_columns=ctx.columns_for_table(table, output_columns),
                               next_operation=next_operation)
    if isinstance(plan, IndexRangeScanPlan):
        table = catalog.table(plan.table)
        index = ctx.index_for(table, plan.column)
        return IndexRangeScanOperator(table, index, ctx,
                                      low=plan.low, high=plan.high,
                                      include_low=plan.include_low,
                                      include_high=plan.include_high,
                                      residual_predicate=plan.residual_predicate,
                                      output_columns=ctx.columns_for_table(table, output_columns))
    if isinstance(plan, IndexPointLookupPlan):
        table = catalog.table(plan.table)
        index = ctx.index_for(table, plan.column)
        return IndexPointLookupOperator(table, index, ctx, value=plan.value,
                                        output_columns=ctx.columns_for_table(table, output_columns))
    raise ExecutorError(f"unknown scan plan {plan!r}")


def build_join(plan: JoinPlan, catalog: Catalog, ctx: ExecutionContext,
               output_columns: Sequence[str] = ()) -> Operator:
    """Instantiate a join plan node into an operator."""
    if isinstance(plan, HashJoinPlan):
        probe_columns = list(output_columns) + [plan.probe_column]
        build_columns = list(output_columns) + [plan.build_column]
        probe = build_scan(plan.probe, catalog, ctx, probe_columns)
        build = build_scan(plan.build, catalog, ctx, build_columns)
        build_table_name = getattr(plan.build, "table", None)
        estimate = catalog.table(build_table_name).row_count if build_table_name else 1024
        return HashJoinOperator(probe, build, plan.probe_column, plan.build_column,
                                ctx, build_row_estimate=max(estimate, 16))
    if isinstance(plan, NestedLoopJoinPlan):
        outer_columns = list(output_columns) + [plan.outer_column]
        inner_columns = list(output_columns) + [plan.inner_column]
        outer = build_scan(plan.outer, catalog, ctx, outer_columns)

        def inner_factory() -> Operator:
            return build_scan(plan.inner, catalog, ctx, inner_columns,
                              next_operation="inner_scan_next")

        return NestedLoopJoinOperator(outer, inner_factory, plan.outer_column,
                                      plan.inner_column, ctx)
    if isinstance(plan, IndexNestedLoopJoinPlan):
        outer_columns = list(output_columns) + [plan.outer_column]
        outer = build_scan(plan.outer, catalog, ctx, outer_columns)
        inner_table = catalog.table(plan.inner_table)
        inner_index = ctx.index_for(inner_table, plan.inner_column)
        return IndexNestedLoopJoinOperator(outer, inner_table, inner_index,
                                           plan.outer_column, ctx,
                                           inner_output_columns=ctx.columns_for_table(
                                               inner_table, output_columns))
    raise ExecutorError(f"unknown join plan {plan!r}")


def build_plan(plan: PhysicalPlan, catalog: Catalog, ctx: ExecutionContext) -> Operator:
    """Instantiate any physical plan into its operator tree."""
    if isinstance(plan, AggregatePlan):
        agg_columns = [agg.column for agg in plan.aggregates if agg.column is not None]
        if isinstance(plan.input, (HashJoinPlan, NestedLoopJoinPlan, IndexNestedLoopJoinPlan)):
            child = build_join(plan.input, catalog, ctx, agg_columns)
        else:
            child = build_scan(plan.input, catalog, ctx, agg_columns)
        return ScalarAggregateOperator(child, plan.aggregates, ctx)
    if isinstance(plan, (SeqScanPlan, IndexRangeScanPlan, IndexPointLookupPlan)):
        return build_scan(plan, catalog, ctx)
    if isinstance(plan, (HashJoinPlan, NestedLoopJoinPlan, IndexNestedLoopJoinPlan)):
        return build_join(plan, catalog, ctx)
    if isinstance(plan, UpdatePlan):
        raise ExecutorError("UpdatePlan is executed via execute_update(), not build_plan()")
    raise ExecutorError(f"unknown plan node {plan!r}")


def execute_plan(plan: PhysicalPlan, catalog: Catalog, ctx: ExecutionContext,
                 execution: Optional[ExecutionConfig] = None) -> List[Row]:
    """Execute a read-only plan and return its result rows.

    ``execution`` selects the engine: the default tuple-at-a-time iterators
    above, or the batch-at-a-time operators of
    :mod:`repro.execution.vectorized`.  Both engines run the *same* plan
    and return identical rows; they differ in how the work is charged to
    the simulated hardware.
    """
    if execution is not None and execution.is_vectorized:
        from .vectorized import execute_plan_vectorized  # deferred: module imports us
        return execute_plan_vectorized(plan, catalog, ctx, execution)
    tracer = ctx.tracer
    if tracer is None:
        ctx.visit("query_setup")
        operator = build_plan(plan, catalog, ctx)
        return list(operator.rows())
    with tracer.span("query_setup"):
        ctx.visit("query_setup")
    with tracer.span("build_plan"):
        operator = build_plan(plan, catalog, ctx)
    tracer.instrument(operator)
    return list(operator.rows())


def execute_update(plan: UpdatePlan, catalog: Catalog, ctx: ExecutionContext,
                   charge_setup: bool = True,
                   execution: Optional[ExecutionConfig] = None) -> int:
    """Execute a point-update plan; returns the number of rows updated.

    The OLTP workload charges one ``txn_overhead`` per transaction itself (a
    transaction may contain several statements), so the per-statement setup
    charge can be disabled.
    """
    tracer = ctx.tracer
    if charge_setup:
        if tracer is not None:
            with tracer.span("query_setup"):
                ctx.visit("query_setup")
        else:
            ctx.visit("query_setup")
    table = catalog.table(plan.lookup.table)
    if execution is not None and execution.is_vectorized:
        from .vectorized import build_vectorized_scan  # deferred: module imports us
        lookup: Operator = build_vectorized_scan(
            plan.lookup, catalog, ctx, table.schema.column_names(),
            batch_size=execution.batch_size,
            allow_exchange=False)  # updates mutate the heap: stay serial
    else:
        lookup = build_scan(plan.lookup, catalog, ctx,
                            output_columns=table.schema.column_names())
    apply_cm = None
    if tracer is not None:
        # The lookup's pulls interleave with the update charges, so the
        # lookup node must live under the update span for the span's self
        # time to mean "the update work alone".
        apply_node = tracer.span_node("update_apply")
        tracer.instrument(lookup, parent=apply_node)
        apply_cm = tracer.open(apply_node)
        apply_cm.__enter__()
    updated = 0
    try:
        set_position = table.schema.index_of(plan.set_column)
        for row in lookup.rows():
            rid = row["__rid__"]
            values = list(table.heap.read_values(rid))
            values[set_position] = plan.set_value
            ctx.visit("update_record")
            entry = table.heap.fetch(rid)
            ctx.write_record(entry, table.layout)
            table.update(rid, values)
            updated += 1
            ctx.record_done()
    finally:
        if apply_cm is not None:
            apply_cm.__exit__(None, None, None)
    return updated
