"""Morsel-driven parallel execution over the columnar dataflow.

A :class:`ColumnBatch` is a self-contained work item, which makes the
vectorized engine's leaf scans embarrassingly partitionable: split the heap
into contiguous *morsels* of pages, produce each morsel's batches
independently, and concatenate the outputs in page order.  The subtlety is
the simulated hardware: the paper's entire methodology rests on exact event
counts, and cache/TLB/branch state evolves with every touch, so letting N
workers charge N private simulated processors would make the counts depend
on the partitioning.

The design here keeps the *data work* parallel and the *hardware charging*
serial-equivalent by splitting the two:

* A worker executes its morsel's scan against a :class:`TapeRecorder` -- an
  execution-context stand-in that performs all the real data work (page
  decoding, predicate vectors, selection gathers) but, instead of driving a
  simulated processor, appends every charge the operator issues to a
  *charge tape*.  Charge arguments (routine names, record counts, page
  addresses, strides) are pure functions of the data, never of hardware
  state, so the tape is exactly the charge sequence the serial engine would
  have issued for that morsel.
* The parent consumes morsel results **in canonical (page) order** and
  replays each batch's tape segment into the real
  :class:`~repro.execution.context.ExecutionContext` immediately before
  yielding the batch downstream.  The real processor therefore observes the
  exact same interleaving of scan charges and downstream-operator charges
  as a serial run: rows, cache/TLB hit and miss counts, branch outcomes and
  the final cycle breakdown are *bit-identical* to ``workers=1`` -- by
  construction, independent of how many workers raced to produce the tapes
  (``tests/test_parallel_execution.py`` asserts this for every
  planner-producible plan shape, both layouts and both charge modes).

Backends: ``process`` fans morsels out to a fork-based
:class:`~concurrent.futures.ProcessPoolExecutor` (workers inherit the
database snapshot through fork, so nothing but the small task descriptors
and tapes crosses the process boundary); ``inline`` runs the same
morsel/tape machinery in-process (deterministic fallback when fork is
unavailable, and the default under test).  Worker-local statistics objects
(:class:`~repro.hardware.counters.EventCounters`,
:class:`~repro.hardware.cache.CacheStats`,
:class:`~repro.hardware.tlb.TLBStats`,
:class:`~repro.hardware.branch.BranchStats`) all support commutative
``merge()``, so any telemetry the workers do accumulate can be folded
together in any completion order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..query.plans import CHARGE_SPAN
from ..systems.profile import SystemProfile
from .kernels import PYTHON_KERNELS

__all__ = [
    "ChargeOp", "TapeRecorder", "MorselSpec", "MorselResult",
    "ParallelExecution", "VecExchangeOperator", "replay_tape",
    "fork_available", "partition_pages",
    "RecordedScan", "SharedScanCoordinator", "SharedScanReplayOperator",
]

#: One recorded charge: an opcode tuple.  Kept as plain tuples of scalars so
#: tapes pickle compactly across the process boundary.
ChargeOp = tuple

_OP_VISIT = "v"
_OP_VISIT_BATCH = "vb"
_OP_READ = "dr"
_OP_WRITE = "dw"
_OP_READ_STRIDED = "drs"
_OP_RECORD_DONE = "rd"
_OP_ROWS = "rp"
#: Adaptive-filter ops: one conjunct evaluation (row outcomes packed as a
#: bytes object, one 0/1 byte per row) and one data-side stat observation.
_OP_VISIT_CONJUNCT = "vcb"
_OP_OBSERVE_CONJUNCTS = "oc"


def fork_available() -> bool:
    """True when fork-based process pools are usable on this platform."""
    try:
        import multiprocessing
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


class _TapeProcessor:
    """Processor stand-in that records data-side charges instead of
    simulating them.  Only the methods the scan data path issues exist; the
    recorded arguments are data-deterministic, so replaying them against the
    real processor reproduces the serial trace exactly."""

    __slots__ = ("ops",)

    def __init__(self, ops: List[ChargeOp]) -> None:
        self.ops = ops

    def data_read(self, address: int, size: int = 4) -> int:
        self.ops.append((_OP_READ, address, size))
        return 0

    def data_write(self, address: int, size: int = 4) -> int:
        self.ops.append((_OP_WRITE, address, size))
        return 0

    def data_read_strided(self, address: int, stride: int, count: int,
                          size: int = 4) -> int:
        self.ops.append((_OP_READ_STRIDED, address, stride, count, size))
        return 0

    def record_done(self, count: int = 1) -> None:
        self.ops.append((_OP_RECORD_DONE, count))


class TapeRecorder:
    """Execution-context stand-in used by morsel workers.

    Exposes exactly the surface a vectorized *scan* touches: routine visits,
    batched visits, column/record reads (inherited data-decoding logic from
    :class:`~repro.execution.context.ExecutionContext` via delegation to the
    real methods), record/row bookkeeping.  Every charge is appended to
    :attr:`ops`; the data values flow back to the operator unchanged.

    It deliberately does **not** allocate anything from an address space and
    owns no simulated hardware -- constructing one has no side effects on
    shared state, which is what makes the ``inline`` backend byte-identical
    too.
    """

    def __init__(self, profile: SystemProfile,
                 charge_mode: str = CHARGE_SPAN) -> None:
        self.profile = profile
        self.charge_mode = charge_mode
        self._span_charging = charge_mode == CHARGE_SPAN
        self.ops: List[ChargeOp] = []
        self.processor = _TapeProcessor(self.ops)
        self.rows_produced = 0
        self.op_invocations: Dict[str, int] = {}
        #: Worker-local :class:`~repro.adaptive.AdaptiveExecution` (built
        #: from the morsel spec's snapshot).  Its collector adapts *within*
        #: the morsel; the recorded observation ops carry the same stats
        #: back to the parent's manager at replay time.
        self.adaptive = None
        #: Data-plane kernels for the worker's operators.  Kernel choice is
        #: invisible to results and charges, so workers always use the
        #: dependency-free Python backend (a forked worker need not re-probe
        #: numpy).
        self.kernels = PYTHON_KERNELS

    # -- charge recording ---------------------------------------------------
    def visit(self, operation: str, data_taken: Optional[bool] = None,
              repeat: int = 1) -> None:
        self.op_invocations[operation] = self.op_invocations.get(operation, 0) + repeat
        self.ops.append((_OP_VISIT, operation, data_taken, repeat))

    def visit_batch(self, operation: str, count: int) -> None:
        if count <= 0:
            return
        self.op_invocations[operation] = self.op_invocations.get(operation, 0) + 1
        self.ops.append((_OP_VISIT_BATCH, operation, count))

    def visit_conjunct_batch(self, operation: str, outcomes, site: int = 0,
                             key: Optional[str] = None) -> None:
        if not len(outcomes):
            return
        self.op_invocations[operation] = self.op_invocations.get(operation, 0) + 1
        packed = bytes(bytearray(1 if outcome else 0 for outcome in outcomes))
        self.ops.append((_OP_VISIT_CONJUNCT, operation, packed, site, key))

    def observe_conjuncts(self, key: str, rows_in: int, rows_passed: int) -> None:
        if self.adaptive is not None:
            self.adaptive.collector.observe_batch(key, rows_in, rows_passed)
        self.ops.append((_OP_OBSERVE_CONJUNCTS, key, rows_in, rows_passed))

    def read_address(self, address: int, size: int = 4) -> None:
        self.ops.append((_OP_READ, address, size))

    def write_address(self, address: int, size: int = 4) -> None:
        self.ops.append((_OP_WRITE, address, size))

    def record_done(self, count: int = 1) -> None:
        self.ops.append((_OP_RECORD_DONE, count))

    def row_produced(self, count: int = 1) -> None:
        self.rows_produced += count
        self.ops.append((_OP_ROWS, count))

    def l1d_misses(self) -> None:
        """Workers drive no simulated hardware, so there is no L1D to
        observe; the batch-size-adaptive scan keeps the spec's fixed size
        and the parent observes the pressure at tape-replay time."""
        return None

    def take(self) -> List[ChargeOp]:
        """Return and clear the ops recorded since the last call."""
        ops = self.ops
        if not ops:
            return []
        taken = list(ops)
        ops.clear()
        return taken

    # -- data access (delegated to the real implementations) ---------------
    # The real ExecutionContext methods only use self.processor,
    # self.profile and self._span_charging, so they run unmodified against
    # the recording processor and return the decoded data values.
    from .context import ExecutionContext as _Ctx
    read_column_batch = _Ctx.read_column_batch
    read_column_group_batch = _Ctx.read_column_group_batch
    read_fields = _Ctx.read_fields
    read_record = _Ctx.read_record
    _charge_nsm_stride = _Ctx._charge_nsm_stride
    _touch_pax_record = _Ctx._touch_pax_record
    del _Ctx


def replay_tape(ops: Sequence[ChargeOp], ctx) -> None:
    """Replay recorded charges against a real execution context, in order.

    The replayed calls are exactly the calls a serial scan would have made,
    so the simulated hardware (and the context's invocation counters) end up
    in the identical state.
    """
    processor = ctx.processor
    visit = ctx.visit
    visit_batch = ctx.visit_batch
    data_read = processor.data_read
    data_read_strided = processor.data_read_strided
    for op in ops:
        tag = op[0]
        if tag == _OP_READ_STRIDED:
            data_read_strided(op[1], op[2], op[3], op[4])
        elif tag == _OP_READ:
            data_read(op[1], op[2])
        elif tag == _OP_VISIT_BATCH:
            visit_batch(op[1], op[2])
        elif tag == _OP_VISIT_CONJUNCT:
            # The packed bytes iterate as 0/1 ints -- exactly the outcome
            # sequence the worker's conjunct evaluation produced.
            ctx.visit_conjunct_batch(op[1], op[2], op[3], op[4])
        elif tag == _OP_OBSERVE_CONJUNCTS:
            ctx.observe_conjuncts(op[1], op[2], op[3])
        elif tag == _OP_VISIT:
            visit(op[1], op[2], op[3])
        elif tag == _OP_RECORD_DONE:
            ctx.record_done(op[1])
        elif tag == _OP_ROWS:
            ctx.row_produced(op[1])
        elif tag == _OP_WRITE:
            processor.data_write(op[1], op[2])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown tape op {op!r}")


# ---------------------------------------------------------------------------
# Morsels
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MorselSpec:
    """A self-contained description of one scan morsel (picklable)."""

    table: str
    page_start: int
    page_stop: int
    predicate: object
    output_columns: Tuple[str, ...]
    next_operation: str
    batch_size: int
    count_records: bool
    charge_mode: str
    profile: SystemProfile
    #: Adaptivity mode and manager snapshot (policy state + stats observed
    #: so far) this morsel starts from; ``"off"``/``None`` for the static
    #: engine.  The worker adapts privately from here; its observations ride
    #: the charge tape back into the parent's manager.
    adaptivity: str = "off"
    adaptive_state: Optional[dict] = None


@dataclass
class MorselResult:
    """Batches (columns + length) and tape segments of one morsel.

    ``batches`` holds ``(columns, length, ops)`` triples in production
    order; ``trailing_ops`` are charges issued after the last batch (e.g.
    page-boundary visits of trailing empty pages).
    """

    batches: List[Tuple[Dict[str, list], int, List[ChargeOp]]] = field(default_factory=list)
    trailing_ops: List[ChargeOp] = field(default_factory=list)


def partition_pages(page_count: int, morsel_pages: int) -> List[Tuple[int, int]]:
    """Split ``page_count`` pages into contiguous ``[start, stop)`` morsels."""
    if page_count <= 0:
        return []
    morsel_pages = max(morsel_pages, 1)
    return [(start, min(start + morsel_pages, page_count))
            for start in range(0, page_count, morsel_pages)]


#: Database snapshot inherited by forked pool workers.  Set by the parent
#: immediately before the pool forks; never mutated afterwards.
_FORK_DATABASE = None


def _run_scan_morsel(spec: MorselSpec) -> MorselResult:
    """Worker entry point: execute one scan morsel against a tape recorder."""
    database = _FORK_DATABASE
    return _run_scan_morsel_on(database, spec)


def _run_scan_morsel_on(database, spec: MorselSpec) -> MorselResult:
    from .vectorized import VecSeqScanOperator
    table = database.catalog.table(spec.table)
    recorder = TapeRecorder(spec.profile, spec.charge_mode)
    if spec.adaptivity != "off":
        from ..adaptive import AdaptiveExecution
        recorder.adaptive = AdaptiveExecution.from_snapshot(spec.adaptive_state)
    operator = VecSeqScanOperator(
        table, recorder, predicate=spec.predicate,
        output_columns=spec.output_columns,
        next_operation=spec.next_operation,
        batch_size=spec.batch_size,
        count_records=spec.count_records,
        page_range=(spec.page_start, spec.page_stop))
    result = MorselResult()
    for batch in operator.batches():
        result.batches.append((batch.columns, batch.length, recorder.take()))
    result.trailing_ops = recorder.take()
    return result


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------
class ParallelExecution:
    """Morsel scheduler bound to one database.

    ``workers`` is the degree of parallelism; ``backend`` is ``"process"``
    (fork-based pool; falls back to ``"inline"`` where fork is unavailable)
    or ``"inline"`` (same morsel pipeline, executed in-process).  Results
    are always consumed in canonical morsel order, so the backend choice --
    and any racing between pool workers -- cannot influence a single
    simulated count.
    """

    def __init__(self, database, workers: int, backend: str = "process",
                 morsel_pages: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown parallel backend {backend!r}")
        if backend == "process" and not fork_available():
            backend = "inline"
        self.database = database
        self.workers = workers
        self.backend = backend
        self.morsel_pages = morsel_pages
        self._pool = None
        self._pool_stale = False

    # -- lifecycle ----------------------------------------------------------
    def _ensure_pool(self):
        if self._pool_stale and self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_stale = False
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            global _FORK_DATABASE
            _FORK_DATABASE = self.database
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"))
            # Worker processes are forked lazily; force them to spawn now,
            # while the module-global snapshot points at *our* database
            # (another executor could repoint it before a lazy fork).
            for future in [self._pool.submit(os.getpid)
                           for _ in range(self.workers)]:
                future.result()
        return self._pool

    def invalidate_snapshot(self) -> None:
        """Mark the forked database snapshot stale (after any update).

        The next morsel dispatch re-forks the pool so workers see current
        data.  The inline backend always reads live data and ignores this.
        """
        self._pool_stale = True

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        global _FORK_DATABASE
        if _FORK_DATABASE is self.database:
            _FORK_DATABASE = None

    def __enter__(self) -> "ParallelExecution":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- scheduling ---------------------------------------------------------
    def default_morsel_pages(self, page_count: int) -> int:
        if self.morsel_pages is not None:
            return max(self.morsel_pages, 1)
        # Aim for a few morsels per worker so stragglers even out, without
        # drowning in per-morsel dispatch overhead.
        return max(1, -(-page_count // (self.workers * 4)))

    def run_morsels(self, specs: Sequence[MorselSpec]) -> Iterator[MorselResult]:
        """Execute morsels, yielding results in submission (canonical) order."""
        if not specs:
            return
        if self.backend == "inline" or len(specs) == 1:
            database = self.database
            for spec in specs:
                yield _run_scan_morsel_on(database, spec)
            return
        pool = self._ensure_pool()
        futures = [pool.submit(_run_scan_morsel, spec) for spec in specs]
        for future in futures:
            yield future.result()


# ---------------------------------------------------------------------------
# Shared scans
# ---------------------------------------------------------------------------
@dataclass
class RecordedScan:
    """One table scan's full output, recorded once and replayed per query.

    ``batches``/``trailing_ops`` have exactly the :class:`MorselResult`
    shape (the recording *is* one whole-table morsel).  The batch column
    vectors are handed to every attached query's operator tree by
    reference: no operator mutates batch columns in place (filters gather
    into fresh vectors, joins merge into new dictionaries), so sharing is
    safe and costs nothing per attachment.
    """

    batches: List[Tuple[Dict[str, list], int, List[ChargeOp]]]
    trailing_ops: List[ChargeOp]
    attachments: int = 0


class SharedScanCoordinator:
    """One admission round's shared-scan registry.

    Concurrent queries whose plans contain the *same* sequential-scan leaf
    (same table, predicate, output columns, batch size, charge mode and
    profile) attach to one in-flight morsel stream: the first attachment
    runs the scan's data work once against a :class:`TapeRecorder` (one
    whole-table morsel), and every attachment — including the first —
    consumes the recording through a :class:`SharedScanReplayOperator` that
    replays the charge tapes into that query's own
    :class:`~repro.execution.context.ExecutionContext`.  Replay is the
    exact serial charge sequence (the PR 3 contract), so every attached
    query's rows *and* simulated counts are identical to executing it
    alone; only the host-side data work is deduplicated.

    The coordinator holds live table data, so a recording must never
    outlive the data it copied: the serving layer creates a fresh
    coordinator per admission round *and* calls :meth:`drop_table` when an
    update executes mid-round, so a later query of the same round
    re-records instead of replaying pre-update rows.
    """

    def __init__(self, database) -> None:
        self.database = database
        self._recordings: Dict[tuple, RecordedScan] = {}
        #: Scans actually executed (cache misses).
        self.recordings = 0
        #: Attachments that rode an existing recording (pure savings).
        self.reuses = 0
        #: Total attachments (``recordings + reuses``).
        self.attachments = 0

    def attach(self, table, ctx, predicate, output_columns: Sequence[str],
               next_operation: str, batch_size: int,
               count_records: bool = True) -> "SharedScanReplayOperator":
        """Return a replay operator for this scan, recording it on first use."""
        key = (table.name, repr(predicate), tuple(output_columns),
               next_operation, int(batch_size), bool(count_records),
               ctx.charge_mode, ctx.profile.key)
        recording = self._recordings.get(key)
        if recording is None:
            spec = MorselSpec(table=table.name, page_start=0,
                              page_stop=table.heap.page_count,
                              predicate=predicate,
                              output_columns=tuple(output_columns),
                              next_operation=next_operation,
                              batch_size=int(batch_size),
                              count_records=count_records,
                              charge_mode=ctx.charge_mode,
                              profile=ctx.profile)
            result = _run_scan_morsel_on(self.database, spec)
            recording = RecordedScan(result.batches, result.trailing_ops)
            self._recordings[key] = recording
            self.recordings += 1
        else:
            self.reuses += 1
        self.attachments += 1
        recording.attachments += 1
        return SharedScanReplayOperator(recording, ctx)

    def drop_table(self, table_name: str) -> int:
        """Forget every recording over ``table_name``; returns the count.

        The serving layer calls this after an update executes mid-round:
        the table's recordings hold pre-update batches, and a later query
        of the round must re-record from live data rather than replay
        stale rows (which would also poison the result cache under the
        table's new epoch).
        """
        stale = [key for key in self._recordings if key[0] == table_name]
        for key in stale:
            del self._recordings[key]
        return len(stale)


class SharedScanReplayOperator:
    """Feeds one query's operator tree from a :class:`RecordedScan`.

    Indistinguishable from the serial
    :class:`~repro.execution.vectorized.VecSeqScanOperator` downstream:
    batches arrive in the same order with the same contents, and each
    batch's tape is replayed into the query's own context immediately
    before the batch is yielded — the same interleaving of scan charges and
    downstream-operator charges as a solo run, hence identical counts.
    """

    def __init__(self, recording: RecordedScan, ctx) -> None:
        self.recording = recording
        self.ctx = ctx

    def batches(self):
        from .vectorized import ColumnBatch
        ctx = self.ctx
        tracer = getattr(ctx, "tracer", None)
        if tracer is not None and tracer.full:
            # Per-batch replay subspans: the tape *is* the span's charge
            # record, replayed in canonical order inside this operator's
            # open pull span, so attribution is exact.
            def _replay(ops):
                with tracer.span("shared_scan_replay", kind="replay"):
                    replay_tape(ops, ctx)
        else:
            def _replay(ops):
                replay_tape(ops, ctx)
        for columns, length, ops in self.recording.batches:
            _replay(ops)
            yield ColumnBatch(columns, length)
        if self.recording.trailing_ops:
            _replay(self.recording.trailing_ops)

    def rows(self):
        for batch in self.batches():
            yield from batch.to_rows()

    def __iter__(self):
        return self.rows()


# ---------------------------------------------------------------------------
# The exchange operator
# ---------------------------------------------------------------------------
class VecExchangeOperator:
    """Partitions a sequential scan into page morsels and merges the
    workers' batches (and their charge tapes) back in canonical order.

    Downstream operators cannot tell it apart from the
    :class:`~repro.execution.vectorized.VecSeqScanOperator` it shadows: the
    batches arrive in the same order with the same contents, and the charge
    tape replay drives the real context through the exact serial sequence.
    """

    def __init__(self, table, ctx, parallel: ParallelExecution,
                 predicate=None, output_columns: Sequence[str] = (),
                 next_operation: str = "scan_next", batch_size: int = 256,
                 count_records: bool = True) -> None:
        self.table = table
        self.ctx = ctx
        self.parallel = parallel
        self.predicate = predicate
        self.output_columns = tuple(output_columns)
        self.next_operation = next_operation
        self.batch_size = batch_size
        self.count_records = count_records

    # VectorOperator protocol ------------------------------------------------
    def _spec_for(self, span: Tuple[int, int], adaptivity: str,
                  adaptive_state: Optional[dict],
                  batch_size: Optional[int] = None) -> MorselSpec:
        return MorselSpec(table=self.table.name, page_start=span[0],
                          page_stop=span[1], predicate=self.predicate,
                          output_columns=self.output_columns,
                          next_operation=self.next_operation,
                          batch_size=batch_size or self.batch_size,
                          count_records=self.count_records,
                          charge_mode=self.ctx.charge_mode,
                          profile=self.ctx.profile,
                          adaptivity=adaptivity,
                          adaptive_state=adaptive_state)

    def batches(self):
        from .vectorized import ColumnBatch
        parallel = self.parallel
        ctx = self.ctx
        tracer = getattr(ctx, "tracer", None)
        if tracer is not None and tracer.full:
            # Workers record span deltas on their charge tapes; the parent
            # replays each tape here, in canonical morsel order, inside
            # this operator's open pull span -- one subspan per replay.
            def _replay(ops):
                with tracer.span("morsel_replay", kind="replay"):
                    replay_tape(ops, ctx)
        else:
            def _replay(ops):
                replay_tape(ops, ctx)
        page_count = self.table.heap.page_count
        morsel_pages = parallel.default_morsel_pages(page_count)
        spans = partition_pages(page_count, morsel_pages)
        manager = getattr(ctx, "adaptive", None)
        conjuncts_active = (manager is not None
                            and manager.applies(self.predicate))
        batch_sizing = manager is not None and manager.batch_sizing
        if not (conjuncts_active or batch_sizing):
            manager = None
        if manager is None:
            waves = [[self._spec_for(span, "off", None) for span in spans]]
        else:
            # Adaptive decisions re-plan *between morsel waves*: each wave of
            # ``workers`` morsels is dispatched with the manager state merged
            # from every earlier wave's tapes (the replay below folds worker
            # observations into the parent's collector before the next wave's
            # specs are built).  Within a wave, workers adapt privately from
            # the dispatched snapshot, so a fixed partitioning is
            # deterministic regardless of pool racing.
            wave_size = max(parallel.workers, 1)
            waves = [spans[start:start + wave_size]
                     for start in range(0, len(spans), wave_size)]
        pressure_key = f"scan:{self.table.name}"
        current_size = max(int(self.batch_size), 1)
        for wave in waves:
            if manager is None:
                specs = wave
            else:
                snapshot = manager.snapshot()
                specs = [self._spec_for(span, manager.mode, snapshot,
                                        batch_size=current_size)
                         for span in wave]
            wave_batches = 0
            for result in parallel.run_morsels(specs):
                wave_batches += len(result.batches)
                for columns, length, ops in result.batches:
                    if batch_sizing:
                        # The worker could not observe L1D pressure (it has
                        # no hardware); the replay below is where the
                        # batch's charges reach the real caches, so this is
                        # where the pressure observation happens -- exactly
                        # once per batch, mirroring the serial scan.
                        before = ctx.l1d_misses()
                        _replay(ops)
                        rows_in = next(
                            (op[2] for op in ops
                             if op[0] == _OP_VISIT_BATCH
                             and op[1] == self.next_operation), length)
                        manager.collector.observe_pressure(
                            pressure_key, current_size, rows_in,
                            ctx.l1d_misses() - before)
                    else:
                        _replay(ops)
                    yield ColumnBatch(columns, length)
                if result.trailing_ops:
                    _replay(result.trailing_ops)
            if conjuncts_active:
                # Each scan batch was one ordering decision in a worker;
                # advance the parent policy so the next wave's snapshot
                # continues (not restarts) any internal decision sequence.
                manager.policy.advance(wave_batches)
            if batch_sizing:
                current_size = max(int(manager.policy.batch_size(
                    pressure_key, current_size, manager.collector)), 1)

    def rows(self):
        for batch in self.batches():
            yield from batch.to_rows()

    def __iter__(self):
        return self.rows()
