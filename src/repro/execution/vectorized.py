"""Vectorized (batch-at-a-time) physical operators over columnar batches.

The paper finds that on a Pentium II Xeon the commercial engines spend most
of a query not computing but stalling -- and that a large share of the
stalls (L1 instruction misses, branch mispredictions, resource stalls) is
*interpretation overhead*: every record pays the full cost of re-entering
each executor routine.  The vectorized engine here is the classic remedy
(MonetDB/X100 lineage): operators consume and produce *batches* of records,
so each routine is entered once per batch and only its tight loop body runs
per record.

The unit of dataflow is the :class:`ColumnBatch` -- an ordered mapping of
column name to value vector.  Scans read columns straight out of the page
(one minipage span per column on PAX, one field stride per column on NSM)
into vectors, filters compute selection index lists and gather, joins gather
matching positions from both sides, and aggregates fold whole vectors.  Row
dictionaries exist only at the result boundary
(:meth:`VectorOperator.rows` / :func:`execute_plan_vectorized` late
materialization), which is where the differential harness diffs them against
the tuple engine.

Design rules:

* **Identical results.** Every operator reproduces the tuple engine's rows
  byte-for-byte and in the same order -- the differential harness in
  ``tests/test_vectorized_equivalence.py`` replays every plan shape under
  both engines and diffs the output.  Joins and aggregates therefore use
  exactly the same algorithms and fold orders as
  :mod:`repro.execution.operators`, and the column order of a materialized
  row reproduces the tuple engine's dict-merge order (left/build columns
  first; shared names keep that position but carry the right/probe value).
* **Amortised charging.** Routine costs go through
  :meth:`~repro.execution.context.ExecutionContext.visit_batch`: one full
  interpreted invocation per batch plus cheap loop-body iterations, which
  is where the computation, L1I-stall and branch savings come from.
* **Layout-aware data access.** Column reads go through
  :meth:`~repro.execution.context.ExecutionContext.read_column_group_batch`:
  on a PAX page a batch of one column is a contiguous span; on an NSM page
  the engine still strides record by record.  Under the default span
  charging both reach the simulated caches as bulk strided operations that
  are count-identical to per-address probing (the simulation fast path).
"""

from __future__ import annotations

import pickle

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..adaptive.policy import plan_partition_count
from ..index.btree import BTreeIndex
from ..storage.buffer_pool import BACKING_REGION, BufferPool
from ..storage.page import DEFAULT_PAGE_SIZE
from ..query.expressions import Aggregate, AggregateState, Expression
from ..query.plans import (KERNEL_BACKEND_AUTO, AggregatePlan, ExecutionConfig,
                           HashJoinPlan, IndexNestedLoopJoinPlan,
                           IndexPointLookupPlan, IndexRangeScanPlan, JoinPlan,
                           NestedLoopJoinPlan, PhysicalPlan, ScanPlan,
                           SeqScanPlan, UpdatePlan)
from ..storage.catalog import Catalog, Table
from .context import ExecutionContext
from .kernels import PYTHON_KERNELS, resolve_kernels, spill_partition_of
from .operators import HashJoinOperator, OperatorError, Row
from .resolve import ExecutorError

__all__ = [
    "ColumnBatch", "merge_gather",
    "VectorOperator", "VecSeqScanOperator", "VecFilterOperator",
    "VecIndexRangeScanOperator", "VecIndexPointLookupOperator",
    "VecHashJoinOperator", "VecNestedLoopJoinOperator",
    "VecIndexNestedLoopJoinOperator", "VecScalarAggregateOperator",
    "build_vectorized_scan", "build_vectorized_join", "build_vectorized_plan",
    "execute_plan_vectorized",
]


class ColumnBatch:
    """One unit of columnar dataflow: column name -> equal-length vectors.

    The mapping is insertion-ordered and that order is the batch's column
    order: :meth:`to_rows` materializes dictionaries with exactly this key
    order, so column order is stable end-to-end.  ``length`` is tracked
    explicitly so projection-free batches (no columns requested) still know
    how many rows they carry.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[str, List], length: Optional[int] = None) -> None:
        if length is None:
            length = len(next(iter(columns.values()))) if columns else 0
        for name, vector in columns.items():
            if len(vector) != length:
                raise OperatorError(
                    f"column {name!r} has {len(vector)} values, expected {length}")
        self.columns = columns
        self.length = length

    @classmethod
    def empty(cls, column_names: Sequence[str] = ()) -> "ColumnBatch":
        return cls({name: [] for name in column_names}, 0)

    def __len__(self) -> int:
        return self.length

    def column_names(self) -> Tuple[str, ...]:
        return tuple(self.columns)

    def vector(self, column: str) -> List:
        """Fetch a column vector, accepting qualified or unqualified names."""
        columns = self.columns
        if column in columns:
            return columns[column]
        short = column.split(".")[-1]
        if short in columns:
            return columns[short]
        raise OperatorError(f"batch {sorted(columns)} has no column {column!r}")

    def row(self, position: int) -> Row:
        """Materialize one row dict (predicate evaluation, debugging)."""
        return {name: vector[position] for name, vector in self.columns.items()}

    def to_rows(self) -> List[Row]:
        """Late materialization: the row dicts the tuple engine would yield."""
        columns = self.columns
        if not columns:
            return [{} for _ in range(self.length)]
        names = tuple(columns)
        return [dict(zip(names, values)) for values in zip(*columns.values())]

    def gather(self, positions: Sequence[int], kernels=None) -> "ColumnBatch":
        """New batch holding the given row positions (selection/compaction)."""
        take = (kernels or PYTHON_KERNELS).gather
        return ColumnBatch({name: take(vector, positions)
                            for name, vector in self.columns.items()},
                           len(positions))


def merge_gather(left: ColumnBatch, left_positions: Sequence[int],
                 right: ColumnBatch, right_positions: Sequence[int],
                 kernels=None) -> ColumnBatch:
    """Columnar equivalent of ``dict(left_row); .update(right_row)`` per pair.

    Output column order is the left batch's columns followed by the
    right-only columns; a column present on both sides keeps the left
    position but carries the *right* values -- exactly the dict-merge
    semantics (and therefore duplicate-column behaviour) of the tuple
    engine's join output.
    """
    if len(left_positions) != len(right_positions):
        raise OperatorError("merge_gather requires position lists of equal length")
    take = (kernels or PYTHON_KERNELS).gather
    out: Dict[str, List] = {}
    for name, vector in left.columns.items():
        out[name] = take(vector, left_positions)
    for name, vector in right.columns.items():
        out[name] = take(vector, right_positions)
    return ColumnBatch(out, len(left_positions))


def _chunked(items: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


def _concat_batches(batches: Iterator[ColumnBatch]) -> ColumnBatch:
    """Concatenate a stream of batches into one (build/inner-side caching)."""
    columns: Dict[str, List] = {}
    length = 0
    for batch in batches:
        if not len(batch):
            continue
        if not columns:
            columns = {name: list(vector) for name, vector in batch.columns.items()}
        else:
            for name, vector in batch.columns.items():
                columns[name].extend(vector)
        length += len(batch)
    return ColumnBatch(columns, length)


class VectorOperator:
    """Base class: an iterable of :class:`ColumnBatch` (and, flattened, rows)."""

    def batches(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError

    def rows(self) -> Iterator[Row]:
        """Late materialization to row dicts (the engine's result boundary)."""
        for batch in self.batches():
            yield from batch.to_rows()

    def __iter__(self) -> Iterator[Row]:
        return self.rows()


class VecSeqScanOperator(VectorOperator):
    """Columnar sequential scan with a fused, selection-vector filter.

    Each heap page is processed in slot chunks: one amortised
    ``scan_next`` invocation per chunk, column-at-a-time reads for the
    predicate columns, a selection index list, then column reads for the
    output columns of the qualifying slots only -- the late
    materialisation a vectorized engine does naturally.
    """

    def __init__(self,
                 table: Table,
                 ctx: ExecutionContext,
                 predicate: Optional[Expression] = None,
                 output_columns: Sequence[str] = (),
                 next_operation: str = "scan_next",
                 batch_size: int = 256,
                 count_records: bool = True,
                 page_range: Optional[Tuple[int, int]] = None) -> None:
        self.table = table
        self.ctx = ctx
        self.predicate = predicate
        self.next_operation = next_operation
        self.batch_size = batch_size
        self.count_records = count_records
        #: Optional ``[start, stop)`` restriction over the heap's page
        #: sequence -- the unit the morsel-parallel exchange partitions on.
        #: ``None`` scans every page (the serial engine's behaviour).
        self.page_range = page_range
        predicate_columns = sorted(c.split(".")[-1]
                                   for c in (predicate.columns() if predicate else ()))
        outputs = sorted({c.split(".")[-1] for c in output_columns})
        self.predicate_columns: Tuple[str, ...] = tuple(predicate_columns)
        self.extra_columns: Tuple[str, ...] = tuple(c for c in outputs
                                                    if c not in predicate_columns)

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        table = self.table
        layout = table.layout
        predicate = self.predicate
        names = self.predicate_columns
        # Micro-adaptive conjunct reordering engages only when a manager is
        # attached (``adaptivity != "off"``) *and* the predicate is a
        # multi-conjunct conjunction; otherwise the static path below is
        # untouched (bit-identical to previous releases).  When the manager
        # additionally enables batch sizing, the scan switches to the
        # cross-page accumulation path whose vector size walks the bounded
        # ladder (the conjunct evaluator composes with it unchanged).
        manager = getattr(ctx, "adaptive", None)
        adaptive = manager
        if adaptive is not None and not adaptive.applies(predicate):
            adaptive = None
        if manager is not None and manager.batch_sizing:
            yield from self._adaptive_batches(manager, adaptive)
            return
        if self.page_range is not None:
            pages = table.heap.scan_pages(*self.page_range)
        else:
            pages = table.heap.scan_pages()
        kernels = ctx.kernels
        for page, slots in pages:
            ctx.visit("page_boundary")
            for chunk in _chunked(slots, self.batch_size):
                count = len(chunk)
                ctx.visit_batch(self.next_operation, count)
                columns = ctx.read_column_group_batch(page, layout, chunk, names)
                if predicate is not None:
                    if adaptive is not None:
                        mask = adaptive.evaluate_batch(ctx, predicate,
                                                       columns, count)
                    else:
                        mask = predicate.evaluate_batch(columns, count,
                                                        kernels)
                    selected = kernels.compact(mask)
                    if adaptive is None:
                        ctx.visit_batch("predicate", count)
                    out_columns = {name: kernels.gather(vector, selected)
                                   for name, vector in columns.items()}
                else:
                    selected = None
                    # read_column_group_batch returns fresh vectors per
                    # chunk, so they can be emitted (and extended) directly.
                    out_columns = columns
                out_count = count if selected is None else len(selected)
                if self.extra_columns and out_count:
                    selected_slots = (list(chunk) if selected is None
                                      else kernels.gather(chunk, selected))
                    out_columns.update(ctx.read_column_group_batch(
                        page, layout, selected_slots, self.extra_columns))
                ctx.row_produced(out_count)
                if self.count_records:
                    ctx.record_done(count)
                yield ColumnBatch(out_columns, out_count)

    def _adaptive_batches(self, manager, conjuncts) -> Iterator[ColumnBatch]:
        """Batch-size-adaptive scan: accumulate slot runs across pages into
        vectors of the policy-chosen size.

        Unlike the static path, whose chunks never span a page (so the
        configured batch size is silently capped at the page's slot count),
        this path gathers ``(page, slots)`` segments until the current
        target size is reached -- the working set of a batch is therefore
        really under the policy's control.  After each batch the simulated
        L1D miss delta is observed into the collector at the batch's size
        rung and the policy picks the next size from the bounded ladder.
        Inside a morsel worker the context exposes no hardware
        (``l1d_misses() is None``): the worker keeps the spec's fixed size
        and the parent observes the pressure at tape-replay time instead,
        re-deciding between waves -- so serial charging and replayed
        charging observe the same signal exactly once.
        """
        ctx = self.ctx
        table = self.table
        layout = table.layout
        predicate = self.predicate
        names = self.predicate_columns
        kernels = ctx.kernels
        policy = manager.policy
        collector = manager.collector
        pressure_key = f"scan:{table.name}"
        size = max(int(self.batch_size), 1)
        pending: List[Tuple[object, Sequence[int]]] = []
        pending_rows = 0

        def flush() -> Optional[ColumnBatch]:
            nonlocal pending, pending_rows, size
            if not pending_rows:
                return None
            count = pending_rows
            rung = size
            before = ctx.l1d_misses()
            ctx.visit_batch(self.next_operation, count)
            columns: Dict[str, List] = {name: [] for name in names}
            for page, slots in pending:
                part = ctx.read_column_group_batch(page, layout, slots, names)
                for name in names:
                    columns[name].extend(part[name])
            if predicate is not None:
                if conjuncts is not None:
                    mask = conjuncts.evaluate_batch(ctx, predicate, columns,
                                                    count)
                else:
                    mask = predicate.evaluate_batch(columns, count, kernels)
                    ctx.visit_batch("predicate", count)
                selected = kernels.compact(mask)
                out_columns = {name: kernels.gather(vector, selected)
                               for name, vector in columns.items()}
            else:
                selected = None
                out_columns = columns
            out_count = count if selected is None else len(selected)
            if self.extra_columns and out_count:
                positions = selected if selected is not None else range(count)
                extra: Dict[str, List] = {name: [] for name in self.extra_columns}
                cursor = 0
                offset = 0
                positions = list(positions)
                for page, slots in pending:
                    upper = offset + len(slots)
                    segment_slots = []
                    while cursor < len(positions) and positions[cursor] < upper:
                        segment_slots.append(slots[positions[cursor] - offset])
                        cursor += 1
                    if segment_slots:
                        part = ctx.read_column_group_batch(
                            page, layout, segment_slots, self.extra_columns)
                        for name in self.extra_columns:
                            extra[name].extend(part[name])
                    offset = upper
                out_columns.update(extra)
            ctx.row_produced(out_count)
            if self.count_records:
                ctx.record_done(count)
            if before is not None:
                collector.observe_pressure(pressure_key, rung, count,
                                           ctx.l1d_misses() - before)
                size = max(int(policy.batch_size(pressure_key, rung,
                                                 collector)), 1)
            pending = []
            pending_rows = 0
            return ColumnBatch(out_columns, out_count)

        if self.page_range is not None:
            pages = table.heap.scan_pages(*self.page_range)
        else:
            pages = table.heap.scan_pages()
        for page, slots in pages:
            ctx.visit("page_boundary")
            start = 0
            total = len(slots)
            while start < total:
                take = min(size - pending_rows, total - start)
                if take > 0:
                    pending.append((page, slots[start:start + take]))
                    pending_rows += take
                    start += take
                if pending_rows >= size:
                    batch = flush()
                    if batch is not None:
                        yield batch
        batch = flush()
        if batch is not None:
            yield batch


class VecFilterOperator(VectorOperator):
    """Standalone columnar filter (selection vector + gather).

    The scan fuses its own predicate; this operator exists for filters that
    cannot be pushed into an access path (e.g. post-join residuals) and for
    exercising batch-boundary behaviour in isolation.
    """

    def __init__(self, child: VectorOperator, predicate: Expression,
                 ctx: ExecutionContext) -> None:
        self.child = child
        self.predicate = predicate
        self.ctx = ctx

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        kernels = ctx.kernels
        predicate = self.predicate
        adaptive = getattr(ctx, "adaptive", None)
        if adaptive is not None and not adaptive.applies(predicate):
            adaptive = None
        for batch in self.child.batches():
            if not len(batch):
                yield batch
                continue
            if adaptive is not None:
                mask = adaptive.evaluate_batch(ctx, predicate, batch.columns,
                                               len(batch))
            else:
                mask = predicate.evaluate_batch(batch.columns, len(batch),
                                                kernels)
                ctx.visit_batch("predicate", len(batch))
            selected = kernels.compact(mask)
            kept = batch.gather(selected, kernels)
            ctx.row_produced(len(kept))
            yield kept


class VecIndexRangeScanOperator(VectorOperator):
    """Batch index range scan: descend once, drain the leaves in batches."""

    def __init__(self,
                 table: Table,
                 index: BTreeIndex,
                 ctx: ExecutionContext,
                 low, high,
                 include_low: bool = False,
                 include_high: bool = False,
                 residual_predicate: Optional[Expression] = None,
                 output_columns: Sequence[str] = (),
                 batch_size: int = 256) -> None:
        self.table = table
        self.index = index
        self.ctx = ctx
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.residual_predicate = residual_predicate
        self.batch_size = batch_size
        residual_columns = sorted(c.split(".")[-1]
                                  for c in (residual_predicate.columns()
                                            if residual_predicate else ()))
        outputs = sorted({c.split(".")[-1] for c in output_columns})
        self.fetch_columns: Tuple[str, ...] = tuple(
            dict.fromkeys(list(residual_columns) + outputs))

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        table = self.table
        layout = table.layout
        key_column = (self.index.name.split("_")[1]
                      if "_" in self.index.name else "key")

        descent_key = self.low if self.low is not None else self.high
        steps = list(self.index.descend(descent_key))
        ctx.visit_batch("index_descend_node", len(steps))
        for step in steps:
            ctx.read_address(step.node_address, 8)
            ctx.read_address(step.entry_address, 16)

        matches = list(self.index.range_search(self.low, self.high,
                                               include_low=self.include_low,
                                               include_high=self.include_high))
        residual = self.residual_predicate
        for chunk in _chunked(matches, self.batch_size):
            count = len(chunk)
            ctx.visit_batch("leaf_advance", count)
            for match in chunk:
                ctx.read_address(match.entry_address, 16)
            ctx.visit_batch("rid_fetch", count)
            columns: Dict[str, List] = {key_column: [match.key for match in chunk]}
            if self.fetch_columns:
                vectors: Dict[str, List] = {name: [] for name in self.fetch_columns}
                for match in chunk:
                    entry = table.heap.fetch(match.rid)
                    fields = ctx.read_fields(entry, layout, self.fetch_columns)
                    for name in self.fetch_columns:
                        vectors[name].append(fields[name])
                columns.update(vectors)
            batch = ColumnBatch(columns, count)
            if residual is not None:
                kernels = ctx.kernels
                mask = residual.evaluate_batch(batch.columns, count, kernels)
                selected = kernels.compact(mask)
                ctx.visit_batch("predicate", count)
                batch = batch.gather(selected, kernels)
            ctx.row_produced(len(batch))
            ctx.record_done(count)
            yield batch


class VecIndexPointLookupOperator(VectorOperator):
    """Batch exact-match index lookup (the update path's access plan)."""

    def __init__(self, table: Table, index: BTreeIndex, ctx: ExecutionContext,
                 value, output_columns: Sequence[str] = (),
                 batch_size: int = 256) -> None:
        self.table = table
        self.index = index
        self.ctx = ctx
        self.value = value
        self.batch_size = batch_size
        self.output_columns = tuple(sorted({c.split(".")[-1] for c in output_columns}))

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        layout = self.table.layout
        steps = list(self.index.descend(self.value))
        ctx.visit_batch("index_descend_node", len(steps))
        for step in steps:
            ctx.read_address(step.node_address, 8)
            ctx.read_address(step.entry_address, 16)
        matches = list(self.index.range_search(self.value, self.value,
                                               include_low=True, include_high=True))
        columns = tuple(self.output_columns or self.table.schema.column_names())
        for chunk in _chunked(matches, self.batch_size):
            count = len(chunk)
            ctx.visit_batch("leaf_advance", count)
            for match in chunk:
                ctx.read_address(match.entry_address, 16)
            ctx.visit_batch("rid_fetch", count)
            vectors: Dict[str, List] = {name: [] for name in columns}
            rids: List = []
            for match in chunk:
                entry = self.table.heap.fetch(match.rid)
                fields = ctx.read_fields(entry, layout, columns)
                for name in columns:
                    vectors[name].append(fields[name])
                rids.append(match.rid)
            vectors["__rid__"] = rids
            ctx.row_produced(count)
            yield ColumnBatch(vectors, count)
        ctx.record_done()


#: Recursion bound for re-partitioning an overflowing spill partition.  A
#: partition still over budget at this depth is built in memory anyway --
#: each level multiplies the fan-out, so hitting the bound means the input
#: is pathologically skewed (every level hashed the same key together) and
#: further partitioning cannot split it.
_MAX_SPILL_DEPTH = 4


#: Deterministic spill-partition assignment, salted by recursion level.
#: The canonical implementation now lives in the kernels package (it is one
#: of the data-plane contracts both backends must reproduce bit-for-bit);
#: this alias keeps the historical name for the scalar call sites here.
_spill_partition_of = spill_partition_of


def _column_index(names: Sequence[str], column: str) -> int:
    """Position of ``column`` in ``names`` (qualified or unqualified)."""
    names = list(names)
    if column in names:
        return names.index(column)
    short = column.split(".")[-1]
    for position, name in enumerate(names):
        if name.split(".")[-1] == short:
            return position
    raise OperatorError(f"columns {names} have no column {column!r}")


class _SpillFile:
    """Append-only run of pickled ``(position, values)`` records.

    One spill partition side (build or probe) of the memory-budgeted hash
    join.  Records flow through a capacity-limited :class:`BufferPool`, so
    writing and reading them exercises the pool's real eviction/reload path
    and every page transfer is charged through the context's I/O cost
    model.  Each record is zero-padded to the source table's nominal record
    size (``pickle.loads`` stops at the pickle's STOP opcode, so padding is
    ignored on read-back): the spilled *bytes* match the row footprint the
    budget reasons about, not the pickle encoding's whims.

    Pages are pinned only for the duration of one append or one page read,
    so at most one frame is pinned at any instant and the join works with a
    pool as small as a single page (it just faults -- honestly -- on every
    other access).
    """

    __slots__ = ("pool", "record_bytes", "page_numbers", "_current", "row_count")

    def __init__(self, pool: BufferPool, record_bytes: int) -> None:
        self.pool = pool
        self.record_bytes = max(record_bytes, 1)
        self.page_numbers: List[int] = []
        self._current: Optional[int] = None
        self.row_count = 0

    def append(self, ctx: ExecutionContext, position: int, values: Tuple) -> None:
        """Append one record, charging the slot store (and any page I/O)."""
        payload = pickle.dumps((position, values), protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) < self.record_bytes:
            payload = payload.ljust(self.record_bytes, b"\0")
        page = None
        if self._current is not None:
            page = self.pool.fetch_page(self._current, pin=True)
            if not page.has_room_for(len(payload)):
                self.pool.unpin(self._current)
                page = None
        if page is None:
            page = self.pool.allocate_page(pin=True)
            self.page_numbers.append(page.page_number)
            self._current = page.page_number
        slot = page.insert(payload)
        ctx.write_address(page.slot_address(slot), len(payload))
        self.pool.unpin(page.page_number)
        self.row_count += 1

    def read_all(self, ctx: ExecutionContext) -> List[Tuple[int, Tuple]]:
        """Read back every record in append order, charging per record."""
        records: List[Tuple[int, Tuple]] = []
        for page_number in self.page_numbers:
            page = self.pool.fetch_page(page_number, pin=True)
            for slot in page.live_slots():
                record = bytes(page.record_view(slot))
                ctx.read_address(page.slot_address(slot), len(record))
                records.append(pickle.loads(record))
            self.pool.unpin(page_number)
        return records


class VecHashJoinOperator(VectorOperator):
    """Columnar hash join: the build side is concatenated into one columnar
    block whose hash table maps key -> row positions; each probe batch turns
    into a pair of gather lists, so the joined batch is assembled column by
    column with the tuple engine's probe-major output order.

    When the context's adaptive manager enables runtime join-side selection
    (``adaptive_joins``), the operator consults the policy's
    :meth:`~repro.adaptive.policy.AdaptivePolicy.flip_join` between
    build-side batches and may abandon the planner's side choice mid-build:
    the probe input becomes the hash-table side and the (larger) build input
    is streamed through it.  The flip recombines matched pairs into exactly
    the static plan's output -- same rows, same probe-major order, same
    dict-merge column order (see :meth:`_adaptive_batches`).

    When the context carries a ``memory_budget_bytes``, the operator runs
    its grace/hybrid spilling path instead (:meth:`_spill_batches`): both
    inputs are hash-partitioned, as many partitions as fit the budget stay
    resident, the rest spill through a budget-sized buffer pool and are
    joined partition by partition (recursively re-partitioning overflows).
    The recombination argument is the same as the flip's, so the output is
    row-, order- and column-identical to the in-memory join at every
    budget.
    """

    ENTRY_BYTES = HashJoinOperator.ENTRY_BYTES

    def __init__(self,
                 probe: VectorOperator,
                 build: VectorOperator,
                 probe_column: str,
                 build_column: str,
                 ctx: ExecutionContext,
                 build_row_estimate: int = 1024,
                 probe_row_estimate: int = 1024,
                 build_key: Optional[str] = None,
                 probe_key: Optional[str] = None,
                 batch_size: int = 256,
                 build_row_bytes: int = 64) -> None:
        self.probe = probe
        self.build = build
        self.probe_column = probe_column.split(".")[-1]
        self.build_column = build_column.split(".")[-1]
        self.ctx = ctx
        self.build_row_estimate = max(build_row_estimate, 16)
        #: The planner's guess of the probe input's cardinality -- the
        #: expectation a contradicting build-side observation is weighed
        #: against (and the flipped hash area's sizing).
        self.probe_row_estimate = max(probe_row_estimate, 16)
        #: Stable cardinality-statistics keys of the two inputs (source
        #: table names when known), shared across executions and waves.
        self.build_key = build_key or f"card:build.{self.build_column}"
        self.probe_key = probe_key or f"card:probe.{self.probe_column}"
        self.batch_size = max(batch_size, 1)
        #: Nominal bytes one build row occupies when spilled (the source
        #: table's record size when known) -- what the memory budget and the
        #: partition-count decision reason about.
        self.build_row_bytes = max(build_row_bytes, 1)

    def batches(self) -> Iterator[ColumnBatch]:
        budget = getattr(self.ctx, "memory_budget_bytes", None)
        if budget is not None:
            # The budgeted path subsumes the join-side decision: the build
            # side's footprint is governed by partitioning, not by flipping,
            # so the adaptive manager contributes its partition_count policy
            # and cardinality statistics rather than flip_join.
            yield from self._spill_batches(budget, getattr(self.ctx, "adaptive", None))
            return
        adaptive = getattr(self.ctx, "adaptive", None)
        if adaptive is not None and not adaptive.join_sides:
            adaptive = None
        if adaptive is None:
            yield from self._static_batches()
        else:
            yield from self._adaptive_batches(adaptive)

    def _resize_hash_area(self, buckets: int, keys: Sequence) -> Tuple[int, int]:
        """Grow the bucket array past the planner's estimate and re-charge.

        The observed build cardinality has reached ``buckets`` (the sizing
        estimate), so the charged footprint no longer matches reality: keep
        hashing into the undersized area and the simulated working set --
        and its cache behaviour -- would stay estimate-shaped however large
        the input.  Mirror of a hash table's load-factor doubling: allocate
        a doubled area and re-charge the rehash of every resident key.
        Returns ``(new_buckets, new_area)``.
        """
        ctx = self.ctx
        entry_bytes = self.ENTRY_BYTES
        new_buckets = max(buckets * 2, 16)
        new_area = ctx.allocate_workspace(new_buckets * entry_bytes)
        if keys:
            ctx.visit_batch("hash_build", len(keys))
            for bucket in ctx.kernels.bucket_indices(keys, new_buckets):
                ctx.write_address(new_area + bucket * entry_bytes, entry_bytes)
        return new_buckets, new_area

    def _static_batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        kernels = ctx.kernels
        hash_area = ctx.allocate_workspace(self.build_row_estimate * self.ENTRY_BYTES)
        buckets = self.build_row_estimate
        entry_bytes = self.ENTRY_BYTES

        build_columns: Dict[str, List] = {}
        build_count = 0
        build_keys: List = []
        hash_table: Dict[object, List[int]] = {}
        for batch in self.build.batches():
            if not len(batch):
                continue
            ctx.visit_batch("hash_build", len(batch))
            if not build_columns:
                build_columns = {name: list(vector)
                                 for name, vector in batch.columns.items()}
            else:
                for name, vector in batch.columns.items():
                    build_columns[name].extend(vector)
            keys = batch.vector(self.build_column)
            if build_count + len(keys) <= buckets:
                # No mid-batch resize possible: hash the whole key vector at
                # once.  The per-key charge below is untouched.
                for key, bucket in zip(keys, kernels.bucket_indices(keys, buckets)):
                    ctx.write_address(hash_area + bucket * entry_bytes, entry_bytes)
                    hash_table.setdefault(key, []).append(build_count)
                    build_keys.append(key)
                    build_count += 1
                continue
            for key in keys:
                if build_count == buckets:
                    # Observed cardinality exceeds the sizing estimate:
                    # reconcile by doubling (and re-charging) the area.
                    buckets, hash_area = self._resize_hash_area(buckets, build_keys)
                bucket_address = hash_area + (hash(key) % buckets) * entry_bytes
                ctx.write_address(bucket_address, entry_bytes)
                hash_table.setdefault(key, []).append(build_count)
                build_keys.append(key)
                build_count += 1
        build_block = ColumnBatch(build_columns, build_count)

        for batch in self.probe.batches():
            if not len(batch):
                continue
            ctx.visit_batch("hash_probe", len(batch))
            build_positions: List[int] = []
            probe_positions: List[int] = []
            probe_keys = batch.vector(self.probe_column)
            buckets_of = kernels.bucket_indices(probe_keys, buckets)
            for position, key in enumerate(probe_keys):
                bucket_address = hash_area + buckets_of[position] * entry_bytes
                ctx.read_address(bucket_address, entry_bytes)
                matches = hash_table.get(key)
                if not matches:
                    continue
                build_positions.extend(matches)
                probe_positions.extend([position] * len(matches))
            ctx.visit_batch("join_output", len(build_positions))
            ctx.row_produced(len(build_positions))
            yield merge_gather(build_block, build_positions, batch, probe_positions,
                               kernels)

    def _adaptive_batches(self, manager) -> Iterator[ColumnBatch]:
        """Join-side-adaptive execution: ingest, observe, possibly flip.

        The unflipped branch charges exactly like :meth:`_static_batches`
        (plus free collector observations), so ``adaptivity="static"`` with
        ``adaptive_joins=True`` is the cycle-identical control arm.  The
        flipped branch recombines the static output exactly: the static
        join emits pairs ordered lexicographically by (global probe
        position, build insertion position) -- probe batches stream in
        order, and each probe row's matches come back in build insertion
        order -- so collecting every (probe position, build position) match
        of the flipped orientation and sorting restores the static row
        order, while ``merge_gather`` keeps the build block on the left for
        the static dict-merge column order.
        """
        from itertools import chain

        ctx = self.ctx
        kernels = ctx.kernels
        policy = manager.policy
        collector = manager.collector
        hash_area = ctx.allocate_workspace(self.build_row_estimate * self.ENTRY_BYTES)
        buckets = self.build_row_estimate
        entry_bytes = self.ENTRY_BYTES

        build_columns: Dict[str, List] = {}
        build_count = 0
        hash_table: Dict[object, List[int]] = {}
        flipped = False
        pending: Optional[ColumnBatch] = None
        build_iter = self.build.batches()
        for batch in build_iter:
            if not len(batch):
                continue
            if policy.flip_join(self.build_key, self.probe_key,
                                self.probe_row_estimate, build_count,
                                collector):
                flipped = True
                pending = batch
                break
            ctx.visit_batch("hash_build", len(batch))
            if not build_columns:
                build_columns = {name: list(vector)
                                 for name, vector in batch.columns.items()}
            else:
                for name, vector in batch.columns.items():
                    build_columns[name].extend(vector)
            keys = batch.vector(self.build_column)
            for key, bucket in zip(keys, kernels.bucket_indices(keys, buckets)):
                ctx.write_address(hash_area + bucket * entry_bytes, entry_bytes)
                hash_table.setdefault(key, []).append(build_count)
                build_count += 1

        if not flipped:
            collector.observe_cardinality(self.build_key, build_count)
            build_block = ColumnBatch(build_columns, build_count)
            probe_rows = 0
            for batch in self.probe.batches():
                if not len(batch):
                    continue
                probe_rows += len(batch)
                ctx.visit_batch("hash_probe", len(batch))
                build_positions: List[int] = []
                probe_positions: List[int] = []
                probe_keys = batch.vector(self.probe_column)
                buckets_of = kernels.bucket_indices(probe_keys, buckets)
                for position, key in enumerate(probe_keys):
                    bucket_address = hash_area + buckets_of[position] * entry_bytes
                    ctx.read_address(bucket_address, entry_bytes)
                    matches = hash_table.get(key)
                    if not matches:
                        continue
                    build_positions.extend(matches)
                    probe_positions.extend([position] * len(matches))
                ctx.visit_batch("join_output", len(build_positions))
                ctx.row_produced(len(build_positions))
                yield merge_gather(build_block, build_positions, batch,
                                   probe_positions, kernels)
            collector.observe_cardinality(self.probe_key, probe_rows)
            return

        # -- flipped: the probe input becomes the hash-table side ----------
        flip_buckets = self.probe_row_estimate
        flip_area = ctx.allocate_workspace(flip_buckets * entry_bytes)
        probe_columns: Dict[str, List] = {}
        probe_count = 0
        flip_table: Dict[object, List[int]] = {}
        for batch in self.probe.batches():
            if not len(batch):
                continue
            ctx.visit_batch("hash_build", len(batch))
            if not probe_columns:
                probe_columns = {name: list(vector)
                                 for name, vector in batch.columns.items()}
            else:
                for name, vector in batch.columns.items():
                    probe_columns[name].extend(vector)
            keys = batch.vector(self.probe_column)
            for key, bucket in zip(keys, kernels.bucket_indices(keys, flip_buckets)):
                ctx.write_address(flip_area + bucket * entry_bytes, entry_bytes)
                flip_table.setdefault(key, []).append(probe_count)
                probe_count += 1
        collector.observe_cardinality(self.probe_key, probe_count)
        probe_block = ColumnBatch(probe_columns, probe_count)

        pairs: List[Tuple[int, int]] = []

        def stream_lookups(keys: Sequence, base: int) -> None:
            ctx.visit_batch("hash_probe", len(keys))
            buckets_of = kernels.bucket_indices(keys, flip_buckets)
            for offset, key in enumerate(keys):
                bucket_address = flip_area + buckets_of[offset] * entry_bytes
                ctx.read_address(bucket_address, entry_bytes)
                matches = flip_table.get(key)
                if matches:
                    build_position = base + offset
                    pairs.extend((probe_position, build_position)
                                 for probe_position in matches)

        # Build rows ingested before the flip were wasted hash-build work --
        # the honest cost of a late flip; they stay in the block and are
        # streamed through the flipped table first, in insertion order.
        if build_count:
            stream_lookups(
                ColumnBatch(build_columns, build_count).vector(self.build_column), 0)
        for batch in chain((pending,), build_iter):
            if batch is None or not len(batch):
                continue
            base = build_count
            if not build_columns:
                build_columns = {name: list(vector)
                                 for name, vector in batch.columns.items()}
            else:
                for name, vector in batch.columns.items():
                    build_columns[name].extend(vector)
            build_count += len(batch)
            stream_lookups(batch.vector(self.build_column), base)
        collector.observe_cardinality(self.build_key, build_count)
        build_block = ColumnBatch(build_columns, build_count)

        # Recombination: sorting the matched pairs restores the static
        # probe-major row order exactly (see the method docstring).
        pairs.sort()
        for chunk in _chunked(pairs, self.batch_size):
            probe_positions = [pair[0] for pair in chunk]
            build_positions = [pair[1] for pair in chunk]
            ctx.visit_batch("join_output", len(chunk))
            ctx.row_produced(len(chunk))
            yield merge_gather(build_block, build_positions, probe_block,
                               probe_positions, kernels)

    # ----------------------------------------------- grace/hybrid spilling
    def _spill_batches(self, budget: int, manager) -> Iterator[ColumnBatch]:
        """Memory-budgeted execution: partition, spill, join, recombine.

        Classic grace/hybrid hash join (cf. arXiv:2112.02480) against the
        simulated memory hierarchy:

        * the partition count comes from the policy's ``partition_count``
          decision (planner estimate for static/off, observed cardinality
          for greedy);
        * partitions ``[0, resident)`` build in-memory hash tables during
          ingest, charged exactly like the static join; the rest append
          their rows to per-partition spill files through a buffer pool
          whose capacity *is* the budget, so every page it cannot hold is a
          charged eviction/reload;
        * if ingest observes more resident bytes than the budget allows,
          the highest-numbered resident partition is demoted -- its rows
          are spilled and its table dropped -- until the budget holds
          (dynamic destaging, the "hybrid" in hybrid hash);
        * spilled partitions are joined after ingest; one whose build side
          still exceeds the budget is recursively re-partitioned with a
          level-salted hash (bounded by ``_MAX_SPILL_DEPTH``).

        Identity argument: every match is collected as a (global probe
        position, global build position) pair; the static join emits pairs
        ordered lexicographically by exactly that tuple (probe batches
        stream in order; each probe row's matches come back in build
        insertion order, and per-partition spill files preserve insertion
        order), so sorting the collected pairs restores the static row
        order, and ``merge_gather`` with the build block on the left
        restores the static dict-merge column order.
        """
        ctx = self.ctx
        kernels = ctx.kernels
        entry_bytes = self.ENTRY_BYTES
        row_bytes = self.build_row_bytes
        collector = manager.collector if manager is not None else None
        if manager is not None:
            partitions = manager.policy.partition_count(
                self.build_key, self.build_row_estimate, row_bytes, budget,
                collector)
        else:
            partitions = plan_partition_count(self.build_row_estimate,
                                              row_bytes, budget)
        partitions = max(partitions, 1)

        spill_pool: Optional[BufferPool] = None

        def pool() -> BufferPool:
            # Created lazily so a budget the input fits under allocates
            # nothing and charges nothing beyond the static join's work.
            nonlocal spill_pool
            if spill_pool is None:
                page_size = DEFAULT_PAGE_SIZE
                # Concurrent logical sessions spill into private backing
                # namespaces (ctx.disk_namespace, set by the serving layer)
                # so their backing-store pages cannot collide; solo sessions
                # keep the shared "disk" region.
                backing = getattr(ctx, "disk_namespace", None) or BACKING_REGION
                spill_pool = BufferPool(ctx.address_space, region="workspace",
                                        page_size=page_size,
                                        capacity_pages=max(budget // page_size, 1),
                                        io=ctx,
                                        backing_region=backing)
                self.spill_pool = spill_pool
            return spill_pool

        def spill_file(files: List[Optional[_SpillFile]], index: int) -> _SpillFile:
            handle = files[index]
            if handle is None:
                handle = files[index] = _SpillFile(pool(), row_bytes)
            return handle

        hash_area = ctx.allocate_workspace(self.build_row_estimate * entry_bytes)
        buckets = self.build_row_estimate

        # ---- build ingest: resident tables + spill files ----
        build_columns: Dict[str, List] = {}
        build_count = 0
        resident = partitions
        resident_bytes = 0
        resident_count = 0
        resident_keys: List[List] = [[] for _ in range(partitions)]
        resident_tables: List[Optional[Dict[object, List[int]]]] = [
            {} for _ in range(partitions)]
        resident_rows: List[List[int]] = [[] for _ in range(partitions)]
        build_files: List[Optional[_SpillFile]] = [None] * partitions
        probe_files: List[Optional[_SpillFile]] = [None] * partitions

        def row_values(columns: Dict[str, List], position: int) -> Tuple:
            return tuple(vector[position] for vector in columns.values())

        def demote_one() -> None:
            """Spill the highest-numbered resident partition (destaging)."""
            nonlocal resident, resident_bytes, resident_count
            resident -= 1
            victim = resident
            handle = spill_file(build_files, victim)
            for position in resident_rows[victim]:
                handle.append(ctx, position, row_values(build_columns, position))
            resident_bytes -= len(resident_rows[victim]) * row_bytes
            resident_count -= len(resident_rows[victim])
            resident_tables[victim] = None
            resident_rows[victim] = []
            resident_keys[victim] = []

        for batch in self.build.batches():
            if not len(batch):
                continue
            ctx.visit_batch("hash_build", len(batch))
            if not build_columns:
                build_columns = {name: list(vector)
                                 for name, vector in batch.columns.items()}
            else:
                for name, vector in batch.columns.items():
                    build_columns[name].extend(vector)
            keys = batch.vector(self.build_column)
            # Partition count is fixed for the whole ingest, so the
            # level-0 partition of every key can be assigned in bulk; the
            # bucket hash below cannot (the resident area may resize
            # mid-batch).
            parts = kernels.spill_partitions(keys, 0, partitions)
            for key, part in zip(keys, parts):
                if part < resident:
                    if resident_count == buckets:
                        buckets, hash_area = self._resize_hash_area(
                            buckets,
                            [k for part_keys in resident_keys[:resident]
                             for k in part_keys])
                    bucket_address = hash_area + (hash(key) % buckets) * entry_bytes
                    ctx.write_address(bucket_address, entry_bytes)
                    resident_tables[part].setdefault(key, []).append(build_count)
                    resident_rows[part].append(build_count)
                    resident_keys[part].append(key)
                    resident_count += 1
                    resident_bytes += row_bytes
                    while resident_bytes > budget and resident > 0:
                        demote_one()
                else:
                    spill_file(build_files, part).append(
                        ctx, build_count, row_values(build_columns, build_count))
                build_count += 1
        if collector is not None:
            collector.observe_cardinality(self.build_key, build_count)
        # The resident set is frozen from here on: demotions during the
        # probe phase would lose matches already probed against the table.
        del resident_keys

        # ---- probe ingest: probe resident partitions, spill the rest ----
        probe_columns: Dict[str, List] = {}
        probe_count = 0
        pairs: List[Tuple[int, int]] = []
        for batch in self.probe.batches():
            if not len(batch):
                continue
            ctx.visit_batch("hash_probe", len(batch))
            if not probe_columns:
                probe_columns = {name: list(vector)
                                 for name, vector in batch.columns.items()}
            else:
                for name, vector in batch.columns.items():
                    probe_columns[name].extend(vector)
            keys = batch.vector(self.probe_column)
            # Both the partition count and (resident set frozen) the bucket
            # count are fixed during the probe phase: assign and hash in
            # bulk.
            parts = kernels.spill_partitions(keys, 0, partitions)
            buckets_of = kernels.bucket_indices(keys, buckets)
            for offset, (key, part) in enumerate(zip(keys, parts)):
                if part < resident:
                    bucket_address = hash_area + buckets_of[offset] * entry_bytes
                    ctx.read_address(bucket_address, entry_bytes)
                    matches = resident_tables[part].get(key)
                    if matches:
                        pairs.extend((probe_count, build_position)
                                     for build_position in matches)
                else:
                    handle = build_files[part]
                    # A probe row of a build-empty partition cannot match;
                    # the build phase's partition sizes are known, so grace
                    # joins skip its spill write.
                    if handle is not None and handle.row_count:
                        spill_file(probe_files, part).append(
                            ctx, probe_count,
                            row_values(probe_columns, probe_count))
                probe_count += 1
        if collector is not None:
            collector.observe_cardinality(self.probe_key, probe_count)

        # ---- join the spilled partitions, ascending index ----
        probe_key_index: Optional[int] = None
        build_key_index: Optional[int] = None
        if build_columns:
            build_key_index = _column_index(tuple(build_columns), self.build_column)
        if probe_columns:
            probe_key_index = _column_index(tuple(probe_columns), self.probe_column)
        for part in range(resident, partitions):
            build_handle = build_files[part]
            probe_handle = probe_files[part]
            if build_handle is None or probe_handle is None:
                continue
            if not build_handle.row_count or not probe_handle.row_count:
                continue
            self._join_partition(build_handle.read_all(ctx),
                                 probe_handle.read_all(ctx),
                                 build_key_index, probe_key_index,
                                 level=1, budget=budget, pool=pool,
                                 pairs=pairs)

        # ---- recombination: sorted pairs restore the static order ----
        build_block = ColumnBatch(build_columns, build_count)
        probe_block = ColumnBatch(probe_columns, probe_count)
        pairs.sort()
        for chunk in _chunked(pairs, self.batch_size):
            probe_positions = [pair[0] for pair in chunk]
            build_positions = [pair[1] for pair in chunk]
            ctx.visit_batch("join_output", len(chunk))
            ctx.row_produced(len(chunk))
            yield merge_gather(build_block, build_positions, probe_block,
                               probe_positions, kernels)

    def _join_partition(self,
                        build_rows: List[Tuple[int, Tuple]],
                        probe_rows: List[Tuple[int, Tuple]],
                        build_key_index: int,
                        probe_key_index: int,
                        level: int,
                        budget: int,
                        pool: Callable[[], BufferPool],
                        pairs: List[Tuple[int, int]]) -> None:
        """Join one spilled partition, re-partitioning if it overflows.

        ``build_rows`` / ``probe_rows`` are ``(global position, values)``
        records in insertion order.  A build side over budget is fanned out
        again with the next level's salt (both sides rewritten through the
        spill pool, charged); at :data:`_MAX_SPILL_DEPTH` the partition is
        built in memory regardless -- recursion that deep means one
        duplicate-heavy key no amount of partitioning can split.
        """
        ctx = self.ctx
        kernels = ctx.kernels
        entry_bytes = self.ENTRY_BYTES
        row_bytes = self.build_row_bytes
        footprint = len(build_rows) * row_bytes
        if footprint > budget and level < _MAX_SPILL_DEPTH and len(build_rows) > 1:
            fanout = max(plan_partition_count(len(build_rows), row_bytes, budget), 2)
            sub_build: List[Optional[_SpillFile]] = [None] * fanout
            sub_probe: List[Optional[_SpillFile]] = [None] * fanout
            build_parts = kernels.spill_partitions(
                [values[build_key_index] for _, values in build_rows],
                level, fanout)
            for (position, values), part in zip(build_rows, build_parts):
                handle = sub_build[part]
                if handle is None:
                    handle = sub_build[part] = _SpillFile(pool(), row_bytes)
                handle.append(ctx, position, values)
            probe_parts = kernels.spill_partitions(
                [values[probe_key_index] for _, values in probe_rows],
                level, fanout)
            for (position, values), part in zip(probe_rows, probe_parts):
                build_handle = sub_build[part]
                if build_handle is None or not build_handle.row_count:
                    continue
                handle = sub_probe[part]
                if handle is None:
                    handle = sub_probe[part] = _SpillFile(pool(), row_bytes)
                handle.append(ctx, position, values)
            for part in range(fanout):
                build_handle = sub_build[part]
                probe_handle = sub_probe[part]
                if build_handle is None or probe_handle is None:
                    continue
                if not build_handle.row_count or not probe_handle.row_count:
                    continue
                self._join_partition(build_handle.read_all(ctx),
                                     probe_handle.read_all(ctx),
                                     build_key_index, probe_key_index,
                                     level + 1, budget, pool, pairs)
            return

        buckets = max(len(build_rows), 16)
        area = ctx.allocate_workspace(buckets * entry_bytes)
        table: Dict[object, List[int]] = {}
        ctx.visit_batch("hash_build", len(build_rows))
        build_keys = [values[build_key_index] for _, values in build_rows]
        for (position, values), bucket in zip(
                build_rows, kernels.bucket_indices(build_keys, buckets)):
            ctx.write_address(area + bucket * entry_bytes, entry_bytes)
            table.setdefault(values[build_key_index], []).append(position)
        ctx.visit_batch("hash_probe", len(probe_rows))
        probe_keys = [values[probe_key_index] for _, values in probe_rows]
        for (position, values), bucket in zip(
                probe_rows, kernels.bucket_indices(probe_keys, buckets)):
            ctx.read_address(area + bucket * entry_bytes, entry_bytes)
            matches = table.get(values[probe_key_index])
            if matches:
                pairs.extend((position, build_position)
                             for build_position in matches)


class VecNestedLoopJoinOperator(VectorOperator):
    """Block nested-loop join: the inner input is rescanned (and cached as
    one columnar block) once per outer *batch* instead of once per outer
    *row*, while preserving the tuple engine's outer-major output order."""

    def __init__(self,
                 outer: VectorOperator,
                 inner_factory: Callable[[], VectorOperator],
                 outer_column: str,
                 inner_column: str,
                 ctx: ExecutionContext) -> None:
        self.outer = outer
        self.inner_factory = inner_factory
        self.outer_column = outer_column.split(".")[-1]
        self.inner_column = inner_column.split(".")[-1]
        self.ctx = ctx

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        for outer_batch in self.outer.batches():
            if not len(outer_batch):
                continue
            inner_block = _concat_batches(self.inner_factory().batches())
            inner_keys = (inner_block.vector(self.inner_column)
                          if len(inner_block) else [])
            inner_count = len(inner_block)
            inner_positions: List[int] = []
            outer_positions: List[int] = []
            for outer_position, outer_key in enumerate(
                    outer_batch.vector(self.outer_column)):
                # The match tests against the cached block are the join's
                # per-record work; one amortised invocation covers them all.
                ctx.visit_batch("inner_scan_next", inner_count)
                for inner_position, inner_key in enumerate(inner_keys):
                    if inner_key == outer_key:
                        inner_positions.append(inner_position)
                        outer_positions.append(outer_position)
            ctx.visit_batch("join_output", len(inner_positions))
            ctx.row_produced(len(inner_positions))
            yield merge_gather(inner_block, inner_positions,
                               outer_batch, outer_positions, ctx.kernels)


class VecIndexNestedLoopJoinOperator(VectorOperator):
    """Index nested-loop join probing the inner index once per outer row,
    with the routine charges amortised over each outer batch."""

    def __init__(self,
                 outer: VectorOperator,
                 inner_table: Table,
                 inner_index: BTreeIndex,
                 outer_column: str,
                 ctx: ExecutionContext,
                 inner_output_columns: Sequence[str] = ()) -> None:
        self.outer = outer
        self.inner_table = inner_table
        self.inner_index = inner_index
        self.outer_column = outer_column.split(".")[-1]
        self.inner_output_columns = tuple(sorted({c.split(".")[-1]
                                                  for c in inner_output_columns}))
        self.ctx = ctx

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        layout = self.inner_table.layout
        inner_names = self.inner_output_columns
        for outer_batch in self.outer.batches():
            if not len(outer_batch):
                continue
            descend_steps = 0
            leaf_advances = 0
            rid_fetches = 0
            outer_positions: List[int] = []
            inner_vectors: Dict[str, List] = {name: [] for name in inner_names}
            for outer_position, key in enumerate(
                    outer_batch.vector(self.outer_column)):
                for step in self.inner_index.descend(key):
                    descend_steps += 1
                    ctx.read_address(step.node_address, 8)
                    ctx.read_address(step.entry_address, 16)
                matched = False
                for match in self.inner_index.range_search(key, key,
                                                           include_low=True,
                                                           include_high=True):
                    matched = True
                    leaf_advances += 1
                    ctx.read_address(match.entry_address, 16)
                    rid_fetches += 1
                    entry = self.inner_table.heap.fetch(match.rid)
                    outer_positions.append(outer_position)
                    if inner_names:
                        fields = ctx.read_fields(entry, layout, inner_names)
                        for name in inner_names:
                            inner_vectors[name].append(fields[name])
                if not matched:
                    leaf_advances += 1
            ctx.visit_batch("index_descend_node", descend_steps)
            ctx.visit_batch("leaf_advance", leaf_advances)
            ctx.visit_batch("rid_fetch", rid_fetches)
            ctx.visit_batch("join_output", len(outer_positions))
            ctx.row_produced(len(outer_positions))
            joined_count = len(outer_positions)
            yield merge_gather(outer_batch, outer_positions,
                               ColumnBatch(inner_vectors, joined_count),
                               range(joined_count), ctx.kernels)


class VecScalarAggregateOperator(VectorOperator):
    """Columnar scalar aggregation: each accumulator folds a whole column
    vector per batch (loaded and stored once around the loop) in the child's
    row order, so results are bit-identical to the tuple engine."""

    STATE_BYTES = 32

    def __init__(self, child: VectorOperator, aggregates: Sequence[Aggregate],
                 ctx: ExecutionContext) -> None:
        if not aggregates:
            raise OperatorError("VecScalarAggregateOperator needs at least one aggregate")
        self.child = child
        self.aggregates = tuple(aggregates)
        self.ctx = ctx

    def batches(self) -> Iterator[ColumnBatch]:
        ctx = self.ctx
        kernels = ctx.kernels
        state_base = ctx.allocate_workspace(len(self.aggregates) * self.STATE_BYTES)
        states = [AggregateState(agg) for agg in self.aggregates]
        for batch in self.child.batches():
            count = len(batch)
            if not count:
                continue
            ctx.visit_batch("agg_update", count)
            for position, (agg, state) in enumerate(zip(self.aggregates, states)):
                address = state_base + position * self.STATE_BYTES
                ctx.read_address(address, 8)
                if agg.column is None:
                    kernels.fold_count(state, count)
                else:
                    kernels.fold(state, batch.vector(agg.column))
                ctx.write_address(address, 8)
        yield ColumnBatch({agg.label: [state.result()]
                           for agg, state in zip(self.aggregates, states)}, 1)


# ---------------------------------------------------------------------------
# Plan -> vectorized operator tree
# ---------------------------------------------------------------------------
def build_vectorized_scan(plan: ScanPlan, catalog: Catalog, ctx: ExecutionContext,
                          output_columns: Sequence[str] = (),
                          next_operation: str = "scan_next",
                          batch_size: int = 256,
                          allow_exchange: bool = True) -> VectorOperator:
    """Instantiate a scan plan node into a vectorized operator.

    When the context carries a morsel-parallel executor (``ctx.parallel``,
    threaded from the session's ``parallelism`` knob), sequential scans are
    wrapped in a :class:`~repro.execution.parallel.VecExchangeOperator`,
    which partitions the heap into page morsels, produces the batches in
    workers and replays their charge tapes in canonical order -- results
    and simulated counts stay bit-identical to the serial operator.
    ``allow_exchange=False`` pins a scan to the serial path (rescanned
    nested-loop inners, update lookups).

    When the context instead carries a shared-scan coordinator
    (``ctx.shared_scans``, attached by the serving layer for one admission
    round), sequential scans attach to the round's recorded morsel stream
    for their signature: the scan's data work runs once per round and its
    charge tapes are replayed into each attached query's own context --
    again count-identical to the serial operator.  Sharing steps aside for
    adaptive or morsel-parallel contexts (their scan charges depend on
    per-context runtime state) and for ``allow_exchange=False`` scans.
    """
    if isinstance(plan, SeqScanPlan):
        table = catalog.table(plan.table)
        shared = getattr(ctx, "shared_scans", None)
        if (allow_exchange and shared is not None
                and getattr(ctx, "adaptive", None) is None
                and getattr(ctx, "parallel", None) is None):
            return shared.attach(table, ctx, plan.predicate,
                                 ctx.columns_for_table(table, output_columns),
                                 next_operation, batch_size)
        parallel = getattr(ctx, "parallel", None)
        if allow_exchange and parallel is not None and parallel.workers > 1:
            from .parallel import VecExchangeOperator  # deferred: imports us
            return VecExchangeOperator(
                table, ctx, parallel, predicate=plan.predicate,
                output_columns=ctx.columns_for_table(table, output_columns),
                next_operation=next_operation, batch_size=batch_size)
        return VecSeqScanOperator(table, ctx, predicate=plan.predicate,
                                  output_columns=ctx.columns_for_table(table, output_columns),
                                  next_operation=next_operation,
                                  batch_size=batch_size)
    if isinstance(plan, IndexRangeScanPlan):
        table = catalog.table(plan.table)
        index = ctx.index_for(table, plan.column)
        return VecIndexRangeScanOperator(
            table, index, ctx, low=plan.low, high=plan.high,
            include_low=plan.include_low, include_high=plan.include_high,
            residual_predicate=plan.residual_predicate,
            output_columns=ctx.columns_for_table(table, output_columns),
            batch_size=batch_size)
    if isinstance(plan, IndexPointLookupPlan):
        table = catalog.table(plan.table)
        index = ctx.index_for(table, plan.column)
        return VecIndexPointLookupOperator(
            table, index, ctx, value=plan.value,
            output_columns=ctx.columns_for_table(table, output_columns),
            batch_size=batch_size)
    raise ExecutorError(f"unknown scan plan {plan!r}")


def build_vectorized_join(plan: JoinPlan, catalog: Catalog, ctx: ExecutionContext,
                          output_columns: Sequence[str] = (),
                          batch_size: int = 256) -> VectorOperator:
    """Instantiate a join plan node into a vectorized operator."""
    if isinstance(plan, HashJoinPlan):
        probe_columns = list(output_columns) + [plan.probe_column]
        build_columns = list(output_columns) + [plan.build_column]
        probe = build_vectorized_scan(plan.probe, catalog, ctx, probe_columns,
                                      batch_size=batch_size)
        build = build_vectorized_scan(plan.build, catalog, ctx, build_columns,
                                      batch_size=batch_size)
        build_table_name = getattr(plan.build, "table", None)
        probe_table_name = getattr(plan.probe, "table", None)
        estimate = catalog.table(build_table_name).row_count if build_table_name else 1024
        probe_estimate = (catalog.table(probe_table_name).row_count
                          if probe_table_name else 1024)
        build_row_bytes = (catalog.table(build_table_name).layout.record_size
                           if build_table_name else 64)
        return VecHashJoinOperator(
            probe, build, plan.probe_column, plan.build_column, ctx,
            build_row_estimate=max(estimate, 16),
            probe_row_estimate=max(probe_estimate, 16),
            build_key=f"card:{build_table_name or plan.build_column}",
            probe_key=f"card:{probe_table_name or plan.probe_column}",
            batch_size=batch_size,
            build_row_bytes=build_row_bytes)
    if isinstance(plan, NestedLoopJoinPlan):
        outer_columns = list(output_columns) + [plan.outer_column]
        inner_columns = list(output_columns) + [plan.inner_column]
        outer = build_vectorized_scan(plan.outer, catalog, ctx, outer_columns,
                                      batch_size=batch_size)

        def inner_factory() -> VectorOperator:
            # The inner side is re-instantiated once per outer batch; keep
            # it on the serial path (per-batch morsel dispatch would cost
            # more than the rescan it parallelises).
            return build_vectorized_scan(plan.inner, catalog, ctx, inner_columns,
                                         next_operation="inner_scan_next",
                                         batch_size=batch_size,
                                         allow_exchange=False)

        return VecNestedLoopJoinOperator(outer, inner_factory, plan.outer_column,
                                         plan.inner_column, ctx)
    if isinstance(plan, IndexNestedLoopJoinPlan):
        outer_columns = list(output_columns) + [plan.outer_column]
        outer = build_vectorized_scan(plan.outer, catalog, ctx, outer_columns,
                                      batch_size=batch_size)
        inner_table = catalog.table(plan.inner_table)
        inner_index = ctx.index_for(inner_table, plan.inner_column)
        return VecIndexNestedLoopJoinOperator(
            outer, inner_table, inner_index, plan.outer_column, ctx,
            inner_output_columns=ctx.columns_for_table(inner_table, output_columns))
    raise ExecutorError(f"unknown join plan {plan!r}")


def build_vectorized_plan(plan: PhysicalPlan, catalog: Catalog, ctx: ExecutionContext,
                          batch_size: int = 256) -> VectorOperator:
    """Instantiate any physical plan into its vectorized operator tree."""
    if isinstance(plan, AggregatePlan):
        agg_columns = [agg.column for agg in plan.aggregates if agg.column is not None]
        if isinstance(plan.input, (HashJoinPlan, NestedLoopJoinPlan,
                                   IndexNestedLoopJoinPlan)):
            child = build_vectorized_join(plan.input, catalog, ctx, agg_columns,
                                          batch_size=batch_size)
        else:
            child = build_vectorized_scan(plan.input, catalog, ctx, agg_columns,
                                          batch_size=batch_size)
        return VecScalarAggregateOperator(child, plan.aggregates, ctx)
    if isinstance(plan, (SeqScanPlan, IndexRangeScanPlan, IndexPointLookupPlan)):
        return build_vectorized_scan(plan, catalog, ctx, batch_size=batch_size)
    if isinstance(plan, (HashJoinPlan, NestedLoopJoinPlan, IndexNestedLoopJoinPlan)):
        return build_vectorized_join(plan, catalog, ctx, batch_size=batch_size)
    if isinstance(plan, UpdatePlan):
        raise ExecutorError("UpdatePlan is executed via execute_update(), "
                            "not build_vectorized_plan()")
    raise ExecutorError(f"unknown plan node {plan!r}")


def execute_plan_vectorized(plan: PhysicalPlan, catalog: Catalog,
                            ctx: ExecutionContext,
                            execution: Optional[ExecutionConfig] = None) -> List[Row]:
    """Execute a read-only plan batch-at-a-time and return its result rows.

    Dataflow is columnar end-to-end; rows are materialized only here, at
    the session result boundary, so the differential harness still sees
    byte-identical row dicts.  Charges the same single ``query_setup`` as
    the tuple engine -- parsing and optimisation are per query, not per
    engine -- so the harness can also assert identical setup counts.

    An explicit ``execution.kernel_backend`` (``python``/``array``) is
    resolved onto the context here; ``auto`` defers to whatever the
    context already carries (the session resolves ``auto`` at
    construction), so a context wired with specific kernels keeps them.
    """
    batch_size = execution.batch_size if execution is not None else 256
    if execution is not None and execution.kernel_backend != KERNEL_BACKEND_AUTO:
        ctx.kernels = resolve_kernels(execution.kernel_backend)
    tracer = ctx.tracer
    if tracer is None:
        ctx.visit("query_setup")
        operator = build_vectorized_plan(plan, catalog, ctx, batch_size=batch_size)
        return list(operator.rows())
    with tracer.span("query_setup"):
        ctx.visit("query_setup")
    with tracer.span("build_plan"):
        operator = build_vectorized_plan(plan, catalog, ctx, batch_size=batch_size)
    tracer.instrument(operator)
    return list(operator.rows())
