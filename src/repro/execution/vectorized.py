"""Vectorized (batch-at-a-time) physical operators.

The paper finds that on a Pentium II Xeon the commercial engines spend most
of a query not computing but stalling -- and that a large share of the
stalls (L1 instruction misses, branch mispredictions, resource stalls) is
*interpretation overhead*: every record pays the full cost of re-entering
each executor routine.  The vectorized engine here is the classic remedy
(MonetDB/X100 lineage): operators consume and produce *batches* of records,
so each routine is entered once per batch and only its tight loop body runs
per record.

Design rules:

* **Identical results.** Every operator reproduces the tuple engine's rows
  byte-for-byte and in the same order -- the differential harness in
  ``tests/test_vectorized_equivalence.py`` replays every plan shape under
  both engines and diffs the output.  Joins and aggregates therefore use
  exactly the same algorithms and fold orders as
  :mod:`repro.execution.operators`.
* **Amortised charging.** Routine costs go through
  :meth:`~repro.execution.context.ExecutionContext.visit_batch`: one full
  interpreted invocation per batch plus cheap loop-body iterations, which
  is where the computation, L1I-stall and branch savings come from.
* **Layout-aware data access.** Column reads go through
  :meth:`~repro.execution.context.ExecutionContext.read_column_batch`: on a
  PAX page a batch of one column is a single contiguous span read; on an
  NSM page the engine still strides record by record.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..index.btree import BTreeIndex
from ..query.expressions import Aggregate, AggregateState, Expression
from ..query.plans import (AggregatePlan, ExecutionConfig, HashJoinPlan,
                           IndexNestedLoopJoinPlan, IndexPointLookupPlan,
                           IndexRangeScanPlan, JoinPlan, NestedLoopJoinPlan,
                           PhysicalPlan, ScanPlan, SeqScanPlan, UpdatePlan)
from ..storage.catalog import Catalog, Table
from .context import ExecutionContext
from .executor import ExecutorError, _columns_for_table, _index_for
from .operators import HashJoinOperator, OperatorError, Row, row_value

__all__ = [
    "RowBatch", "VectorOperator", "VecSeqScanOperator", "VecFilterOperator",
    "VecIndexRangeScanOperator", "VecIndexPointLookupOperator",
    "VecHashJoinOperator", "VecNestedLoopJoinOperator",
    "VecIndexNestedLoopJoinOperator", "VecScalarAggregateOperator",
    "build_vectorized_scan", "build_vectorized_join", "build_vectorized_plan",
    "execute_plan_vectorized",
]


class RowBatch:
    """One unit of vectorized dataflow: an ordered run of result rows."""

    __slots__ = ("rows",)

    def __init__(self, rows: List[Row]) -> None:
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)


def _chunked(items: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


class VectorOperator:
    """Base class: an iterable of :class:`RowBatch` (and, flattened, rows)."""

    def batches(self) -> Iterator[RowBatch]:
        raise NotImplementedError

    def rows(self) -> Iterator[Row]:
        for batch in self.batches():
            yield from batch.rows

    def __iter__(self) -> Iterator[Row]:
        return self.rows()


class VecSeqScanOperator(VectorOperator):
    """Batch sequential scan with a fused, mask-based filter.

    Each heap page is processed in slot chunks: one amortised
    ``scan_next`` invocation per chunk, column-at-a-time reads for the
    predicate columns, a branch-free selection mask, then column reads for
    the output columns of the qualifying rows only -- the late
    materialisation a vectorized engine does naturally.
    """

    def __init__(self,
                 table: Table,
                 ctx: ExecutionContext,
                 predicate: Optional[Expression] = None,
                 output_columns: Sequence[str] = (),
                 next_operation: str = "scan_next",
                 batch_size: int = 256,
                 count_records: bool = True) -> None:
        self.table = table
        self.ctx = ctx
        self.predicate = predicate
        self.next_operation = next_operation
        self.batch_size = batch_size
        self.count_records = count_records
        predicate_columns = sorted(c.split(".")[-1]
                                   for c in (predicate.columns() if predicate else ()))
        outputs = sorted({c.split(".")[-1] for c in output_columns})
        self.predicate_columns: Tuple[str, ...] = tuple(predicate_columns)
        self.extra_columns: Tuple[str, ...] = tuple(c for c in outputs
                                                    if c not in predicate_columns)

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        table = self.table
        layout = table.layout
        predicate = self.predicate
        for page, slots in table.heap.scan_pages():
            ctx.visit("page_boundary")
            for chunk in _chunked(slots, self.batch_size):
                count = len(chunk)
                ctx.visit_batch(self.next_operation, count)
                columns = ctx.read_column_group_batch(page, layout, chunk,
                                                      self.predicate_columns)
                rows: List[Row] = [
                    {column: values[position] for column, values in columns.items()}
                    for position in range(count)]
                if predicate is not None:
                    mask = [bool(predicate.evaluate(row)) for row in rows]
                    ctx.visit_batch("predicate", count)
                    selected = [position for position in range(count) if mask[position]]
                else:
                    selected = list(range(count))
                out_rows = [rows[position] for position in selected]
                if self.extra_columns and selected:
                    selected_slots = [chunk[position] for position in selected]
                    extras = ctx.read_column_group_batch(page, layout, selected_slots,
                                                         self.extra_columns)
                    for column in self.extra_columns:
                        for row, value in zip(out_rows, extras[column]):
                            row[column] = value
                ctx.row_produced(len(out_rows))
                if self.count_records:
                    ctx.record_done(count)
                yield RowBatch(out_rows)


class VecFilterOperator(VectorOperator):
    """Standalone batch filter (mask-and-compact over the child's batches).

    The scan fuses its own predicate; this operator exists for filters that
    cannot be pushed into an access path (e.g. post-join residuals) and for
    exercising batch-boundary behaviour in isolation.
    """

    def __init__(self, child: VectorOperator, predicate: Expression,
                 ctx: ExecutionContext) -> None:
        self.child = child
        self.predicate = predicate
        self.ctx = ctx

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        predicate = self.predicate
        for batch in self.child.batches():
            if not len(batch):
                yield batch
                continue
            mask = [bool(predicate.evaluate(row)) for row in batch.rows]
            ctx.visit_batch("predicate", len(batch))
            kept = [row for row, keep in zip(batch.rows, mask) if keep]
            ctx.row_produced(len(kept))
            yield RowBatch(kept)


class VecIndexRangeScanOperator(VectorOperator):
    """Batch index range scan: descend once, drain the leaves in batches."""

    def __init__(self,
                 table: Table,
                 index: BTreeIndex,
                 ctx: ExecutionContext,
                 low, high,
                 include_low: bool = False,
                 include_high: bool = False,
                 residual_predicate: Optional[Expression] = None,
                 output_columns: Sequence[str] = (),
                 batch_size: int = 256) -> None:
        self.table = table
        self.index = index
        self.ctx = ctx
        self.low = low
        self.high = high
        self.include_low = include_low
        self.include_high = include_high
        self.residual_predicate = residual_predicate
        self.batch_size = batch_size
        residual_columns = sorted(c.split(".")[-1]
                                  for c in (residual_predicate.columns()
                                            if residual_predicate else ()))
        outputs = sorted({c.split(".")[-1] for c in output_columns})
        self.fetch_columns: Tuple[str, ...] = tuple(
            dict.fromkeys(list(residual_columns) + outputs))

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        table = self.table
        layout = table.layout
        key_column = (self.index.name.split("_")[1]
                      if "_" in self.index.name else "key")

        descent_key = self.low if self.low is not None else self.high
        steps = list(self.index.descend(descent_key))
        ctx.visit_batch("index_descend_node", len(steps))
        for step in steps:
            ctx.read_address(step.node_address, 8)
            ctx.read_address(step.entry_address, 16)

        matches = list(self.index.range_search(self.low, self.high,
                                               include_low=self.include_low,
                                               include_high=self.include_high))
        for chunk in _chunked(matches, self.batch_size):
            count = len(chunk)
            ctx.visit_batch("leaf_advance", count)
            for match in chunk:
                ctx.read_address(match.entry_address, 16)
            ctx.visit_batch("rid_fetch", count)
            rows: List[Row] = []
            for match in chunk:
                entry = table.heap.fetch(match.rid)
                row: Row = {key_column: match.key}
                if self.fetch_columns:
                    row.update(ctx.read_fields(entry, layout, self.fetch_columns))
                rows.append(row)
            if self.residual_predicate is not None:
                mask = [bool(self.residual_predicate.evaluate(row)) for row in rows]
                ctx.visit_batch("predicate", count)
                rows = [row for row, keep in zip(rows, mask) if keep]
            ctx.row_produced(len(rows))
            ctx.record_done(count)
            yield RowBatch(rows)


class VecIndexPointLookupOperator(VectorOperator):
    """Batch exact-match index lookup (the update path's access plan)."""

    def __init__(self, table: Table, index: BTreeIndex, ctx: ExecutionContext,
                 value, output_columns: Sequence[str] = (),
                 batch_size: int = 256) -> None:
        self.table = table
        self.index = index
        self.ctx = ctx
        self.value = value
        self.batch_size = batch_size
        self.output_columns = tuple(sorted({c.split(".")[-1] for c in output_columns}))

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        layout = self.table.layout
        steps = list(self.index.descend(self.value))
        ctx.visit_batch("index_descend_node", len(steps))
        for step in steps:
            ctx.read_address(step.node_address, 8)
            ctx.read_address(step.entry_address, 16)
        matches = list(self.index.range_search(self.value, self.value,
                                               include_low=True, include_high=True))
        columns = self.output_columns or self.table.schema.column_names()
        for chunk in _chunked(matches, self.batch_size):
            count = len(chunk)
            ctx.visit_batch("leaf_advance", count)
            for match in chunk:
                ctx.read_address(match.entry_address, 16)
            ctx.visit_batch("rid_fetch", count)
            rows: List[Row] = []
            for match in chunk:
                entry = self.table.heap.fetch(match.rid)
                row: Row = {}
                row.update(ctx.read_fields(entry, layout, columns))
                row["__rid__"] = match.rid
                rows.append(row)
            ctx.row_produced(len(rows))
            yield RowBatch(rows)
        ctx.record_done()


class VecHashJoinOperator(VectorOperator):
    """Batch hash join: batched build, batched probe, same row order as tuple."""

    ENTRY_BYTES = HashJoinOperator.ENTRY_BYTES

    def __init__(self,
                 probe: VectorOperator,
                 build: VectorOperator,
                 probe_column: str,
                 build_column: str,
                 ctx: ExecutionContext,
                 build_row_estimate: int = 1024) -> None:
        self.probe = probe
        self.build = build
        self.probe_column = probe_column.split(".")[-1]
        self.build_column = build_column.split(".")[-1]
        self.ctx = ctx
        self.build_row_estimate = max(build_row_estimate, 16)

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        hash_area = ctx.allocate_workspace(self.build_row_estimate * self.ENTRY_BYTES)
        buckets = self.build_row_estimate

        hash_table: Dict[object, List[Row]] = {}
        for batch in self.build.batches():
            if not len(batch):
                continue
            ctx.visit_batch("hash_build", len(batch))
            for row in batch:
                key = row_value(row, self.build_column)
                bucket_address = hash_area + (hash(key) % buckets) * self.ENTRY_BYTES
                ctx.write_address(bucket_address, self.ENTRY_BYTES)
                hash_table.setdefault(key, []).append(row)

        for batch in self.probe.batches():
            if not len(batch):
                continue
            ctx.visit_batch("hash_probe", len(batch))
            joined: List[Row] = []
            for row in batch:
                key = row_value(row, self.probe_column)
                bucket_address = hash_area + (hash(key) % buckets) * self.ENTRY_BYTES
                ctx.read_address(bucket_address, self.ENTRY_BYTES)
                matches = hash_table.get(key)
                if not matches:
                    continue
                for build_row in matches:
                    out = dict(build_row)
                    out.update(row)
                    joined.append(out)
            ctx.visit_batch("join_output", len(joined))
            ctx.row_produced(len(joined))
            yield RowBatch(joined)


class VecNestedLoopJoinOperator(VectorOperator):
    """Block nested-loop join: the inner input is rescanned once per outer
    *batch* instead of once per outer *row*, while preserving the tuple
    engine's outer-major output order."""

    def __init__(self,
                 outer: VectorOperator,
                 inner_factory: Callable[[], VectorOperator],
                 outer_column: str,
                 inner_column: str,
                 ctx: ExecutionContext) -> None:
        self.outer = outer
        self.inner_factory = inner_factory
        self.outer_column = outer_column.split(".")[-1]
        self.inner_column = inner_column.split(".")[-1]
        self.ctx = ctx

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        for outer_batch in self.outer.batches():
            if not len(outer_batch):
                continue
            inner_rows: List[Tuple[object, Row]] = [
                (row_value(row, self.inner_column), row)
                for row in self.inner_factory().rows()]
            joined: List[Row] = []
            for outer_row in outer_batch:
                outer_key = row_value(outer_row, self.outer_column)
                # The match tests against the cached block are the join's
                # per-record work; one amortised invocation covers them all.
                ctx.visit_batch("inner_scan_next", len(inner_rows))
                for inner_key, inner_row in inner_rows:
                    if inner_key == outer_key:
                        out = dict(inner_row)
                        out.update(outer_row)
                        joined.append(out)
            ctx.visit_batch("join_output", len(joined))
            ctx.row_produced(len(joined))
            yield RowBatch(joined)


class VecIndexNestedLoopJoinOperator(VectorOperator):
    """Index nested-loop join probing the inner index once per outer row,
    with the routine charges amortised over each outer batch."""

    def __init__(self,
                 outer: VectorOperator,
                 inner_table: Table,
                 inner_index: BTreeIndex,
                 outer_column: str,
                 ctx: ExecutionContext,
                 inner_output_columns: Sequence[str] = ()) -> None:
        self.outer = outer
        self.inner_table = inner_table
        self.inner_index = inner_index
        self.outer_column = outer_column.split(".")[-1]
        self.inner_output_columns = tuple(sorted({c.split(".")[-1]
                                                  for c in inner_output_columns}))
        self.ctx = ctx

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        layout = self.inner_table.layout
        for outer_batch in self.outer.batches():
            if not len(outer_batch):
                continue
            descend_steps = 0
            leaf_advances = 0
            rid_fetches = 0
            joined: List[Row] = []
            for outer_row in outer_batch:
                key = row_value(outer_row, self.outer_column)
                for step in self.inner_index.descend(key):
                    descend_steps += 1
                    ctx.read_address(step.node_address, 8)
                    ctx.read_address(step.entry_address, 16)
                matched = False
                for match in self.inner_index.range_search(key, key,
                                                           include_low=True,
                                                           include_high=True):
                    matched = True
                    leaf_advances += 1
                    ctx.read_address(match.entry_address, 16)
                    rid_fetches += 1
                    entry = self.inner_table.heap.fetch(match.rid)
                    out = dict(outer_row)
                    if self.inner_output_columns:
                        out.update(ctx.read_fields(entry, layout,
                                                   self.inner_output_columns))
                    joined.append(out)
                if not matched:
                    leaf_advances += 1
            ctx.visit_batch("index_descend_node", descend_steps)
            ctx.visit_batch("leaf_advance", leaf_advances)
            ctx.visit_batch("rid_fetch", rid_fetches)
            ctx.visit_batch("join_output", len(joined))
            ctx.row_produced(len(joined))
            yield RowBatch(joined)


class VecScalarAggregateOperator(VectorOperator):
    """Batch scalar aggregation: the accumulators are loaded and stored once
    per batch (they live in registers across the loop) and updated in the
    child's row order, so results are bit-identical to the tuple engine."""

    STATE_BYTES = 32

    def __init__(self, child: VectorOperator, aggregates: Sequence[Aggregate],
                 ctx: ExecutionContext) -> None:
        if not aggregates:
            raise OperatorError("VecScalarAggregateOperator needs at least one aggregate")
        self.child = child
        self.aggregates = tuple(aggregates)
        self.ctx = ctx

    def batches(self) -> Iterator[RowBatch]:
        ctx = self.ctx
        state_base = ctx.allocate_workspace(len(self.aggregates) * self.STATE_BYTES)
        states = [AggregateState(agg) for agg in self.aggregates]
        for batch in self.child.batches():
            if not len(batch):
                continue
            ctx.visit_batch("agg_update", len(batch))
            for position, (agg, state) in enumerate(zip(self.aggregates, states)):
                address = state_base + position * self.STATE_BYTES
                ctx.read_address(address, 8)
                for row in batch:
                    value = None if agg.column is None else row_value(row, agg.column)
                    state.update(value if agg.column is not None else 1)
                ctx.write_address(address, 8)
        yield RowBatch([{agg.label: state.result()
                         for agg, state in zip(self.aggregates, states)}])


# ---------------------------------------------------------------------------
# Plan -> vectorized operator tree
# ---------------------------------------------------------------------------
def build_vectorized_scan(plan: ScanPlan, catalog: Catalog, ctx: ExecutionContext,
                          output_columns: Sequence[str] = (),
                          next_operation: str = "scan_next",
                          batch_size: int = 256) -> VectorOperator:
    """Instantiate a scan plan node into a vectorized operator."""
    if isinstance(plan, SeqScanPlan):
        table = catalog.table(plan.table)
        return VecSeqScanOperator(table, ctx, predicate=plan.predicate,
                                  output_columns=_columns_for_table(table, output_columns),
                                  next_operation=next_operation,
                                  batch_size=batch_size)
    if isinstance(plan, IndexRangeScanPlan):
        table = catalog.table(plan.table)
        index = _index_for(table, plan.column)
        return VecIndexRangeScanOperator(
            table, index, ctx, low=plan.low, high=plan.high,
            include_low=plan.include_low, include_high=plan.include_high,
            residual_predicate=plan.residual_predicate,
            output_columns=_columns_for_table(table, output_columns),
            batch_size=batch_size)
    if isinstance(plan, IndexPointLookupPlan):
        table = catalog.table(plan.table)
        index = _index_for(table, plan.column)
        return VecIndexPointLookupOperator(
            table, index, ctx, value=plan.value,
            output_columns=_columns_for_table(table, output_columns),
            batch_size=batch_size)
    raise ExecutorError(f"unknown scan plan {plan!r}")


def build_vectorized_join(plan: JoinPlan, catalog: Catalog, ctx: ExecutionContext,
                          output_columns: Sequence[str] = (),
                          batch_size: int = 256) -> VectorOperator:
    """Instantiate a join plan node into a vectorized operator."""
    if isinstance(plan, HashJoinPlan):
        probe_columns = list(output_columns) + [plan.probe_column]
        build_columns = list(output_columns) + [plan.build_column]
        probe = build_vectorized_scan(plan.probe, catalog, ctx, probe_columns,
                                      batch_size=batch_size)
        build = build_vectorized_scan(plan.build, catalog, ctx, build_columns,
                                      batch_size=batch_size)
        build_table_name = getattr(plan.build, "table", None)
        estimate = catalog.table(build_table_name).row_count if build_table_name else 1024
        return VecHashJoinOperator(probe, build, plan.probe_column, plan.build_column,
                                   ctx, build_row_estimate=max(estimate, 16))
    if isinstance(plan, NestedLoopJoinPlan):
        outer_columns = list(output_columns) + [plan.outer_column]
        inner_columns = list(output_columns) + [plan.inner_column]
        outer = build_vectorized_scan(plan.outer, catalog, ctx, outer_columns,
                                      batch_size=batch_size)

        def inner_factory() -> VectorOperator:
            return build_vectorized_scan(plan.inner, catalog, ctx, inner_columns,
                                         next_operation="inner_scan_next",
                                         batch_size=batch_size)

        return VecNestedLoopJoinOperator(outer, inner_factory, plan.outer_column,
                                         plan.inner_column, ctx)
    if isinstance(plan, IndexNestedLoopJoinPlan):
        outer_columns = list(output_columns) + [plan.outer_column]
        outer = build_vectorized_scan(plan.outer, catalog, ctx, outer_columns,
                                      batch_size=batch_size)
        inner_table = catalog.table(plan.inner_table)
        inner_index = _index_for(inner_table, plan.inner_column)
        return VecIndexNestedLoopJoinOperator(
            outer, inner_table, inner_index, plan.outer_column, ctx,
            inner_output_columns=_columns_for_table(inner_table, output_columns))
    raise ExecutorError(f"unknown join plan {plan!r}")


def build_vectorized_plan(plan: PhysicalPlan, catalog: Catalog, ctx: ExecutionContext,
                          batch_size: int = 256) -> VectorOperator:
    """Instantiate any physical plan into its vectorized operator tree."""
    if isinstance(plan, AggregatePlan):
        agg_columns = [agg.column for agg in plan.aggregates if agg.column is not None]
        if isinstance(plan.input, (HashJoinPlan, NestedLoopJoinPlan,
                                   IndexNestedLoopJoinPlan)):
            child = build_vectorized_join(plan.input, catalog, ctx, agg_columns,
                                          batch_size=batch_size)
        else:
            child = build_vectorized_scan(plan.input, catalog, ctx, agg_columns,
                                          batch_size=batch_size)
        return VecScalarAggregateOperator(child, plan.aggregates, ctx)
    if isinstance(plan, (SeqScanPlan, IndexRangeScanPlan, IndexPointLookupPlan)):
        return build_vectorized_scan(plan, catalog, ctx, batch_size=batch_size)
    if isinstance(plan, (HashJoinPlan, NestedLoopJoinPlan, IndexNestedLoopJoinPlan)):
        return build_vectorized_join(plan, catalog, ctx, batch_size=batch_size)
    if isinstance(plan, UpdatePlan):
        raise ExecutorError("UpdatePlan is executed via execute_update(), "
                            "not build_vectorized_plan()")
    raise ExecutorError(f"unknown plan node {plan!r}")


def execute_plan_vectorized(plan: PhysicalPlan, catalog: Catalog,
                            ctx: ExecutionContext,
                            execution: Optional[ExecutionConfig] = None) -> List[Row]:
    """Execute a read-only plan batch-at-a-time and return its result rows.

    Charges the same single ``query_setup`` as the tuple engine -- parsing
    and optimisation are per query, not per engine -- so the differential
    harness can assert identical setup counts.
    """
    batch_size = execution.batch_size if execution is not None else 256
    ctx.visit("query_setup")
    operator = build_vectorized_plan(plan, catalog, ctx, batch_size=batch_size)
    return list(operator.rows())
