"""Interchangeable data-plane kernels behind the count-identity wall.

The simulated-hardware charges are the reproduction's ground truth; the
*data work* driving them (predicate masks, selection vectors, gathers, key
hashing, aggregate folds) is an implementation detail the differential
harness proves invisible.  This package splits that data work out of the
vectorized operators into a :class:`~.python_backend.PythonKernels`
interface with two backends:

* ``python`` -- the original pure-Python loops, extracted verbatim.  Zero
  dependencies; the oracle every other backend is diffed against.
* ``array`` -- the same contracts on numpy (an optional extra:
  ``pip install repro-ailamaki99[fast]``), with per-call fallback to the
  oracle whenever vectorized execution could change a value, a type or an
  order (``None`` vectors, mixed dtypes, magnitudes past 2**53, ...).

Backends are selected by the ``kernel_backend`` knob on
:class:`~repro.query.plans.ExecutionConfig` / ``Session`` and threaded to
operators via ``ExecutionContext.kernels``.  ``auto`` (the default) picks
``array`` when numpy is importable and degrades to ``python`` -- with a
one-time warning -- when it is not.

Kernels receive and return plain Python data and never see an execution
context, so the charging calls cannot move: rows, row order, column order
and every simulated counter are byte-identical across backends (asserted
by ``tests/test_kernels.py`` on every planner-producible plan shape).
"""

from __future__ import annotations

import warnings
from typing import Optional

from ...query.plans import (KERNEL_BACKEND_ARRAY, KERNEL_BACKEND_AUTO,
                            KERNEL_BACKEND_PYTHON, KERNEL_BACKENDS)
from .python_backend import PYTHON_KERNELS, PythonKernels, spill_partition_of

__all__ = [
    "KERNEL_BACKEND_AUTO", "KERNEL_BACKEND_PYTHON", "KERNEL_BACKEND_ARRAY",
    "KERNEL_BACKENDS", "PYTHON_KERNELS", "PythonKernels", "Kernels",
    "array_kernels_available", "resolve_kernels", "spill_partition_of",
]

#: The interface type: any backend is substitutable for the Python one.
Kernels = PythonKernels

_ARRAY_KERNELS: Optional[PythonKernels] = None
_ARRAY_IMPORT_ERROR: Optional[BaseException] = None
_WARNED_FALLBACK = False


def _load_array_kernels() -> Optional[PythonKernels]:
    global _ARRAY_KERNELS, _ARRAY_IMPORT_ERROR
    if _ARRAY_KERNELS is None and _ARRAY_IMPORT_ERROR is None:
        try:
            import numpy
        except Exception as exc:  # ImportError, broken install, ...
            _ARRAY_IMPORT_ERROR = exc
            return None
        from .array_backend import ArrayKernels
        _ARRAY_KERNELS = ArrayKernels(numpy)
    return _ARRAY_KERNELS


def array_kernels_available() -> bool:
    """True when numpy is importable (the ``array`` backend can be used)."""
    return _load_array_kernels() is not None


def resolve_kernels(backend: str = KERNEL_BACKEND_AUTO) -> PythonKernels:
    """Return the kernel implementation for a ``kernel_backend`` knob value.

    ``"python"`` and ``"array"`` select explicitly (``"array"`` raises a
    clear error when numpy is missing); ``"auto"`` prefers ``array`` and
    degrades to ``python`` with a one-time :class:`RuntimeWarning`.
    """
    global _WARNED_FALLBACK
    if backend == KERNEL_BACKEND_PYTHON:
        return PYTHON_KERNELS
    if backend == KERNEL_BACKEND_ARRAY:
        kernels = _load_array_kernels()
        if kernels is None:
            raise RuntimeError(
                "kernel_backend='array' requires numpy, which is not "
                "installed (import failed with: "
                f"{_ARRAY_IMPORT_ERROR!r}).  Install the optional extra "
                "with `pip install -e .[fast]`, or use "
                "kernel_backend='auto' to fall back to the pure-Python "
                "kernels.")
        return kernels
    if backend == KERNEL_BACKEND_AUTO:
        kernels = _load_array_kernels()
        if kernels is not None:
            return kernels
        if not _WARNED_FALLBACK:
            _WARNED_FALLBACK = True
            warnings.warn(
                "numpy is not installed; kernel_backend='auto' is falling "
                "back to the pure-Python kernels (results are identical, "
                "only wall-clock speed differs).  Install the optional "
                "extra with `pip install -e .[fast]` for the array "
                "backend.", RuntimeWarning, stacklevel=2)
        return PYTHON_KERNELS
    raise ValueError(f"unknown kernel backend {backend!r}; "
                     f"expected one of {KERNEL_BACKENDS}")
