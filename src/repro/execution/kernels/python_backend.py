"""The pure-Python kernel backend: the engine's original inner loops.

Every method body here is the loop the vectorized operators ran inline
before the kernel split -- extracted verbatim, not rewritten -- so this
backend is simultaneously the zero-dependency fallback and the oracle the
differential suite (``tests/test_kernels.py``) compares the ``array``
backend against.  It imports nothing from the rest of the package (or from
anywhere beyond the stdlib), which is what lets
:mod:`repro.query.expressions` reach it without an import cycle.

The charging contract is enforced structurally: kernels receive only plain
data (value vectors, masks, position lists, aggregate state) and return
plain data.  No kernel ever sees an execution context, so no kernel can
move, add or drop a simulated hardware charge -- backends can only differ
in wall-clock time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["PythonKernels", "PYTHON_KERNELS", "spill_partition_of"]


def spill_partition_of(key, level: int, count: int) -> int:
    """Deterministic spill-partition assignment, salted by recursion level.

    Runs ``hash(key)`` through a splitmix-style finalizer so the partition
    choice is decorrelated both from the ``hash(key) % buckets`` bucket
    choice (otherwise every resident partition would populate only a slice
    of the shared bucket array) and across recursion levels (otherwise a
    re-partitioned overflow would land every row in one sub-partition).
    """
    mixed = (hash(key) ^ ((level + 1) * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF
    mixed = ((mixed ^ (mixed >> 33)) * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 33
    return mixed % count


class PythonKernels:
    """Data-plane kernels as plain Python loops (fallback and oracle)."""

    name = "python"

    # ------------------------------------------------------------ predicates
    def compare_const(self, op, vector: Sequence, constant) -> List[bool]:
        """``value OP constant`` per element, SQL-style ``None -> False``."""
        apply = op.apply
        return [apply(value, constant) for value in vector]

    def between_const(self, vector: Sequence, low, high,
                      include_low: bool, include_high: bool) -> List[bool]:
        """``low < value < high`` (bounds optionally inclusive) per element."""
        if include_low and include_high:
            return [value is not None and low <= value <= high
                    for value in vector]
        if include_low:
            return [value is not None and low <= value < high
                    for value in vector]
        if include_high:
            return [value is not None and low < value <= high
                    for value in vector]
        return [value is not None and low < value < high
                for value in vector]

    def and_masks(self, masks: Sequence[Sequence[bool]]) -> List[bool]:
        """Elementwise conjunction of equal-length boolean masks."""
        return [all(values) for values in zip(*masks)]

    def or_masks(self, masks: Sequence[Sequence[bool]]) -> List[bool]:
        """Elementwise disjunction of equal-length boolean masks."""
        return [any(values) for values in zip(*masks)]

    def not_mask(self, mask: Sequence[bool]) -> List[bool]:
        """Elementwise negation of a boolean mask."""
        return [not value for value in mask]

    # ----------------------------------------------------- selection vectors
    def compact(self, mask: Sequence[bool]) -> List[int]:
        """Positions of the set entries of a selection mask, ascending."""
        return [position for position, passed in enumerate(mask) if passed]

    def select(self, positions: Sequence[int],
               outcomes: Sequence[bool]) -> List[int]:
        """Filter a position list by parallel outcomes (adaptive conjuncts)."""
        return [position for position, passed in zip(positions, outcomes)
                if passed]

    # --------------------------------------------------------------- gathers
    def gather(self, vector: Sequence, positions: Sequence[int]) -> List:
        """Values of ``vector`` at ``positions``, in position order."""
        return [vector[position] for position in positions]

    # --------------------------------------------------------------- hashing
    def bucket_indices(self, keys: Sequence, buckets: int) -> List[int]:
        """``hash(key) % buckets`` per key (hash-join bucket choice)."""
        return [hash(key) % buckets for key in keys]

    def spill_partitions(self, keys: Sequence, level: int,
                         count: int) -> List[int]:
        """Level-salted spill-partition index per key (grace/hybrid join)."""
        return [spill_partition_of(key, level, count) for key in keys]

    # ----------------------------------------------------------- aggregation
    def fold(self, state, vector: Sequence) -> None:
        """Fold a value vector into one aggregate accumulator, in row order."""
        update = state.update
        for value in vector:
            update(value)

    def fold_count(self, state, count: int) -> None:
        """Fold ``count`` ``COUNT(*)`` rows into an aggregate accumulator."""
        update = state.update
        for _ in range(count):
            update(1)


#: Shared stateless instance -- the default wherever no backend was chosen.
PYTHON_KERNELS = PythonKernels()
