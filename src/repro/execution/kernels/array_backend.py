"""The numpy kernel backend: same contracts, C-speed inner loops.

Every method must return *exactly* what the :class:`PythonKernels` oracle
returns -- same values, same Python types, same order -- because rows built
from kernel output are diffed byte-for-byte by the differential harness.
numpy makes that non-trivial in three ways, each handled by a guard that
falls back to the oracle loop for the offending call:

* **dtype coercion.**  ``np.asarray([1, 2.5])`` silently converts the int
  to a float; gathers must therefore use ``object`` arrays (values pass
  through untouched), and comparisons only run vectorized when the
  inferred dtype provably preserves every comparison outcome (integer
  dtypes always do; float dtypes only below 2**53, where an int -> float64
  coercion is exact).
* **``None`` / mixed values.**  Vectors containing ``None`` (SQL NULL) or
  mixed non-numeric types infer ``object`` dtype; object-dtype ufunc loops
  would call back into Python anyway, so those calls take the oracle path
  and keep its exact ``None -> False`` semantics.
* **accumulation order.**  ``np.sum`` is pairwise, the oracle accumulates
  sequentially; the two agree only when every partial sum is exactly
  representable, so aggregate folds run vectorized only for integer
  vectors whose magnitude bounds prove exactness (and fall back for
  floats, where rounding depends on order).

Hash kernels exploit CPython's ``hash(int) == int`` for ``|int| < 2**61-1``
(with ``hash(-1) == -2``); any key outside that window -- or any non-integer
key -- falls back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .python_backend import PythonKernels

__all__ = ["ArrayKernels"]

#: Largest magnitude below which int -> float64 conversion is exact.
_EXACT_FLOAT = 2.0 ** 53
#: CPython's hash modulus for plain integers (Mersenne prime 2**61 - 1).
_HASH_MODULUS = (1 << 61) - 1


class ArrayKernels(PythonKernels):
    """numpy-backed kernels with per-call fallback to the oracle loops."""

    name = "array"

    def __init__(self, np_module) -> None:
        self._np = np_module
        np = np_module
        self._compare_funcs = {
            "<": np.less, "<=": np.less_equal, "=": np.equal,
            "<>": np.not_equal, ">=": np.greater_equal, ">": np.greater,
        }

    # ----------------------------------------------------------- dtype guard
    def _comparable_array(self, vector: Sequence):
        """Array view of a value vector, or ``None`` when vectorized
        comparisons could differ from the oracle (object dtype, or float
        dtype whose magnitudes reach the int-coercion rounding range)."""
        np = self._np
        try:
            arr = np.asarray(vector)
        except Exception:
            return None
        kind = arr.dtype.kind
        if kind in "bui":
            return arr
        if kind == "f":
            with np.errstate(invalid="ignore"):
                if not bool((np.abs(arr) >= _EXACT_FLOAT).any()):
                    return arr
        return None

    @staticmethod
    def _exact_bound(value) -> bool:
        """True when ``value`` is a number every dtype promotion keeps exact."""
        if isinstance(value, bool):
            return True
        if isinstance(value, int):
            return -(2 ** 53) < value < 2 ** 53
        if isinstance(value, float):
            return abs(value) < _EXACT_FLOAT or value != value or value in (
                float("inf"), float("-inf"))
        return False

    def _int_exact(self, arr, constant) -> bool:
        """Integer-dtype array vs ``constant``: is the promotion exact?

        int64 vs int compares exactly; a float constant promotes the whole
        array to float64, which is lossy from 2**53 up.
        """
        if not isinstance(constant, float):
            return True
        np = self._np
        return not bool((np.abs(arr.astype(np.int64, copy=False))
                         >= 2 ** 53).any())

    # ------------------------------------------------------------ predicates
    def compare_const(self, op, vector: Sequence, constant) -> List[bool]:
        if not vector:
            return []
        if constant is None:
            return [False] * len(vector)
        if self._exact_bound(constant):
            arr = self._comparable_array(vector)
            if arr is not None and (arr.dtype.kind not in "ui"
                                    or self._int_exact(arr, constant)):
                try:
                    mask = self._compare_funcs[op.value](arr, constant)
                except Exception:
                    mask = None
                if mask is not None:
                    return mask.tolist()
        return PythonKernels.compare_const(self, op, vector, constant)

    def between_const(self, vector: Sequence, low, high,
                      include_low: bool, include_high: bool) -> List[bool]:
        if not vector:
            return []
        if self._exact_bound(low) and self._exact_bound(high):
            arr = self._comparable_array(vector)
            if arr is not None and (arr.dtype.kind not in "ui"
                                    or (self._int_exact(arr, low)
                                        and self._int_exact(arr, high))):
                np = self._np
                try:
                    low_ok = arr >= low if include_low else arr > low
                    high_ok = arr <= high if include_high else arr < high
                    mask = np.logical_and(low_ok, high_ok)
                except Exception:
                    mask = None
                if mask is not None:
                    return mask.tolist()
        return PythonKernels.between_const(self, vector, low, high,
                                           include_low, include_high)

    def and_masks(self, masks: Sequence[Sequence[bool]]) -> List[bool]:
        np = self._np
        try:
            block = np.asarray(masks, dtype=bool)
        except Exception:
            return PythonKernels.and_masks(self, masks)
        return np.logical_and.reduce(block, axis=0).tolist()

    def or_masks(self, masks: Sequence[Sequence[bool]]) -> List[bool]:
        np = self._np
        try:
            block = np.asarray(masks, dtype=bool)
        except Exception:
            return PythonKernels.or_masks(self, masks)
        return np.logical_or.reduce(block, axis=0).tolist()

    def not_mask(self, mask: Sequence[bool]) -> List[bool]:
        np = self._np
        return np.logical_not(np.asarray(mask, dtype=bool)).tolist()

    # ----------------------------------------------------- selection vectors
    def compact(self, mask: Sequence[bool]) -> List[int]:
        np = self._np
        return np.flatnonzero(np.asarray(mask, dtype=bool)).tolist()

    def select(self, positions: Sequence[int],
               outcomes: Sequence[bool]) -> List[int]:
        np = self._np
        pos = np.asarray(positions, dtype=np.intp)
        keep = np.asarray(outcomes, dtype=bool)
        return pos[keep].tolist()

    # --------------------------------------------------------------- gathers
    def gather(self, vector: Sequence, positions: Sequence[int]) -> List:
        # An object array moves PyObject pointers in C: every value (ints,
        # floats, strings, None, anything) passes through bit-identical.
        np = self._np
        try:
            arr = np.empty(len(vector), dtype=object)
            arr[:] = vector
            return arr.take(np.asarray(positions, dtype=np.intp)).tolist()
        except Exception:
            return PythonKernels.gather(self, vector, positions)

    # --------------------------------------------------------------- hashing
    def _hash_array(self, keys: Sequence):
        """int64 array equal to ``[hash(k) for k in keys]``, or ``None``."""
        np = self._np
        try:
            arr = np.asarray(keys)
        except Exception:
            return None
        kind = arr.dtype.kind
        if kind == "b":
            arr = arr.astype(np.int64)
        elif kind == "i":
            arr = arr.astype(np.int64, copy=False)
        else:
            return None
        # hash(n) == n only inside (-(2**61 - 1), 2**61 - 1) ...
        if bool(((arr >= _HASH_MODULUS) | (arr <= -_HASH_MODULUS)).any()):
            return None
        # ... except hash(-1) == -2 (CPython reserves -1 for errors).
        if bool((arr == -1).any()):
            arr = np.where(arr == -1, np.int64(-2), arr)
        return arr

    def bucket_indices(self, keys: Sequence, buckets: int) -> List[int]:
        hashes = self._hash_array(keys)
        if hashes is None:
            return PythonKernels.bucket_indices(self, keys, buckets)
        # numpy's int64 % matches Python's floored modulo for positive moduli.
        return (hashes % buckets).tolist()

    def spill_partitions(self, keys: Sequence, level: int,
                         count: int) -> List[int]:
        hashes = self._hash_array(keys)
        if hashes is None:
            return PythonKernels.spill_partitions(self, keys, level, count)
        np = self._np
        # Two's-complement view == Python's ``& 0xFFFF...F`` of a (possibly
        # negative) hash; uint64 arithmetic wraps mod 2**64 like the masks.
        mixed = hashes.view(np.uint64).copy()
        salt = np.uint64(((level + 1) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
        shift = np.uint64(33)
        mixed ^= salt
        mixed = (mixed ^ (mixed >> shift)) * np.uint64(0xFF51AFD7ED558CCD)
        mixed ^= mixed >> shift
        return (mixed % np.uint64(count)).tolist()

    # ----------------------------------------------------------- aggregation
    def fold(self, state, vector: Sequence) -> None:
        np = self._np
        try:
            arr = np.asarray(vector)
        except Exception:
            arr = None
        if arr is None or arr.dtype.kind not in "bi" or not len(vector):
            PythonKernels.fold(self, state, vector)
            return
        arr64 = arr.astype(np.int64, copy=False)
        low = arr64.min().item()
        high = arr64.max().item()
        # Bounds first: past +/-2**53 we fall back anyway, and staying in
        # range keeps ``np.abs`` below it from wrapping on -2**63.
        if low <= -_EXACT_FLOAT or high >= _EXACT_FLOAT:
            PythonKernels.fold(self, state, vector)
            return
        # Exactness proof for the sequential float accumulator: if
        # |total| + sum(|values|) stays below 2**53, every partial sum the
        # oracle's ``total += value`` loop forms is exactly representable,
        # so one exact bulk add lands on the same float.
        magnitude = int(np.abs(arr64).sum(dtype=object))
        if abs(state.total) + magnitude >= _EXACT_FLOAT:
            PythonKernels.fold(self, state, vector)
            return
        state.count += len(vector)
        state.total += int(arr64.sum(dtype=object))
        if state.minimum is None or low < state.minimum:
            state.minimum = low
        if state.maximum is None or high > state.maximum:
            state.maximum = high

    def fold_count(self, state, count: int) -> None:
        if count <= 0:
            return
        if abs(state.total) + count >= _EXACT_FLOAT:
            PythonKernels.fold_count(self, state, count)
            return
        state.count += count
        state.total += count
        if state.minimum is None or 1 < state.minimum:
            state.minimum = 1
        if state.maximum is None or 1 > state.maximum:
            state.maximum = 1
