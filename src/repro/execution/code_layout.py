"""Instruction-space layout of the executor's code paths.

The paper's instruction-cache findings are about *where code lives*: the L1
I-cache stalls come from the executor's per-record code paths competing for a
16 KB cache, and the suggested remedy is better instruction placement
("storing together frequently accessed instructions while pushing instructions
that are not used that often ... to different locations").

To expose that behaviour, every executor routine of a system profile is laid
out in the ``code`` region of the simulated address space as a
:class:`CodeSegment`:

* a contiguous run of *hot* cache lines re-fetched on every invocation,
* a per-invocation allotment of *cold* lines drawn from a large rotating pool
  shared by the whole system (low-locality helper code, dispatch targets,
  specialisations), and
* the addresses of the routine's dynamic branch sites (used by the BTB).

The per-record instruction working set, and hence the L1I miss behaviour, is
therefore an emergent property of the profile's footprints and the cache
geometry rather than a hard-coded number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..storage.address_space import AddressSpace
from ..systems.profile import OperationCost, OPERATION_NAMES, SystemProfile

#: Instruction cache line size used to chop segments into line addresses.
LINE_BYTES = 32


@dataclass(frozen=True)
class BranchSite:
    """A branch site bound to a concrete instruction address."""

    name: str
    kind: str
    weight: int
    address: int


@dataclass(frozen=True)
class CodeSegment:
    """One executor routine placed in instruction address space."""

    name: str
    base_address: int
    hot_lines: Tuple[int, ...]
    cold_lines_per_visit: int
    instructions: int
    uops: int
    data_refs: int
    workspace_touches: int
    dependency_stall_cycles: float
    fu_stall_cycles: float
    ild_stall_cycles: float
    branch_sites: Tuple[BranchSite, ...]
    bulk_branches: int
    bulk_taken: int
    #: Precomputed ``int(round(...))`` of the three stall components plus
    #: their total, exactly as
    #: :meth:`~repro.hardware.processor.SimulatedProcessor.add_resource_stalls`
    #: would derive them per visit -- hoisting the per-visit rounding out of
    #: the simulator's hottest path.
    stall_ints: Tuple[int, int, int, int] = (0, 0, 0, 0)

    @property
    def hot_bytes(self) -> int:
        return len(self.hot_lines) * LINE_BYTES

    @property
    def simulated_branch_weight(self) -> int:
        return sum(site.weight for site in self.branch_sites)


class CodeLayout:
    """Places every routine of a profile into the simulated code region."""

    def __init__(self, profile: SystemProfile, address_space: AddressSpace) -> None:
        self.profile = profile
        self.address_space = address_space
        self._segments: Dict[str, CodeSegment] = {}
        self.cold_pool_base = address_space.allocate(
            "code", profile.cold_code_pool_bytes, alignment=LINE_BYTES)
        self.cold_pool_lines = max(profile.cold_code_pool_bytes // LINE_BYTES, 1)
        for operation in OPERATION_NAMES:
            self._segments[operation] = self._place(operation, profile.cost(operation))

    # ------------------------------------------------------------ placement
    def _place(self, name: str, cost: OperationCost) -> CodeSegment:
        profile = self.profile
        hot_bytes = max(cost.code_bytes, LINE_BYTES)
        span = hot_bytes + profile.code_layout_gap_bytes
        base = self.address_space.allocate("code", span, alignment=LINE_BYTES)
        n_lines = (hot_bytes + LINE_BYTES - 1) // LINE_BYTES
        hot_lines = tuple(base + i * LINE_BYTES for i in range(n_lines))

        # Branch sites live inside the hot code, spread across its span.
        sites = []
        n_sites = len(cost.branch_sites)
        for position, spec in enumerate(cost.branch_sites):
            offset = (hot_bytes * (position + 1)) // (n_sites + 1)
            sites.append(BranchSite(name=f"{name}.{spec.name}", kind=spec.kind,
                                    weight=spec.weight, address=base + offset))

        uops = int(round(cost.instructions * profile.uops_per_instruction))
        total_branches = int(round(cost.instructions * profile.branch_fraction))
        simulated = sum(spec.weight for spec in cost.branch_sites)
        bulk = max(total_branches - simulated, 0)
        bulk_taken = int(round(bulk * 0.6))
        cold_lines = (cost.cold_code_bytes + LINE_BYTES - 1) // LINE_BYTES if cost.cold_code_bytes else 0

        ild_stall_cycles = cost.instructions * profile.ild_stall_per_instruction
        dep_int = int(round(cost.dependency_stall_cycles)) \
            if cost.dependency_stall_cycles > 0 else 0
        fu_int = int(round(cost.fu_stall_cycles)) if cost.fu_stall_cycles > 0 else 0
        ild_int = int(round(ild_stall_cycles)) if ild_stall_cycles > 0 else 0

        return CodeSegment(
            name=name,
            base_address=base,
            hot_lines=hot_lines,
            cold_lines_per_visit=cold_lines,
            instructions=cost.instructions,
            uops=uops,
            data_refs=cost.data_refs,
            workspace_touches=cost.workspace_touches,
            dependency_stall_cycles=cost.dependency_stall_cycles,
            fu_stall_cycles=cost.fu_stall_cycles,
            ild_stall_cycles=ild_stall_cycles,
            branch_sites=tuple(sites),
            bulk_branches=bulk,
            bulk_taken=bulk_taken,
            stall_ints=(dep_int, fu_int, ild_int, dep_int + fu_int + ild_int),
        )

    # -------------------------------------------------------------- queries
    def segment(self, operation: str) -> CodeSegment:
        try:
            return self._segments[operation]
        except KeyError:
            raise KeyError(f"no code segment for operation {operation!r}") from None

    def segments(self) -> Dict[str, CodeSegment]:
        return dict(self._segments)

    def hot_footprint_bytes(self, operations: Tuple[str, ...]) -> int:
        """Unique hot-code bytes of a path touching the given routines."""
        return sum(self._segments[op].hot_bytes for op in dict.fromkeys(operations))

    def total_code_bytes(self) -> int:
        """Hot code plus the cold pool (the system's instruction footprint)."""
        return (sum(seg.hot_bytes for seg in self._segments.values())
                + self.profile.cold_code_pool_bytes)
