"""Execution engine: code layout, execution context, operators, executor."""

from .code_layout import BranchSite, CodeLayout, CodeSegment, LINE_BYTES
from .context import ExecutionContext
from .executor import (ExecutorError, build_plan, build_scan, build_join,
                       execute_plan, execute_update)
from .operators import (HashJoinOperator, IndexNestedLoopJoinOperator,
                        IndexPointLookupOperator, IndexRangeScanOperator,
                        NestedLoopJoinOperator, Operator, OperatorError, Row,
                        ScalarAggregateOperator, SeqScanOperator, row_value)

__all__ = [
    "BranchSite", "CodeLayout", "CodeSegment", "LINE_BYTES",
    "ExecutionContext",
    "ExecutorError", "build_plan", "build_scan", "build_join", "execute_plan",
    "execute_update",
    "HashJoinOperator", "IndexNestedLoopJoinOperator", "IndexPointLookupOperator",
    "IndexRangeScanOperator", "NestedLoopJoinOperator", "Operator", "OperatorError",
    "Row", "ScalarAggregateOperator", "SeqScanOperator", "row_value",
]
