"""Execution engine: code layout, execution context, operators, executor.

Two engines share the executor's plans: the tuple-at-a-time Volcano
iterators in :mod:`.operators` (what the paper's systems do) and the
batch-at-a-time operators in :mod:`.vectorized` (the amortised
interpretation path).  ``execute_plan``/``execute_update`` dispatch on an
:class:`~repro.query.plans.ExecutionConfig`.
"""

from .code_layout import BranchSite, CodeLayout, CodeSegment, LINE_BYTES
from .context import ExecutionContext
from .executor import (ExecutorError, build_plan, build_scan, build_join,
                       execute_plan, execute_update)
from .operators import (HashJoinOperator, IndexNestedLoopJoinOperator,
                        IndexPointLookupOperator, IndexRangeScanOperator,
                        NestedLoopJoinOperator, Operator, OperatorError, Row,
                        ScalarAggregateOperator, SeqScanOperator, row_value)
from .vectorized import (ColumnBatch, VecFilterOperator, VecHashJoinOperator,
                         VecIndexNestedLoopJoinOperator,
                         VecIndexPointLookupOperator, VecIndexRangeScanOperator,
                         VecNestedLoopJoinOperator, VecScalarAggregateOperator,
                         VecSeqScanOperator, VectorOperator, merge_gather,
                         build_vectorized_join, build_vectorized_plan,
                         build_vectorized_scan, execute_plan_vectorized)

__all__ = [
    "BranchSite", "CodeLayout", "CodeSegment", "LINE_BYTES",
    "ExecutionContext",
    "ExecutorError", "build_plan", "build_scan", "build_join", "execute_plan",
    "execute_update",
    "HashJoinOperator", "IndexNestedLoopJoinOperator", "IndexPointLookupOperator",
    "IndexRangeScanOperator", "NestedLoopJoinOperator", "Operator", "OperatorError",
    "Row", "ScalarAggregateOperator", "SeqScanOperator", "row_value",
    "ColumnBatch", "VectorOperator", "VecFilterOperator", "VecHashJoinOperator",
    "VecIndexNestedLoopJoinOperator", "VecIndexPointLookupOperator",
    "VecIndexRangeScanOperator", "VecNestedLoopJoinOperator",
    "VecScalarAggregateOperator", "VecSeqScanOperator", "merge_gather",
    "build_vectorized_join", "build_vectorized_plan", "build_vectorized_scan",
    "execute_plan_vectorized",
]
