"""Open-loop serving driver: a deterministic arrival trace over mixed classes.

The driver models *heavy traffic* against the serving layer the way queueing
studies do: an **open-loop** arrival process (clients submit on their own
schedule, they do not wait for earlier queries to finish) over a mix of the
microbenchmark's query classes.  Arrivals are Poisson-ish — exponential
interarrival gaps — but fully deterministic: the trace is drawn once from a
seeded :class:`random.Random`, so two runs of the same config submit the
exact same queries at the exact same instants.

Time is **virtual**: the simulator serves rounds back to back on the host,
and the driver advances a virtual clock by each round's measured wall-clock
service time.  A query's latency is therefore ``completion_virtual_time -
arrival_time`` — queueing delay included — which is exactly what the latency
of a real single-server queue with this service process would be.  Reported
throughput is ``queries / final_virtual_time``.

Simulated counts stay per-query and exact: the report also merges every
query's event counters, so a serving run's total simulated cycles can be
compared against back-to-back solo execution of the same trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.counters import EventCounters
from ..query.plans import LogicalQuery
from .micro import MicroWorkload

__all__ = ["ServingTraceConfig", "TraceItem", "ServingReport", "build_trace",
           "run_open_loop", "percentile"]

#: Query classes a trace can mix, mapped to their workload constructors.
TRACE_CLASSES = ("SRS-10", "SRS-50", "IRS", "SJ", "ACS")


@dataclass(frozen=True)
class ServingTraceConfig:
    """Parameters of one deterministic arrival trace."""

    queries: int = 48
    seed: int = 2026
    #: Mean of the exponential interarrival gap, in (virtual) seconds.  The
    #: default is far below any real service time, i.e. heavy traffic: the
    #: queue builds up and admission rounds run at full width.
    mean_interarrival_seconds: float = 0.0005
    classes: Tuple[str, ...] = TRACE_CLASSES
    #: Relative draw weights per class; ``None`` means uniform.
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ValueError("trace needs at least one query")
        if self.mean_interarrival_seconds <= 0:
            raise ValueError("mean interarrival must be positive")
        unknown = set(self.classes) - set(TRACE_CLASSES)
        if unknown:
            raise ValueError(f"unknown trace classes {sorted(unknown)}")
        if self.weights is not None and len(self.weights) != len(self.classes):
            raise ValueError("weights must match classes")


@dataclass
class TraceItem:
    """One arrival of the trace."""

    index: int
    arrival_seconds: float
    class_key: str
    query: LogicalQuery


def _class_query(workload: MicroWorkload, class_key: str) -> LogicalQuery:
    if class_key == "SRS-10":
        return workload.sequential_range_selection()
    if class_key == "SRS-50":
        return workload.sequential_range_selection(0.5)
    if class_key == "IRS":
        return workload.indexed_range_selection()
    if class_key == "SJ":
        return workload.sequential_join()
    if class_key == "ACS":
        return workload.skewed_conjunct_selection()
    raise ValueError(f"unknown trace class {class_key!r}")


def build_trace(workload: MicroWorkload,
                config: Optional[ServingTraceConfig] = None) -> List[TraceItem]:
    """Draw the deterministic arrival trace for ``config``.

    Same config (queries, seed, rate, class mix) → byte-identical trace,
    which is what lets the bench gate assert cycle identity across repeats
    and lets the differential tests replay the exact trace serially.
    """
    config = config or ServingTraceConfig()
    rng = random.Random(config.seed)
    items: List[TraceItem] = []
    clock = 0.0
    for index in range(config.queries):
        clock += rng.expovariate(1.0 / config.mean_interarrival_seconds)
        class_key = rng.choices(config.classes,
                                weights=config.weights, k=1)[0]
        items.append(TraceItem(index=index, arrival_seconds=clock,
                               class_key=class_key,
                               query=_class_query(workload, class_key)))
    return items


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(values)
    rank = max(int(-(-fraction * len(ordered) // 1)), 1)  # ceil, >= 1
    return ordered[rank - 1]


@dataclass
class ServingReport:
    """What one open-loop run measured."""

    queries: int
    rounds: int
    #: Virtual seconds from first arrival epoch (0) to last completion.
    makespan_seconds: float
    throughput_qps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    #: Sum of every query's simulated cycles (exact, deterministic).
    total_cycles: int
    #: Sum of every query's result-row count (exact, deterministic).
    total_rows: int
    counters: EventCounters
    latencies: List[float] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    #: Per-class telemetry: virtual-clock latency percentiles plus the
    #: server's cache/sharing counters for that class (see
    #: :class:`repro.serving.server.ClassStats`).
    classes: Dict[str, dict] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"queries": self.queries, "rounds": self.rounds,
                "makespan_seconds": self.makespan_seconds,
                "throughput_qps": self.throughput_qps,
                "latency_p50": self.latency_p50,
                "latency_p95": self.latency_p95,
                "latency_p99": self.latency_p99,
                "total_cycles": self.total_cycles,
                "total_rows": self.total_rows,
                "stats": dict(self.stats),
                "classes": {key: dict(value)
                            for key, value in sorted(self.classes.items())}}


def run_open_loop(server, trace: Sequence[TraceItem]) -> ServingReport:
    """Drive ``server`` with ``trace`` under the open-loop virtual clock.

    Queries are submitted the moment the virtual clock reaches their arrival
    instant; each :meth:`Server.step` round advances the clock by its
    measured wall-clock service time; a query completes at the virtual time
    its round ends.  When the queue drains before the next arrival, the
    clock jumps forward to that arrival (the server idles).
    """
    items = sorted(trace, key=lambda item: (item.arrival_seconds, item.index))
    clock = 0.0
    next_arrival = 0
    submitted: Dict[int, TraceItem] = {}  # server future index -> trace item
    latencies: List[float] = []
    class_latencies: Dict[str, List[float]] = {}
    counters = EventCounters()
    rounds = 0
    completed = 0
    total_rows = 0
    while completed < len(items):
        if server.queue_depth == 0 and next_arrival < len(items):
            clock = max(clock, items[next_arrival].arrival_seconds)
        while (next_arrival < len(items)
               and items[next_arrival].arrival_seconds <= clock):
            item = items[next_arrival]
            future = server.submit(item.query,
                                   label=f"{item.class_key}#{item.index}")
            submitted[future.index] = item
            next_arrival += 1
        served, elapsed = server.step()
        clock += elapsed
        rounds += 1
        for future in served:
            item = submitted[future.index]
            latency = clock - item.arrival_seconds
            latencies.append(latency)
            class_latencies.setdefault(item.class_key, []).append(latency)
            counters.merge(future.outcome.result.counters)
            total_rows += len(future.outcome.rows)
        completed += len(served)
    stats = server.stats.as_dict()
    server_classes = stats.get("classes", {})
    classes: Dict[str, dict] = {}
    for class_key, values in class_latencies.items():
        cell = {"queries": len(values),
                "latency_p50": percentile(values, 0.50),
                "latency_p95": percentile(values, 0.95),
                "latency_p99": percentile(values, 0.99)}
        cell.update(server_classes.get(class_key, {}))
        classes[class_key] = cell
    return ServingReport(
        queries=len(items), rounds=rounds, makespan_seconds=clock,
        throughput_qps=len(items) / clock if clock > 0 else float("inf"),
        latency_p50=percentile(latencies, 0.50),
        latency_p95=percentile(latencies, 0.95),
        latency_p99=percentile(latencies, 0.99),
        total_cycles=counters.get("CPU_CLK_UNHALTED"),
        total_rows=total_rows,
        counters=counters, latencies=latencies,
        stats=stats, classes=classes)
