"""Seeded random streams for the workload generators.

Every dataset in the repo is generated from numpy's PCG64 stream; the
committed baselines (and the paper-figure numbers) are tied to those exact
draws, so there is deliberately no stdlib fallback -- regenerating the data
from ``random.Random`` would silently produce *different* databases and
invalidate every recorded count.  Without numpy the engine itself still runs
(the kernels package falls back to its pure-Python backend); only dataset
generation is off the table, and it says so instead of guessing.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


def default_rng(seed):
    """``numpy.random.default_rng(seed)``, or a clear error without numpy."""
    if _np is None:
        raise RuntimeError(
            "workload data generation requires numpy: dataset identity is "
            "tied to numpy's PCG64 stream, so there is no stdlib fallback. "
            "Install the fast extra: pip install -e .[fast]")
    return _np.random.default_rng(seed)
