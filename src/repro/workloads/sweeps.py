"""Parameter sweeps: selectivity and record size.

Two of the paper's analyses vary a single workload parameter:

* Figure 5.4 (right) varies the *selectivity* of the sequential range
  selection from 0% to 100% and shows that the branch-misprediction stall
  time and the L1 I-cache stall time move together.
* Section 5.2 varies the *record size* between 20 and 200 bytes and observes
  that larger records increase not only the L2 data stalls (less spatial
  locality between the referenced fields of consecutive records) but also the
  L1 instruction misses (more interrupts and page-boundary crossings per
  record), with execution time per record growing by a factor of 2.5--4.

This module provides the canonical sweep points and small helpers for
rebuilding the microbenchmark dataset at each point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from ..engine.database import Database
from .micro import MicroWorkload, MicroWorkloadConfig

#: The selectivities reported in Figure 5.4 (right).
SELECTIVITY_POINTS: Tuple[float, ...] = (0.0, 0.01, 0.05, 0.10, 0.50, 1.00)

#: The record sizes of the Section 5.2 discussion (bytes).
RECORD_SIZE_POINTS: Tuple[int, ...] = (20, 48, 100, 200)


@dataclass(frozen=True)
class SweepPoint:
    """One configured workload instance inside a sweep."""

    label: str
    workload: MicroWorkload
    selectivity: float
    record_size: int


def selectivity_sweep(base_config: Optional[MicroWorkloadConfig] = None,
                      selectivities: Sequence[float] = SELECTIVITY_POINTS) -> Tuple[SweepPoint, ...]:
    """Sweep points sharing one dataset but varying the query selectivity."""
    config = base_config or MicroWorkloadConfig()
    workload = MicroWorkload(config)
    return tuple(SweepPoint(label=f"selectivity={sel:.0%}", workload=workload,
                            selectivity=sel, record_size=config.record_size)
                 for sel in selectivities)


def record_size_sweep(base_config: Optional[MicroWorkloadConfig] = None,
                      record_sizes: Sequence[int] = RECORD_SIZE_POINTS) -> Tuple[SweepPoint, ...]:
    """Sweep points rebuilding the dataset at each record size.

    The row count is held constant (as in the paper), so the total data
    volume grows with the record size; every point therefore needs its own
    database instance, built via :func:`build_database_for_point`.
    """
    config = base_config or MicroWorkloadConfig()
    points = []
    for size in record_sizes:
        point_config = replace(config, record_size=size)
        points.append(SweepPoint(label=f"record_size={size}B",
                                 workload=MicroWorkload(point_config),
                                 selectivity=point_config.selectivity,
                                 record_size=size))
    return tuple(points)


def build_database_for_point(point: SweepPoint, include_s: bool = False,
                             with_index: bool = False,
                             layout_style: str = "nsm") -> Database:
    """Materialise the dataset for one sweep point.

    ``layout_style`` selects the page organisation of the built tables
    (``"nsm"`` / ``"pax"``) -- the "PAX everywhere" axis of the sweeps:
    the row streams are seeded identically for both layouts, so two
    builds of the same point differ only in page organisation.
    """
    database = point.workload.build(include_s=include_s,
                                    layout_style=layout_style)
    if with_index:
        point.workload.create_selection_index(database)
    return database


def pages_touched(database: Database, table: str) -> int:
    """Pages a full sequential scan of ``table`` sweeps (its heap page count).

    The record-size sweep's first-order effect is geometric: with the row
    count held constant, larger records mean fewer records per page and
    therefore strictly more pages (and more cache lines) per scan.  The
    property tests pin exactly this monotonicity per layout.
    """
    return database.table(table).heap.page_count
