"""The paper's microbenchmark workload (Section 3.3).

The database contains one basic relation::

    create table R (a1 integer not null,
                    a2 integer not null,
                    a3 integer not null,
                    <rest of fields>)

populated with 1.2 million 100-byte records whose ``a2`` values are uniformly
distributed between 1 and 40,000, plus a second relation ``S`` defined the
same way with 40,000 records whose ``a1`` is a primary key, so that each ``S``
record joins with 30 records of ``R``.  The three queries are:

1. *Sequential range selection* -- ``select avg(a3) from R where a2 < Hi and
   a2 > Lo`` executed with a sequential scan;
2. *Indexed range selection* -- the same query resubmitted after building a
   non-clustered index on ``R.a2``;
3. *Sequential join* -- ``select avg(R.a3) from R, S where R.a2 = S.a1`` with
   no indexes available.

Because the simulation is pure Python, the workload exposes a ``scale``
factor: at ``scale=1.0`` the row counts match the paper exactly; the defaults
use a much smaller scale whose working set still exceeds the 512 KB L2 cache
several times over, which is the property the L2 behaviour depends on.  The
ratio between R and S (and therefore the join fan-out of 30) and the
uniformity of ``a2`` are preserved at every scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from ..engine.database import Database
from ..query.expressions import (ColumnRef, Comparison, ComparisonOp, Const,
                                 avg, conjunction, range_predicate)
from ..query.plans import JoinQuery, SelectionQuery
from ..storage.schema import ColumnType
from ._rng import default_rng

#: The paper's row counts and value domain (scale == 1.0).
PAPER_R_ROWS = 1_200_000
PAPER_S_ROWS = 40_000
PAPER_A2_DOMAIN = 40_000
#: Records of R joining with each record of S (R rows / S rows).
JOIN_FANOUT = PAPER_R_ROWS // PAPER_S_ROWS

#: Default scale: 1/200th of the paper (6,000-row R, 200-row S, 600 KB of R
#: data -- comfortably larger than the 512 KB L2 cache).
DEFAULT_SCALE = 1.0 / 200.0


@dataclass(frozen=True)
class MicroWorkloadConfig:
    """Parameters of the microbenchmark dataset."""

    scale: float = DEFAULT_SCALE
    record_size: int = 100
    selectivity: float = 0.10
    seed: int = 1999
    minimum_r_rows: int = 300

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.record_size < 12:
            raise ValueError("record_size must hold at least the three declared integers")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError("selectivity must be within [0, 1]")

    @property
    def r_rows(self) -> int:
        return max(int(round(PAPER_R_ROWS * self.scale)), self.minimum_r_rows)

    @property
    def s_rows(self) -> int:
        return max(self.r_rows // JOIN_FANOUT, 1)

    @property
    def a2_domain(self) -> int:
        """Upper bound of the uniform ``a2`` domain (40,000 at scale 1.0)."""
        return self.s_rows

    @property
    def r_bytes(self) -> int:
        return self.r_rows * self.record_size

    @property
    def s_bytes(self) -> int:
        """Bytes of S -- the equijoin's build side, the quantity a join
        memory budget is expressed relative to (the bench's budget sweep
        runs at infinity / 2x / 1x / 0.5x this size)."""
        return self.s_rows * self.record_size


class MicroWorkload:
    """Builds the R/S dataset and the three microbenchmark queries."""

    R_TABLE = "R"
    S_TABLE = "S"

    def __init__(self, config: Optional[MicroWorkloadConfig] = None) -> None:
        self.config = config or MicroWorkloadConfig()

    # ----------------------------------------------------------------- data
    def generate_r_rows(self) -> Iterator[Tuple[int, int, int]]:
        """Rows of R: ``a1`` sequential, ``a2`` uniform over the domain, ``a3`` values."""
        config = self.config
        rng = default_rng(config.seed)
        a2 = rng.integers(1, config.a2_domain + 1, size=config.r_rows)
        a3 = rng.integers(0, 10_000, size=config.r_rows)
        for i in range(config.r_rows):
            yield i + 1, int(a2[i]), int(a3[i])

    def generate_s_rows(self) -> Iterator[Tuple[int, int, int]]:
        """Rows of S: ``a1`` is the primary key 1..|S|."""
        config = self.config
        rng = default_rng(config.seed + 1)
        a2 = rng.integers(1, config.a2_domain + 1, size=config.s_rows)
        a3 = rng.integers(0, 10_000, size=config.s_rows)
        for i in range(config.s_rows):
            yield i + 1, int(a2[i]), int(a3[i])

    def build(self, database: Optional[Database] = None,
              include_s: bool = True, layout_style: str = "nsm") -> Database:
        """Create and load R (and S) into ``database`` (a new one by default).

        ``layout_style`` selects the page organisation of both tables
        (``"nsm"`` slotted pages or ``"pax"`` minipages) -- the layout axis
        of the engine x layout benchmark grid.
        """
        db = database or Database()
        columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32), ("a3", ColumnType.INT32)]
        db.create_table(self.R_TABLE, columns, record_size=self.config.record_size,
                        layout_style=layout_style)
        db.load(self.R_TABLE, self.generate_r_rows())
        if include_s:
            db.create_table(self.S_TABLE, columns, record_size=self.config.record_size,
                            layout_style=layout_style)
            db.load(self.S_TABLE, self.generate_s_rows())
        return db

    def create_selection_index(self, database: Database):
        """Build the non-clustered index on ``R.a2`` (for the indexed selection)."""
        return database.create_index(self.R_TABLE, "a2")

    # -------------------------------------------------------------- queries
    def bounds_for_selectivity(self, selectivity: Optional[float] = None,
                               offset: float = 0.0) -> Tuple[int, int]:
        """``(Lo, Hi)`` bounds giving the requested selectivity.

        The qualification is ``a2 > Lo and a2 < Hi`` with exclusive bounds, so
        for a domain of ``D`` uniform values the selected fraction is
        ``(Hi - Lo - 1) / D``.  ``Lo`` is anchored at 0 as in the paper's
        sweeps (only the width of the interval matters for a uniform column);
        ``offset`` shifts the window's start to a different fraction of the
        domain, which the experiment runner uses to build *warm-up* queries
        that exercise the same code path over a disjoint set of records.
        """
        config = self.config
        if selectivity is None:
            selectivity = config.selectivity
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError("selectivity must be within [0, 1]")
        if not 0.0 <= offset <= 1.0:
            raise ValueError("offset must be within [0, 1]")
        domain = config.a2_domain
        selected = int(round(selectivity * domain))
        low = min(int(round(offset * domain)), domain - selected)
        low = max(low, 0)
        high = low + selected + 1
        return low, high

    def sequential_range_selection(self, selectivity: Optional[float] = None,
                                   offset: float = 0.0) -> SelectionQuery:
        """Query (1): ``select avg(a3) from R where a2 < Hi and a2 > Lo``."""
        low, high = self.bounds_for_selectivity(selectivity, offset)
        return SelectionQuery(
            table=self.R_TABLE,
            aggregates=(avg("a3"),),
            predicate=range_predicate("a2", low, high),
            prefer_index_on=None,
            label=f"SRS {self._selectivity_label(selectivity)}",
        )

    def indexed_range_selection(self, selectivity: Optional[float] = None,
                                offset: float = 0.0) -> SelectionQuery:
        """Query (2): the range selection resubmitted with the index available."""
        low, high = self.bounds_for_selectivity(selectivity, offset)
        return SelectionQuery(
            table=self.R_TABLE,
            aggregates=(avg("a3"),),
            predicate=range_predicate("a2", low, high),
            prefer_index_on="a2",
            label=f"IRS {self._selectivity_label(selectivity)}",
        )

    def skewed_conjunct_selection(self, narrow: float = 0.05,
                                  wide: float = 0.90,
                                  coin_threshold: int = 5_000) -> SelectionQuery:
        """The adaptivity microworkload: a 3-conjunct filter in skewed order.

        ``select avg(a3) from R where a1 <= W and a3 >= C and a2 < N`` with
        the conjuncts deliberately written in the *worst* static order:

        1. ``a1 <= W`` passes ~``wide`` (90%) of rows -- cheap, nearly
           useless as a filter,
        2. ``a3 >= C`` passes ~50% of rows -- a data branch the predictor
           cannot learn (the paper's coin-flip misprediction case), and
        3. ``a2 < N`` passes ~``narrow`` (5%) of rows -- the conjunct that
           should run first.

        A planner without column statistics executes source order, paying
        the 50/50 branch on ~90% of the records and forwarding ~45% of them
        to the selective conjunct.  The greedy runtime policy learns within
        a batch to evaluate ``a2 < N`` first, which short-circuits ~95% of
        the rows past both expensive conjuncts -- the branch-misprediction
        and cycle delta the ``figure_adaptivity`` experiment measures.
        """
        wide_bound, narrow_bound = self._skewed_bounds(narrow, wide)
        predicate = conjunction(
            Comparison(ComparisonOp.LE, ColumnRef("a1"), Const(wide_bound)),
            Comparison(ComparisonOp.GE, ColumnRef("a3"), Const(coin_threshold)),
            Comparison(ComparisonOp.LT, ColumnRef("a2"), Const(narrow_bound)),
        )
        return SelectionQuery(
            table=self.R_TABLE,
            aggregates=(avg("a3"),),
            predicate=predicate,
            prefer_index_on=None,
            label=f"ACS {narrow:.0%}/50%/{wide:.0%}",
        )

    def _skewed_bounds(self, narrow: float, wide: float) -> Tuple[int, int]:
        """``(wide_bound, narrow_bound)`` shared by the query and its truth."""
        config = self.config
        return (max(int(round(wide * config.r_rows)), 1),
                max(int(round(narrow * config.a2_domain)) + 1, 2))

    def expected_skewed_rows(self, narrow: float = 0.05, wide: float = 0.90,
                             coin_threshold: int = 5_000) -> int:
        """Ground-truth count of rows the skewed-conjunct filter qualifies."""
        wide_bound, narrow_bound = self._skewed_bounds(narrow, wide)
        return sum(1 for a1, a2, a3 in self.generate_r_rows()
                   if a1 <= wide_bound and a3 >= coin_threshold
                   and a2 < narrow_bound)

    def sequential_join(self) -> JoinQuery:
        """Query (3): ``select avg(R.a3) from R, S where R.a2 = S.a1``."""
        return JoinQuery(
            left_table=self.R_TABLE,
            right_table=self.S_TABLE,
            left_column="a2",
            right_column="a1",
            aggregates=(avg("R.a3"),),
            label="SJ",
        )

    def skewed_join(self) -> JoinQuery:
        """The adaptive-join microworkload: the planner builds on the wrong side.

        The same equijoin as :meth:`sequential_join`, but with the hash
        join's build side pinned to ``R`` -- the 30x *larger* relation --
        modelling a planner whose stale statistics believed R small.  The
        static plan therefore hashes all of R (a hash area ~30x the L1
        D-cache at default scale, every bucket write a likely miss) and
        probes with the few S rows; runtime join-side selection observes R's
        cardinality streaming past the probe-side expectation within a few
        batches and flips, hashing the small S instead and streaming R
        through an L1D-resident table.  Result rows (and their order) are
        identical either way -- only the charged work differs, which is the
        cycle delta the ``AJS`` benchmark cells record.
        """
        return JoinQuery(
            left_table=self.R_TABLE,
            right_table=self.S_TABLE,
            left_column="a2",
            right_column="a1",
            aggregates=(avg("R.a3"),),
            build_side="left",
            label="AJS",
        )

    def over_budget_join(self) -> JoinQuery:
        """The memory-budget microworkload: the same equijoin, run under a
        ``memory_budget_bytes`` the session chooses relative to
        :attr:`MicroWorkloadConfig.s_bytes` (the build side's footprint).

        The query itself is identical to :meth:`sequential_join` -- the
        planner still builds on the smaller S -- because the budget is an
        execution knob, not a query property: the bench sweeps one query
        across budgets of infinity / 2x / 1x / 0.5x the build size and
        records how the grace/hybrid spilling path trades charged page I/O
        for residency.  Result rows are identical at every budget.
        """
        return JoinQuery(
            left_table=self.R_TABLE,
            right_table=self.S_TABLE,
            left_column="a2",
            right_column="a1",
            aggregates=(avg("R.a3"),),
            label="SJB",
        )

    def _selectivity_label(self, selectivity: Optional[float]) -> str:
        value = self.config.selectivity if selectivity is None else selectivity
        return f"{value:.0%}"

    # --------------------------------------------------------------- truths
    def expected_selected_rows(self, selectivity: Optional[float] = None) -> int:
        """Exact number of R rows the range selection qualifies (ground truth)."""
        low, high = self.bounds_for_selectivity(selectivity)
        return sum(1 for _, a2, _ in self.generate_r_rows() if low < a2 < high)

    def expected_average(self, selectivity: Optional[float] = None) -> Optional[float]:
        """Exact ``avg(a3)`` of the range selection (ground truth for tests)."""
        low, high = self.bounds_for_selectivity(selectivity)
        total = 0
        count = 0
        for _, a2, a3 in self.generate_r_rows():
            if low < a2 < high:
                total += a3
                count += 1
        return total / count if count else None

    def expected_join_rows(self) -> int:
        """Exact number of joined pairs produced by the equijoin."""
        s_keys = {a1 for a1, _, _ in self.generate_s_rows()}
        return sum(1 for _, a2, _ in self.generate_r_rows() if a2 in s_keys)
