"""Synthetic TPC-D-style decision-support workload.

Section 5.5 of the paper runs "the 17 TPC-D selection queries" against a
100 MB database on systems A, B and D, and shows that the clock-per-
instruction breakdown and the cache-related stall breakdown of the TPC-D
average closely resemble the simple sequential range selection -- that is the
paper's methodological argument for studying microbenchmarks.

The actual TPC-D dataset and query text are not reproducible here (and would
add nothing: the paper uses only the *averaged breakdown shape*), so this
module builds a synthetic decision-support schema and a 17-query suite that
exercises the same operator mix over data volumes with the same relationship
to the cache hierarchy:

* a fact table (``lineitem``) much larger than the L2 cache, scanned by most
  queries with varying selectivities and aggregate columns,
* three dimension tables (``orders``, ``part``, ``supplier``) joined to the
  fact table by several queries,
* a non-clustered index on the fact table's date-like column used by the more
  selective queries.

All 17 queries are scalar-aggregate selections or equijoins, matching the
paper's description of the workload as "selection queries".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine.database import Database
from ..query.expressions import avg, count_star, range_predicate
from ..query.plans import JoinQuery, LogicalQuery, SelectionQuery
from ..storage.schema import ColumnType
from ._rng import default_rng

#: Scale of the paper's TPC-D run in bytes (100 MB); the default synthetic
#: scale keeps the same >L2 relationship at a fraction of the size.
PAPER_DATABASE_BYTES = 100 * 1024 * 1024

#: Date-like domain for the fact table's pseudo ``shipdate`` column.
DATE_DOMAIN = 2_400


@dataclass(frozen=True)
class TPCDConfig:
    """Parameters of the synthetic DSS dataset."""

    lineitem_rows: int = 9_000
    orders_rows: int = 900
    part_rows: int = 300
    supplier_rows: int = 60
    lineitem_record_size: int = 120
    dimension_record_size: int = 64
    seed: int = 2025

    def __post_init__(self) -> None:
        if min(self.lineitem_rows, self.orders_rows, self.part_rows, self.supplier_rows) <= 0:
            raise ValueError("all row counts must be positive")

    @property
    def total_bytes(self) -> int:
        return (self.lineitem_rows * self.lineitem_record_size
                + (self.orders_rows + self.part_rows + self.supplier_rows)
                * self.dimension_record_size)


class TPCDWorkload:
    """Builds the synthetic DSS schema, data and 17-query suite."""

    LINEITEM = "lineitem"
    ORDERS = "orders"
    PART = "part"
    SUPPLIER = "supplier"

    def __init__(self, config: Optional[TPCDConfig] = None) -> None:
        self.config = config or TPCDConfig()

    # ----------------------------------------------------------------- data
    def build(self, database: Optional[Database] = None,
              layout_style: str = "nsm") -> Database:
        """Create and populate the four tables, plus the fact-table index.

        ``layout_style`` selects the page organisation of every table
        (``"nsm"`` slotted pages, the paper's systems; ``"pax"`` minipages)
        -- the layout axis of the TPC-under-the-modern-engine matrix.  The
        generated rows are identical for both layouts (one seeded stream).
        """
        config = self.config
        db = database or Database()
        rng = default_rng(config.seed)

        db.create_table(self.LINEITEM, [
            ("l_orderkey", ColumnType.INT32),
            ("l_partkey", ColumnType.INT32),
            ("l_suppkey", ColumnType.INT32),
            ("l_quantity", ColumnType.INT32),
            ("l_extendedprice", ColumnType.INT32),
            ("l_discount", ColumnType.INT32),
            ("l_shipdate", ColumnType.INT32),
        ], record_size=config.lineitem_record_size, layout_style=layout_style)
        orderkeys = rng.integers(1, config.orders_rows + 1, size=config.lineitem_rows)
        partkeys = rng.integers(1, config.part_rows + 1, size=config.lineitem_rows)
        suppkeys = rng.integers(1, config.supplier_rows + 1, size=config.lineitem_rows)
        quantities = rng.integers(1, 51, size=config.lineitem_rows)
        prices = rng.integers(100, 100_000, size=config.lineitem_rows)
        discounts = rng.integers(0, 11, size=config.lineitem_rows)
        shipdates = rng.integers(1, DATE_DOMAIN + 1, size=config.lineitem_rows)
        db.load(self.LINEITEM, (
            (int(orderkeys[i]), int(partkeys[i]), int(suppkeys[i]), int(quantities[i]),
             int(prices[i]), int(discounts[i]), int(shipdates[i]))
            for i in range(config.lineitem_rows)))

        dimension_columns = [("key", ColumnType.INT32), ("attr1", ColumnType.INT32),
                             ("attr2", ColumnType.INT32)]
        for name, rows in ((self.ORDERS, config.orders_rows),
                           (self.PART, config.part_rows),
                           (self.SUPPLIER, config.supplier_rows)):
            db.create_table(name, dimension_columns,
                            record_size=config.dimension_record_size,
                            layout_style=layout_style)
            attrs = rng.integers(0, 1_000, size=(rows, 2))
            db.load(name, ((i + 1, int(attrs[i, 0]), int(attrs[i, 1])) for i in range(rows)))

        db.create_index(self.LINEITEM, "l_shipdate")
        return db

    # -------------------------------------------------------------- queries
    def _date_bounds(self, selectivity: float) -> Tuple[int, int]:
        width = int(round(selectivity * DATE_DOMAIN))
        return 0, width + 1

    def _fact_selection(self, number: int, selectivity: float, agg_column: str,
                        use_index: bool) -> SelectionQuery:
        low, high = self._date_bounds(selectivity)
        return SelectionQuery(
            table=self.LINEITEM,
            aggregates=(avg(agg_column),),
            predicate=range_predicate("l_shipdate", low, high),
            prefer_index_on="l_shipdate" if use_index else None,
            label=f"Q{number}",
        )

    def _fact_join(self, number: int, dimension: str, fact_column: str) -> JoinQuery:
        return JoinQuery(
            left_table=self.LINEITEM,
            right_table=dimension,
            left_column=fact_column,
            right_column="key",
            aggregates=(avg("l_extendedprice"),),
            label=f"Q{number}",
        )

    def queries(self) -> List[LogicalQuery]:
        """The 17-query suite (scans, index selections and joins)."""
        suite: List[LogicalQuery] = [
            # Wide scans with aggregates over different measure columns.
            self._fact_selection(1, 0.95, "l_extendedprice", use_index=False),
            self._fact_selection(2, 0.60, "l_quantity", use_index=False),
            self._fact_selection(3, 0.45, "l_discount", use_index=False),
            self._fact_selection(4, 0.30, "l_extendedprice", use_index=False),
            self._fact_selection(5, 0.75, "l_quantity", use_index=False),
            self._fact_selection(6, 0.50, "l_extendedprice", use_index=False),
            # Selective predicates that invite the non-clustered index.
            self._fact_selection(7, 0.02, "l_extendedprice", use_index=True),
            self._fact_selection(8, 0.05, "l_quantity", use_index=True),
            self._fact_selection(9, 0.10, "l_discount", use_index=True),
            self._fact_selection(10, 0.01, "l_extendedprice", use_index=True),
            self._fact_selection(11, 0.15, "l_quantity", use_index=True),
            # Fact-to-dimension equijoins.
            self._fact_join(12, self.ORDERS, "l_orderkey"),
            self._fact_join(13, self.PART, "l_partkey"),
            self._fact_join(14, self.SUPPLIER, "l_suppkey"),
            self._fact_join(15, self.ORDERS, "l_orderkey"),
            self._fact_join(16, self.PART, "l_partkey"),
            # A counting scan rounding out the suite.
            SelectionQuery(table=self.LINEITEM, aggregates=(count_star(), avg("l_quantity")),
                           predicate=range_predicate("l_quantity", 0, 26),
                           prefer_index_on=None, label="Q17"),
        ]
        return suite

    def query_count(self) -> int:
        return len(self.queries())
