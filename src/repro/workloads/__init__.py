"""Workloads: the microbenchmark, parameter sweeps, and DSS/OLTP suites."""

from .micro import (DEFAULT_SCALE, JOIN_FANOUT, MicroWorkload, MicroWorkloadConfig,
                    PAPER_A2_DOMAIN, PAPER_R_ROWS, PAPER_S_ROWS)
from .serving import (ServingReport, ServingTraceConfig, TraceItem, build_trace,
                      percentile, run_open_loop)
from .sweeps import (RECORD_SIZE_POINTS, SELECTIVITY_POINTS, SweepPoint,
                     build_database_for_point, record_size_sweep, selectivity_sweep)
from .tpcc import TPCCConfig, TPCCWorkload, Transaction
from .tpcd import TPCDConfig, TPCDWorkload

__all__ = [
    "DEFAULT_SCALE", "JOIN_FANOUT", "MicroWorkload", "MicroWorkloadConfig",
    "PAPER_A2_DOMAIN", "PAPER_R_ROWS", "PAPER_S_ROWS",
    "ServingReport", "ServingTraceConfig", "TraceItem", "build_trace",
    "percentile", "run_open_loop",
    "RECORD_SIZE_POINTS", "SELECTIVITY_POINTS", "SweepPoint",
    "build_database_for_point", "record_size_sweep", "selectivity_sweep",
    "TPCCConfig", "TPCCWorkload", "Transaction",
    "TPCDConfig", "TPCDWorkload",
]
