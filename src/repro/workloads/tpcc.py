"""Synthetic TPC-C-style OLTP workload.

The paper's Section 5.5 runs a 10-user, 1-warehouse TPC-C workload against all
four DBMSs and reports (without figures) that TPC-C behaves very differently
from the DSS workloads: CPI rates between 2.5 and 4.5, 60--80% of execution
time in memory stalls, and a memory-stall breakdown dominated by *second
level* data and instruction misses.

A full TPC-C implementation (think aborts, deadlocks, terminals) is outside
the scope of a single-threaded measurement study; what matters for the
comparison is the access pattern: short transactions making *random point
accesses* through indexes into tables far larger than the L2 cache, with a
large transaction-management code path executed per transaction.  The
workload here provides exactly that:

* ``customer`` and ``stock`` tables scaled per warehouse/district as in
  TPC-C (30,000 customer rows and 100,000 stock rows per warehouse at scale
  1.0), each with a unique index on its primary key,
* a transaction mix of *new-order*-like transactions (one customer lookup,
  ~10 stock lookups + updates) and *payment*-like transactions (one customer
  lookup + update), issued by ``users`` interleaved round-robin,
* per-transaction ``txn_overhead`` charged through the session's transaction
  path (locking, logging, begin/commit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..engine.database import Database
from ..engine.session import Session
from ..query.expressions import avg, equals
from ..query.plans import LogicalQuery, SelectionQuery, UpdateQuery
from ..storage.schema import ColumnType
from ._rng import default_rng

#: Rows per warehouse at scale 1.0 (the TPC-C sizing rules).
PAPER_CUSTOMER_ROWS = 30_000
PAPER_STOCK_ROWS = 100_000

#: Default scale keeps the tables several times larger than the 512 KB L2.
DEFAULT_SCALE = 1.0 / 12.0


@dataclass(frozen=True)
class TPCCConfig:
    """Parameters of the OLTP dataset and transaction mix."""

    scale: float = DEFAULT_SCALE
    warehouses: int = 1
    users: int = 10
    new_order_fraction: float = 0.5
    items_per_new_order: int = 10
    customer_record_size: int = 120
    stock_record_size: int = 100
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.warehouses <= 0 or self.users <= 0:
            raise ValueError("scale, warehouses and users must be positive")
        if not 0.0 <= self.new_order_fraction <= 1.0:
            raise ValueError("new_order_fraction must be within [0, 1]")

    @property
    def customer_rows(self) -> int:
        return max(int(PAPER_CUSTOMER_ROWS * self.scale) * self.warehouses, 100)

    @property
    def stock_rows(self) -> int:
        return max(int(PAPER_STOCK_ROWS * self.scale) * self.warehouses, 200)


@dataclass(frozen=True)
class Transaction:
    """One OLTP transaction: a label plus its statements."""

    kind: str
    user: int
    statements: Tuple[LogicalQuery, ...]


class TPCCWorkload:
    """Builds the OLTP dataset and generates the transaction stream."""

    CUSTOMER = "customer"
    STOCK = "stock"

    def __init__(self, config: Optional[TPCCConfig] = None) -> None:
        self.config = config or TPCCConfig()

    # ----------------------------------------------------------------- data
    def build(self, database: Optional[Database] = None,
              layout_style: str = "nsm") -> Database:
        """Create and populate both tables plus their unique key indexes.

        ``layout_style`` selects the page organisation of both tables
        (``"nsm"`` / ``"pax"``); the seeded row streams are layout-independent.
        """
        config = self.config
        db = database or Database()
        rng = default_rng(config.seed)

        db.create_table(self.CUSTOMER, [
            ("c_id", ColumnType.INT32),
            ("c_d_id", ColumnType.INT32),
            ("c_w_id", ColumnType.INT32),
            ("c_balance", ColumnType.INT32),
            ("c_payment_cnt", ColumnType.INT32),
        ], record_size=config.customer_record_size, layout_style=layout_style)
        balances = rng.integers(0, 50_000, size=config.customer_rows)
        db.load(self.CUSTOMER, (
            (i + 1, (i % 10) + 1, (i % config.warehouses) + 1, int(balances[i]), 0)
            for i in range(config.customer_rows)))

        db.create_table(self.STOCK, [
            ("s_i_id", ColumnType.INT32),
            ("s_w_id", ColumnType.INT32),
            ("s_quantity", ColumnType.INT32),
            ("s_order_cnt", ColumnType.INT32),
        ], record_size=config.stock_record_size, layout_style=layout_style)
        quantities = rng.integers(10, 100, size=config.stock_rows)
        db.load(self.STOCK, (
            (i + 1, (i % config.warehouses) + 1, int(quantities[i]), 0)
            for i in range(config.stock_rows)))

        db.create_index(self.CUSTOMER, "c_id", unique=True)
        db.create_index(self.STOCK, "s_i_id", unique=True)
        return db

    # --------------------------------------------------------- transactions
    def _new_order(self, rng, user: int) -> Transaction:
        config = self.config
        customer = int(rng.integers(1, config.customer_rows + 1))
        statements: List[LogicalQuery] = [
            SelectionQuery(table=self.CUSTOMER, aggregates=(avg("c_balance"),),
                           predicate=equals("c_id", customer),
                           prefer_index_on="c_id", label="no.customer"),
        ]
        items = rng.integers(1, config.stock_rows + 1, size=config.items_per_new_order)
        for item in items:
            quantity = int(rng.integers(1, 11))
            statements.append(UpdateQuery(table=self.STOCK, key_column="s_i_id",
                                          key_value=int(item), set_column="s_quantity",
                                          set_value=quantity, label="no.stock"))
        return Transaction(kind="new_order", user=user, statements=tuple(statements))

    def _payment(self, rng, user: int) -> Transaction:
        config = self.config
        customer = int(rng.integers(1, config.customer_rows + 1))
        amount = int(rng.integers(1, 5_000))
        statements: Tuple[LogicalQuery, ...] = (
            SelectionQuery(table=self.CUSTOMER, aggregates=(avg("c_balance"),),
                           predicate=equals("c_id", customer),
                           prefer_index_on="c_id", label="pay.lookup"),
            UpdateQuery(table=self.CUSTOMER, key_column="c_id", key_value=customer,
                        set_column="c_balance", set_value=amount, label="pay.update"),
        )
        return Transaction(kind="payment", user=user, statements=statements)

    def transactions(self, count: int, seed: Optional[int] = None) -> Iterator[Transaction]:
        """Generate ``count`` transactions, interleaving the simulated users."""
        config = self.config
        rng = default_rng(config.seed + 7 if seed is None else seed)
        for position in range(count):
            user = position % config.users
            if rng.random() < config.new_order_fraction:
                yield self._new_order(rng, user)
            else:
                yield self._payment(rng, user)

    # -------------------------------------------------------------- driving
    def run(self, session: Session, transactions: int = 200,
            warmup_transactions: int = 20, seed: Optional[int] = None):
        """Drive a session through the transaction mix and measure it.

        Returns the ``(counters, breakdown, metrics)`` triple of
        :meth:`repro.engine.session.Session.measure` covering the measured
        transactions (warm-up transactions excluded), exactly how the
        microbenchmark measurements exclude their warm-up runs.
        """
        for txn in self.transactions(warmup_transactions, seed=seed):
            session.execute_transaction(txn.statements)
        session.reset_measurement()
        executed = 0
        for txn in self.transactions(transactions, seed=None if seed is None else seed + 1):
            session.execute_transaction(txn.statements)
            executed += 1
        counters, breakdown, metrics = session.measure()
        return counters, breakdown, metrics, executed
