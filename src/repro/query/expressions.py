"""Scalar expressions and aggregate specifications.

The microbenchmark queries only need a small expression language:

* column references and literals,
* comparisons (``<``, ``<=``, ``=``, ``>=``, ``>``, ``<>``) and ``BETWEEN``,
* conjunction / disjunction / negation,
* the scalar aggregates ``AVG``, ``SUM``, ``COUNT``, ``MIN`` and ``MAX``.

Expressions are evaluated against a *row mapping* (column name -> value).  The
evaluator also reports which columns a predicate touches so the executor knows
which record fields (and therefore which cache lines) each evaluation reads,
and how many data-dependent branch outcomes it produces -- this is how the
selection predicate's behaviour reaches the branch predictor model.

Null semantics: a comparison (or ``BETWEEN``) involving ``None`` evaluates to
``False`` rather than raising ("NULL is not less than anything", as in SQL).
Logic stays *two-valued*, though: ``Not`` inverts that ``False``, so
``NOT (NULL < 3)`` is ``True`` here where SQL's three-valued logic would
filter the row.  The deliberate point is totality, not SQL fidelity --
predicates are pure total functions of their row, which makes conjunction
commutative: the property the adaptive conjunct-reordering subsystem
(:mod:`repro.adaptive`) relies on to shuffle evaluation order without
changing a single result row.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union


class ExpressionError(ValueError):
    """Raised for malformed expressions or evaluation failures."""


def _column_vector(columns: Mapping[str, Sequence], name: str) -> Optional[Sequence]:
    """Look up a column vector, accepting qualified or unqualified names."""
    if name in columns:
        return columns[name]
    return columns.get(name.split(".")[-1])


_DEFAULT_KERNELS = None


def _default_kernels():
    """The pure-Python kernel backend (lazy: avoids a query<->execution cycle)."""
    global _DEFAULT_KERNELS
    if _DEFAULT_KERNELS is None:
        from ..execution.kernels.python_backend import PYTHON_KERNELS
        _DEFAULT_KERNELS = PYTHON_KERNELS
    return _DEFAULT_KERNELS


class Expression:
    """Base class for scalar (boolean or numeric) expressions."""

    def evaluate(self, row: Mapping[str, object]) -> object:
        raise NotImplementedError

    def evaluate_batch(self, columns: Mapping[str, Sequence],
                       count: int, kernels=None) -> List[bool]:
        """Boolean selection mask over ``count`` rows given as column vectors.

        The vectorized engine's columnar dataflow evaluates predicates
        against column vectors rather than row dicts.  The base
        implementation materializes a minimal row view per position (so any
        expression works); :class:`Between` and :class:`Comparison` override
        it with single-column kernel calls, and the logical connectives
        combine their operands' masks elementwise.  Results are positionally
        identical to calling :meth:`evaluate` on each row.

        ``kernels`` selects the data-plane implementation
        (:mod:`repro.execution.kernels`); ``None`` uses the pure-Python
        backend.  The mask is backend-independent by contract.
        """
        names = tuple(columns)
        if not names:
            return [bool(self.evaluate({})) for _ in range(count)]
        vectors = tuple(columns[name] for name in names)
        return [bool(self.evaluate(dict(zip(names, values))))
                for values in zip(*vectors)]

    def columns(self) -> FrozenSet[str]:
        """Names of the columns this expression reads."""
        raise NotImplementedError

    def comparison_count(self) -> int:
        """Number of data-dependent comparisons (conditional branches) evaluated."""
        return 0


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column by name (optionally qualified, ``"R.a2"``)."""

    name: str

    def evaluate(self, row: Mapping[str, object]) -> object:
        try:
            return row[self.name]
        except KeyError:
            # Allow unqualified lookup of qualified references and vice versa.
            short = self.name.split(".")[-1]
            if short in row:
                return row[short]
            raise ExpressionError(f"row has no column {self.name!r}") from None

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    @property
    def unqualified(self) -> str:
        return self.name.split(".")[-1]


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: object

    def evaluate(self, row: Mapping[str, object]) -> object:
        return self.value

    def columns(self) -> FrozenSet[str]:
        return frozenset()


class ComparisonOp(Enum):
    LT = "<"
    LE = "<="
    EQ = "="
    NE = "<>"
    GE = ">="
    GT = ">"

    def apply(self, left, right) -> bool:
        if left is None or right is None:
            # SQL-style: comparisons against NULL are never satisfied.
            return False
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.LE:
            return left <= right
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.GE:
            return left >= right
        return left > right


@dataclass(frozen=True)
class Comparison(Expression):
    """``left OP right`` over two scalar sub-expressions."""

    op: ComparisonOp
    left: Expression
    right: Expression

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return self.op.apply(self.left.evaluate(row), self.right.evaluate(row))

    def evaluate_batch(self, columns: Mapping[str, Sequence],
                       count: int, kernels=None) -> List[bool]:
        if type(self.left) is ColumnRef and type(self.right) is Const:
            vector = _column_vector(columns, self.left.name)
            if vector is not None:
                return (kernels or _default_kernels()).compare_const(
                    self.op, vector, self.right.value)
        return Expression.evaluate_batch(self, columns, count, kernels)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def comparison_count(self) -> int:
        return 1 + self.left.comparison_count() + self.right.comparison_count()


@dataclass(frozen=True)
class Between(Expression):
    """``expr > low AND expr < high`` -- the paper's range qualification.

    The bounds are exclusive by default, matching query (1) in Section 3.3
    (``where a2 < Hi and a2 > Lo``); inclusive variants are available for the
    workload sweeps.
    """

    expr: Expression
    low: Expression
    high: Expression
    include_low: bool = False
    include_high: bool = False

    def evaluate(self, row: Mapping[str, object]) -> bool:
        value = self.expr.evaluate(row)
        low = self.low.evaluate(row)
        high = self.high.evaluate(row)
        if value is None or low is None or high is None:
            return False
        low_ok = value >= low if self.include_low else value > low
        if not low_ok:
            return False
        return value <= high if self.include_high else value < high

    def evaluate_batch(self, columns: Mapping[str, Sequence],
                       count: int, kernels=None) -> List[bool]:
        if type(self.expr) is ColumnRef and type(self.low) is Const \
                and type(self.high) is Const:
            vector = _column_vector(columns, self.expr.name)
            if vector is not None:
                low, high = self.low.value, self.high.value
                if low is None or high is None:
                    return [False] * count
                return (kernels or _default_kernels()).between_const(
                    vector, low, high, self.include_low, self.include_high)
        return Expression.evaluate_batch(self, columns, count, kernels)

    def columns(self) -> FrozenSet[str]:
        return self.expr.columns() | self.low.columns() | self.high.columns()

    def comparison_count(self) -> int:
        return 2


@dataclass(frozen=True)
class And(Expression):
    """Conjunction with short-circuit evaluation."""

    operands: Tuple[Expression, ...]

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return all(op.evaluate(row) for op in self.operands)

    def evaluate_batch(self, columns: Mapping[str, Sequence],
                       count: int, kernels=None) -> List[bool]:
        # Predicates are total and pure, so the short-circuit ``all`` of
        # :meth:`evaluate` and this non-short-circuit mask combination
        # produce the same booleans row for row.
        if not self.operands:
            return [True] * count
        masks = [op.evaluate_batch(columns, count, kernels)
                 for op in self.operands]
        if len(masks) == 1:
            return [bool(value) for value in masks[0]]
        return (kernels or _default_kernels()).and_masks(masks)

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out |= op.columns()
        return out

    def comparison_count(self) -> int:
        return sum(op.comparison_count() for op in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction with short-circuit evaluation."""

    operands: Tuple[Expression, ...]

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return any(op.evaluate(row) for op in self.operands)

    def evaluate_batch(self, columns: Mapping[str, Sequence],
                       count: int, kernels=None) -> List[bool]:
        if not self.operands:
            return [False] * count
        masks = [op.evaluate_batch(columns, count, kernels)
                 for op in self.operands]
        if len(masks) == 1:
            return [bool(value) for value in masks[0]]
        return (kernels or _default_kernels()).or_masks(masks)

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out |= op.columns()
        return out

    def comparison_count(self) -> int:
        return sum(op.comparison_count() for op in self.operands)


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return not self.operand.evaluate(row)

    def evaluate_batch(self, columns: Mapping[str, Sequence],
                       count: int, kernels=None) -> List[bool]:
        mask = self.operand.evaluate_batch(columns, count, kernels)
        return (kernels or _default_kernels()).not_mask(mask)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def comparison_count(self) -> int:
        return self.operand.comparison_count()


# --------------------------------------------------------------------------
# Aggregates
# --------------------------------------------------------------------------
class AggregateFunction(Enum):
    AVG = "avg"
    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate over a column (``COUNT`` accepts ``column=None`` for ``*``)."""

    function: AggregateFunction
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function is not AggregateFunction.COUNT and self.column is None:
            raise ExpressionError(f"{self.function.value}() requires a column")

    @property
    def label(self) -> str:
        return f"{self.function.value}({self.column or '*'})"


class AggregateState:
    """Mutable accumulator for one aggregate (the executor's private state).

    The accumulator deliberately lives in the executor's *workspace* region of
    the simulated address space -- it is exactly the kind of hot private
    structure whose residence in the L1 D-cache the paper credits for the low
    L1D miss rates.
    """

    __slots__ = ("spec", "count", "total", "minimum", "maximum")

    def __init__(self, spec: Aggregate) -> None:
        self.spec = spec
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[object] = None
        self.maximum: Optional[object] = None

    def update(self, value) -> None:
        self.count += 1
        if value is None:
            return
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self):
        function = self.spec.function
        if function is AggregateFunction.COUNT:
            return self.count
        if self.count == 0:
            return None
        if function is AggregateFunction.SUM:
            return self.total
        if function is AggregateFunction.AVG:
            return self.total / self.count
        if function is AggregateFunction.MIN:
            return self.minimum
        return self.maximum


# --------------------------------------------------------------------------
# Convenience constructors
# --------------------------------------------------------------------------
def column(name: str) -> ColumnRef:
    return ColumnRef(name)


def const(value) -> Const:
    return Const(value)


def conjunction(*operands: Expression) -> And:
    """``operand AND operand AND ...`` (multi-conjunct qualifications)."""
    return And(tuple(operands))


def range_predicate(column_name: str, low, high,
                    include_low: bool = False, include_high: bool = False) -> Between:
    """``column > low AND column < high`` (the paper's range qualification)."""
    return Between(ColumnRef(column_name), Const(low), Const(high),
                   include_low=include_low, include_high=include_high)


def equals(column_name: str, value) -> Comparison:
    return Comparison(ComparisonOp.EQ, ColumnRef(column_name), Const(value))


def avg(column_name: str) -> Aggregate:
    return Aggregate(AggregateFunction.AVG, column_name)


def count_star() -> Aggregate:
    return Aggregate(AggregateFunction.COUNT, None)
