"""Logical query descriptions and physical plan representations.

The study uses deliberately simple queries (Section 3.3) so the logical layer
is correspondingly small: single-table aggregate selections and two-table
equijoins with an aggregate on top.  The planner (:mod:`repro.query.planner`)
lowers a logical query to a physical plan; the physical plan is a tree of
descriptors that the execution layer instantiates into iterators.

Keeping explicit logical and physical layers (rather than executing the
logical form directly) matters for the reproduction because the paper's
System A behaves differently from B, C and D at exactly this boundary: its
optimiser declines to use the non-clustered index for the 10% range
selection, so the *same logical query* runs as a sequential scan on A and as
an index scan on the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .expressions import Aggregate, Expression


# --------------------------------------------------------------------------
# Execution engines
# --------------------------------------------------------------------------
#: Tuple-at-a-time Volcano iteration (what the paper's four systems do).
ENGINE_TUPLE = "tuple"
#: Batch-at-a-time vectorized execution (the amortised-interpretation path).
ENGINE_VECTORIZED = "vectorized"

ENGINES = (ENGINE_TUPLE, ENGINE_VECTORIZED)

#: Records processed per batch by the vectorized engine.  Sized so a batch
#: of one column (a few KB) fits comfortably in the 16 KB L1 D-cache.
DEFAULT_BATCH_SIZE = 256

#: How the execution layer presents vector touches to the simulated
#: hardware.  ``span`` charges a column-vector (or workspace-churn) touch as
#: a handful of bulk set-level operations; ``per_address`` probes the caches
#: one address at a time.  The two are *count-identical* by contract (the
#: differential harness asserts identical cache/TLB hit+miss counts); span
#: charging only exists to make the simulator itself several times faster.
CHARGE_SPAN = "span"
CHARGE_PER_ADDRESS = "per_address"

CHARGE_MODES = (CHARGE_SPAN, CHARGE_PER_ADDRESS)

#: Runtime adaptivity of multi-conjunct filter evaluation (the
#: :mod:`repro.adaptive` subsystem).  ``off`` bypasses the adaptive path
#: entirely -- the engine is bit-identical to previous releases.  The other
#: modes decompose ``And`` predicates into conjuncts and evaluate them with
#: short-circuit selection vectors in policy order: ``static`` keeps the
#: planner's order (the control arm for the adaptivity experiment),
#: ``greedy`` ranks conjuncts by observed selectivity-per-cost, ``epsilon``
#: is greedy with a deterministic exploration fraction.  Result rows are
#: identical in every mode; only the charged work differs.
ADAPTIVITY_OFF = "off"
ADAPTIVITY_STATIC = "static"
ADAPTIVITY_GREEDY = "greedy"
ADAPTIVITY_EPSILON = "epsilon"

ADAPTIVITY_MODES = (ADAPTIVITY_OFF, ADAPTIVITY_STATIC, ADAPTIVITY_GREEDY,
                    ADAPTIVITY_EPSILON)

#: Which data-plane kernel implementation the vectorized operators run
#: (:mod:`repro.execution.kernels`).  ``python`` is the original pure-Python
#: loops (zero dependencies, the differential oracle); ``array`` is the
#: numpy-backed backend (optional extra, raises if numpy is missing);
#: ``auto`` (the default) prefers ``array`` and degrades to ``python`` with
#: a one-time warning.  Kernels only touch data -- rows, row order, column
#: order and every simulated hardware count are identical across backends
#: by contract (the charging calls never move).
KERNEL_BACKEND_AUTO = "auto"
KERNEL_BACKEND_PYTHON = "python"
KERNEL_BACKEND_ARRAY = "array"
KERNEL_BACKENDS = (KERNEL_BACKEND_AUTO, KERNEL_BACKEND_PYTHON,
                   KERNEL_BACKEND_ARRAY)

#: Query tracing (:mod:`repro.observability`).  ``off`` bypasses the
#: subsystem structurally -- no tracer object exists and every hot path
#: checks a single ``None`` attribute -- and is bit-identical to previous
#: releases.  ``spans`` wraps every operator ``next()`` boundary and the
#: planner/setup phases in counter spans (snapshot-delta captures of the
#: simulated event banks); ``full`` additionally records per-pull host
#: timing events, per-morsel replay subspans and spill-I/O subspans.
#: Tracing only *reads* hardware state between charges: result rows and
#: every simulated count are identical in all three modes.
TRACING_OFF = "off"
TRACING_SPANS = "spans"
TRACING_FULL = "full"
TRACING_MODES = (TRACING_OFF, TRACING_SPANS, TRACING_FULL)


@dataclass(frozen=True)
class ExecutionConfig:
    """How physical plans are executed: engine choice, batch geometry and
    hardware-charging mode.

    The planner produces the *same* physical plans for both engines -- the
    plan describes access paths and join algorithms, and the engine decides
    whether the operator tree iterates tuple-at-a-time or batch-at-a-time.
    Keeping the switch in a config object (rather than in the plan nodes)
    is what lets the differential harness replay one plan under both
    engines and diff the results.  ``charge_mode`` likewise selects how the
    very same trace of simulated memory touches reaches the cache models
    (bulk spans vs individual probes) without changing a single modelled
    event.
    """

    engine: str = ENGINE_TUPLE
    batch_size: int = DEFAULT_BATCH_SIZE
    charge_mode: str = CHARGE_SPAN
    #: Degree of morsel parallelism for vectorized sequential scans.  1 (the
    #: default) is the serial engine, byte-identical to previous releases;
    #: N > 1 fans page morsels out to workers whose charge tapes are
    #: replayed in canonical order, so results *and* simulated hardware
    #: counts stay identical to ``workers=1`` (the differential harness
    #: asserts this per plan shape).
    workers: int = 1
    #: Pages per morsel for the exchange operator (``None`` = derived from
    #: the table size and worker count).
    morsel_pages: Optional[int] = None
    #: Runtime-adaptation mode (see :data:`ADAPTIVITY_MODES`).  Selects the
    #: decision policy; conjunct reordering is active whenever the mode is
    #: not ``off``, the two decisions below opt in separately.
    adaptivity: str = ADAPTIVITY_OFF
    #: Runtime join-side selection: the vectorized hash join may flip its
    #: build/probe sides between batches when observed cardinalities
    #: contradict the planner's choice (requires ``adaptivity != "off"``;
    #: the policy decides -- ``static`` never flips, so it is the control
    #: arm).  Result rows and column order are identical either way.
    adaptive_joins: bool = False
    #: Runtime batch-size adaptation: vectorized sequential scans accumulate
    #: vectors across page boundaries and resize them within the bounded
    #: ladder from observed L1D miss pressure (requires
    #: ``adaptivity != "off"``; ``static`` keeps the configured size, so it
    #: is the control arm for the same scan structure).
    adaptive_batching: bool = False
    #: Join working-memory budget in bytes.  ``None`` (the default) keeps
    #: every operator fully memory-resident and bit-identical to previous
    #: releases.  When set, the vectorized hash join hash-partitions inputs
    #: whose build side exceeds the budget into spill partitions through a
    #: capacity-limited buffer pool (grace/hybrid), and the buffer pool's
    #: page traffic is charged through the context's I/O cost model.
    #: Result rows, their order and their column order are identical to the
    #: in-memory join at every budget.
    memory_budget_bytes: Optional[int] = None
    #: Data-plane kernel backend for the vectorized operators (see
    #: :data:`KERNEL_BACKENDS`).  Selects how predicate masks, selection
    #: vectors, gathers, key hashing and aggregate folds are *computed*;
    #: what is *charged* to the simulated hardware is identical for every
    #: backend, as are result rows and column order.
    kernel_backend: str = KERNEL_BACKEND_AUTO
    #: Query-tracing mode (see :data:`TRACING_MODES`).  ``off`` (the
    #: default) is structurally bypassed and bit-identical to previous
    #: releases; ``spans``/``full`` attribute the simulated counters to a
    #: per-query trace tree of operator and phase spans without changing a
    #: single simulated count (the observability tests assert both walls
    #: differentially).
    tracing: str = TRACING_OFF

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.charge_mode not in CHARGE_MODES:
            raise ValueError(f"unknown charge mode {self.charge_mode!r}; "
                             f"expected one of {CHARGE_MODES}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.morsel_pages is not None and self.morsel_pages < 1:
            raise ValueError("morsel_pages must be at least 1 when set")
        if self.adaptivity not in ADAPTIVITY_MODES:
            raise ValueError(f"unknown adaptivity mode {self.adaptivity!r}; "
                             f"expected one of {ADAPTIVITY_MODES}")
        if self.adaptivity != ADAPTIVITY_OFF and self.engine != ENGINE_VECTORIZED:
            raise ValueError(
                f"adaptivity={self.adaptivity!r} requires engine="
                f"{ENGINE_VECTORIZED!r}: only the vectorized filters evaluate "
                f"conjuncts batch-at-a-time (the tuple engine would silently "
                f"ignore the setting)")
        if ((self.adaptive_joins or self.adaptive_batching)
                and self.adaptivity == ADAPTIVITY_OFF):
            raise ValueError(
                "adaptive_joins / adaptive_batching require adaptivity != "
                f"{ADAPTIVITY_OFF!r}: the decisions are made by the adaptivity "
                "policy (use adaptivity='static' for the never-adapt control "
                "arm rather than 'off', which bypasses the subsystem entirely)")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(f"unknown kernel backend {self.kernel_backend!r}; "
                             f"expected one of {KERNEL_BACKENDS}")
        if self.tracing not in TRACING_MODES:
            raise ValueError(f"unknown tracing mode {self.tracing!r}; "
                             f"expected one of {TRACING_MODES}")
        if self.memory_budget_bytes is not None:
            if self.memory_budget_bytes < 1:
                raise ValueError("memory_budget_bytes must be at least 1 when set")
            if self.engine != ENGINE_VECTORIZED:
                raise ValueError(
                    f"memory_budget_bytes requires engine={ENGINE_VECTORIZED!r}: "
                    f"only the vectorized hash join implements grace/hybrid "
                    f"spilling (the tuple engine would silently ignore the "
                    f"budget)")

    @property
    def is_vectorized(self) -> bool:
        return self.engine == ENGINE_VECTORIZED

    @property
    def is_adaptive(self) -> bool:
        return self.adaptivity != ADAPTIVITY_OFF

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    @property
    def uses_span_charging(self) -> bool:
        return self.charge_mode == CHARGE_SPAN

    @property
    def is_traced(self) -> bool:
        return self.tracing != TRACING_OFF


# --------------------------------------------------------------------------
# Logical queries
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectionQuery:
    """``SELECT <aggregates> FROM <table> WHERE <predicate>``.

    ``prefer_index_on`` names the column whose secondary index the query
    *invites* the planner to use (the paper's indexed range selection is the
    same SQL resubmitted after creating the index); whether the planner
    accepts the invitation depends on the system profile and on index
    availability.
    """

    table: str
    aggregates: Tuple[Aggregate, ...]
    predicate: Optional[Expression] = None
    prefer_index_on: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise ValueError("SelectionQuery requires at least one aggregate")


@dataclass(frozen=True)
class JoinQuery:
    """``SELECT <aggregates> FROM <left>, <right> WHERE left.col = right.col``.

    ``build_side`` (``"left"``/``"right"``/``None``) pins the hash join's
    build input instead of letting the planner pick the smaller relation.
    It models a planner *misestimate* (stale statistics believing the pinned
    side small) -- the knob the skewed-join adaptivity workload uses to
    construct a planner-wrong plan that runtime join-side selection must
    correct.  ``None`` keeps the planner's size heuristic.
    """

    left_table: str
    right_table: str
    left_column: str
    right_column: str
    aggregates: Tuple[Aggregate, ...]
    predicate: Optional[Expression] = None
    build_side: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise ValueError("JoinQuery requires at least one aggregate")
        if self.build_side not in (None, "left", "right"):
            raise ValueError(f"build_side must be 'left', 'right' or None, "
                             f"not {self.build_side!r}")


@dataclass(frozen=True)
class UpdateQuery:
    """``UPDATE <table> SET <column> = <value> WHERE <key_column> = <key>``.

    Point updates through an index; used by the OLTP (TPC-C-style) workload.
    """

    table: str
    key_column: str
    key_value: object
    set_column: str
    set_value: object
    label: str = ""


LogicalQuery = Union[SelectionQuery, JoinQuery, UpdateQuery]


# --------------------------------------------------------------------------
# Physical plans
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SeqScanPlan:
    """Full sequential scan of a table with an optional filter predicate."""

    table: str
    predicate: Optional[Expression] = None

    @property
    def access_path(self) -> str:
        return "seq_scan"


@dataclass(frozen=True)
class IndexRangeScanPlan:
    """Range probe of a non-clustered index followed by heap rid fetches.

    ``low``/``high`` bound the indexed column; the residual predicate (if
    any) is re-evaluated against the fetched record, as real executors do.
    """

    table: str
    column: str
    low: Optional[object]
    high: Optional[object]
    include_low: bool = False
    include_high: bool = False
    residual_predicate: Optional[Expression] = None

    @property
    def access_path(self) -> str:
        return "index_scan"


@dataclass(frozen=True)
class IndexPointLookupPlan:
    """Exact-match index lookup (OLTP point queries/updates)."""

    table: str
    column: str
    value: object

    @property
    def access_path(self) -> str:
        return "index_lookup"


ScanPlan = Union[SeqScanPlan, IndexRangeScanPlan, IndexPointLookupPlan]


@dataclass(frozen=True)
class HashJoinPlan:
    """Hash join: build on the (smaller) right input, probe with the left."""

    probe: ScanPlan
    build: ScanPlan
    probe_column: str
    build_column: str

    @property
    def algorithm(self) -> str:
        return "hash_join"


@dataclass(frozen=True)
class NestedLoopJoinPlan:
    """Tuple-at-a-time nested-loop join (inner input rescanned per outer row)."""

    outer: ScanPlan
    inner: ScanPlan
    outer_column: str
    inner_column: str

    @property
    def algorithm(self) -> str:
        return "nested_loop_join"


@dataclass(frozen=True)
class IndexNestedLoopJoinPlan:
    """Nested-loop join driving an index lookup on the inner table per outer row."""

    outer: ScanPlan
    inner_table: str
    inner_column: str
    outer_column: str

    @property
    def algorithm(self) -> str:
        return "index_nested_loop_join"


JoinPlan = Union[HashJoinPlan, NestedLoopJoinPlan, IndexNestedLoopJoinPlan]


@dataclass(frozen=True)
class AggregatePlan:
    """Scalar aggregation over the rows produced by the input plan."""

    input: Union[ScanPlan, JoinPlan]
    aggregates: Tuple[Aggregate, ...]


@dataclass(frozen=True)
class UpdatePlan:
    """Index point lookup followed by an in-place record update."""

    lookup: IndexPointLookupPlan
    set_column: str
    set_value: object


PhysicalPlan = Union[AggregatePlan, UpdatePlan, ScanPlan, JoinPlan]


def describe_plan(plan: PhysicalPlan, indent: int = 0) -> str:
    """Human-readable, EXPLAIN-style rendering of a physical plan."""
    pad = "  " * indent
    if isinstance(plan, AggregatePlan):
        aggs = ", ".join(a.label for a in plan.aggregates)
        return f"{pad}Aggregate [{aggs}]\n" + describe_plan(plan.input, indent + 1)
    if isinstance(plan, UpdatePlan):
        return (f"{pad}Update set {plan.set_column}\n"
                + describe_plan(plan.lookup, indent + 1))
    if isinstance(plan, HashJoinPlan):
        return (f"{pad}HashJoin probe.{plan.probe_column} = build.{plan.build_column}\n"
                + describe_plan(plan.probe, indent + 1)
                + "\n" + describe_plan(plan.build, indent + 1))
    if isinstance(plan, NestedLoopJoinPlan):
        return (f"{pad}NestedLoopJoin outer.{plan.outer_column} = inner.{plan.inner_column}\n"
                + describe_plan(plan.outer, indent + 1)
                + "\n" + describe_plan(plan.inner, indent + 1))
    if isinstance(plan, IndexNestedLoopJoinPlan):
        return (f"{pad}IndexNestedLoopJoin outer.{plan.outer_column} = "
                f"{plan.inner_table}.{plan.inner_column} (index)\n"
                + describe_plan(plan.outer, indent + 1))
    if isinstance(plan, SeqScanPlan):
        predicate = " (filtered)" if plan.predicate is not None else ""
        return f"{pad}SeqScan {plan.table}{predicate}"
    if isinstance(plan, IndexRangeScanPlan):
        return (f"{pad}IndexRangeScan {plan.table}.{plan.column} in "
                f"({plan.low!r}, {plan.high!r})")
    if isinstance(plan, IndexPointLookupPlan):
        return f"{pad}IndexPointLookup {plan.table}.{plan.column} = {plan.value!r}"
    raise TypeError(f"unknown plan node {plan!r}")
