"""Query representation: expressions, logical queries, physical plans, planner."""

from .expressions import (Aggregate, AggregateFunction, AggregateState, And, Between,
                          ColumnRef, Comparison, ComparisonOp, Const, Expression,
                          ExpressionError, Not, Or, avg, column, const, count_star,
                          equals, range_predicate)
from .planner import DefaultPolicy, Planner, PlannerError, PlannerPolicy, extract_range_bounds
from .plans import (DEFAULT_BATCH_SIZE, ENGINE_TUPLE, ENGINE_VECTORIZED, ENGINES,
                    KERNEL_BACKENDS, TRACING_MODES,
                    AggregatePlan, ExecutionConfig, HashJoinPlan,
                    IndexNestedLoopJoinPlan, IndexPointLookupPlan, IndexRangeScanPlan,
                    JoinQuery, LogicalQuery, NestedLoopJoinPlan, PhysicalPlan,
                    SelectionQuery, SeqScanPlan, UpdatePlan, UpdateQuery, describe_plan)

__all__ = [
    "Aggregate", "AggregateFunction", "AggregateState", "And", "Between", "ColumnRef",
    "Comparison", "ComparisonOp", "Const", "Expression", "ExpressionError", "Not", "Or",
    "avg", "column", "const", "count_star", "equals", "range_predicate",
    "DefaultPolicy", "Planner", "PlannerError", "PlannerPolicy", "extract_range_bounds",
    "DEFAULT_BATCH_SIZE", "ENGINE_TUPLE", "ENGINE_VECTORIZED", "ENGINES",
    "KERNEL_BACKENDS", "TRACING_MODES",
    "ExecutionConfig",
    "AggregatePlan", "HashJoinPlan", "IndexNestedLoopJoinPlan", "IndexPointLookupPlan",
    "IndexRangeScanPlan", "JoinQuery", "LogicalQuery", "NestedLoopJoinPlan",
    "PhysicalPlan", "SelectionQuery", "SeqScanPlan", "UpdatePlan", "UpdateQuery",
    "describe_plan",
]
