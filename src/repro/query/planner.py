"""Rule-based query planner.

The planner lowers logical queries to physical plans using the information
the paper says drives each commercial optimiser's choice:

* whether a usable non-clustered index exists on the qualification column,
* the estimated selectivity of the range predicate, and
* the system's policy -- System A "did not use the index to execute this
  query" (Figure 5.1), while B, C and D did; systems also differ in their
  preferred join algorithm for the no-index equijoin.

Policies are supplied through the small :class:`PlannerPolicy` protocol so the
planner does not depend on the :mod:`repro.systems` package; the system
profiles implement the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

from ..storage.catalog import Catalog
from .expressions import (Between, Comparison, ComparisonOp, ColumnRef, Const,
                          Expression)
from .plans import (AggregatePlan, ExecutionConfig, HashJoinPlan,
                    IndexNestedLoopJoinPlan, IndexPointLookupPlan,
                    IndexRangeScanPlan, JoinQuery, LogicalQuery,
                    NestedLoopJoinPlan, PhysicalPlan, ScanPlan,
                    SelectionQuery, SeqScanPlan, UpdatePlan, UpdateQuery)


class PlannerError(RuntimeError):
    """Raised when a logical query cannot be lowered to a physical plan."""


class PlannerPolicy(Protocol):
    """The optimiser knobs a system profile exposes to the planner."""

    #: Whether a non-clustered index is considered for range selections at all.
    uses_index_for_range_selection: bool
    #: Maximum estimated selectivity (fraction of rows) at which the index
    #: path is still chosen over a sequential scan.
    index_selectivity_threshold: float
    #: Join algorithm for equijoins without a supporting index:
    #: ``"hash"``, ``"nested_loop"`` or ``"index_nested_loop"``.
    join_algorithm: str


@dataclass(frozen=True)
class DefaultPolicy:
    """A sensible default policy (index when selective, hash joins)."""

    uses_index_for_range_selection: bool = True
    index_selectivity_threshold: float = 0.25
    join_algorithm: str = "hash"


@dataclass(frozen=True)
class RangeBounds:
    """Bounds extracted from a predicate over a single column."""

    column: str
    low: Optional[object]
    high: Optional[object]
    include_low: bool
    include_high: bool


def extract_range_bounds(predicate: Expression, column_name: str) -> Optional[RangeBounds]:
    """Extract index-usable bounds for ``column_name`` from a predicate.

    Supports :class:`Between` over the column and single comparisons of the
    column against a constant; anything else returns ``None`` and forces the
    sequential path (the residual predicate is then evaluated per record).
    """
    if isinstance(predicate, Between) and isinstance(predicate.expr, ColumnRef):
        ref = predicate.expr
        if ref.unqualified == column_name.split(".")[-1]:
            if isinstance(predicate.low, Const) and isinstance(predicate.high, Const):
                return RangeBounds(column=column_name,
                                   low=predicate.low.value, high=predicate.high.value,
                                   include_low=predicate.include_low,
                                   include_high=predicate.include_high)
    if isinstance(predicate, Comparison) and isinstance(predicate.left, ColumnRef) \
            and isinstance(predicate.right, Const):
        ref, value = predicate.left, predicate.right.value
        if ref.unqualified != column_name.split(".")[-1]:
            return None
        op = predicate.op
        if op is ComparisonOp.LT:
            return RangeBounds(column_name, None, value, False, False)
        if op is ComparisonOp.LE:
            return RangeBounds(column_name, None, value, False, True)
        if op is ComparisonOp.GT:
            return RangeBounds(column_name, value, None, False, False)
        if op is ComparisonOp.GE:
            return RangeBounds(column_name, value, None, True, False)
        if op is ComparisonOp.EQ:
            return RangeBounds(column_name, value, value, True, True)
    return None


class Planner:
    """Lower logical queries to physical plans for one catalog + policy.

    ``execution`` records the engine choice (tuple vs vectorized) and batch
    geometry the produced plans are intended to run under; the session reads
    it back when dispatching plans to the executor.  It does not influence
    plan *shape*: both engines execute identical plans, which is what makes
    the engines differentially testable.
    """

    def __init__(self, catalog: Catalog, policy: Optional[PlannerPolicy] = None,
                 execution: Optional[ExecutionConfig] = None) -> None:
        self.catalog = catalog
        self.policy = policy or DefaultPolicy()
        self.execution = execution or ExecutionConfig()

    # ---------------------------------------------------------------- entry
    def plan(self, query: LogicalQuery) -> PhysicalPlan:
        if isinstance(query, SelectionQuery):
            return self._plan_selection(query)
        if isinstance(query, JoinQuery):
            return self._plan_join(query)
        if isinstance(query, UpdateQuery):
            return self._plan_update(query)
        raise PlannerError(f"cannot plan query of type {type(query).__name__}")

    # ----------------------------------------------------------- selections
    def _plan_selection(self, query: SelectionQuery) -> AggregatePlan:
        table = self.catalog.table(query.table)
        scan: ScanPlan = SeqScanPlan(table=query.table, predicate=query.predicate)

        if (query.prefer_index_on is not None
                and query.predicate is not None
                and self.policy.uses_index_for_range_selection
                and table.index_on(query.prefer_index_on) is not None):
            bounds = extract_range_bounds(query.predicate, query.prefer_index_on)
            if bounds is not None:
                selectivity = self.estimate_selectivity(query.table, bounds)
                if selectivity <= self.policy.index_selectivity_threshold:
                    scan = IndexRangeScanPlan(
                        table=query.table, column=query.prefer_index_on,
                        low=bounds.low, high=bounds.high,
                        include_low=bounds.include_low, include_high=bounds.include_high,
                        residual_predicate=None)
        return AggregatePlan(input=scan, aggregates=query.aggregates)

    def estimate_selectivity(self, table_name: str, bounds: RangeBounds) -> float:
        """Uniform-distribution selectivity estimate from column min/max.

        The microbenchmark's ``a2`` is uniformly distributed in ``[1, 40000]``
        (scaled), so the classical uniform estimate is essentially exact --
        which is all the commercial optimisers needed for this workload too.
        """
        table = self.catalog.table(table_name)
        column = bounds.column.split(".")[-1]
        values = []
        layout = table.layout
        # Sample up to ~1000 records to bound planning cost on large tables.
        step = max(table.heap.record_count // 1000, 1)
        for position, entry in enumerate(table.heap.scan()):
            if position % step:
                continue
            values.append(layout.decode_column(bytes(entry.page.record_view(entry.slot)), column))
        if not values:
            return 1.0
        lo_data, hi_data = min(values), max(values)
        span = float(hi_data - lo_data) or 1.0
        low = bounds.low if bounds.low is not None else lo_data
        high = bounds.high if bounds.high is not None else hi_data
        width = max(float(high) - float(low), 0.0)
        return max(min(width / span, 1.0), 0.0)

    # ---------------------------------------------------------------- joins
    def _plan_join(self, query: JoinQuery) -> AggregatePlan:
        left = self.catalog.table(query.left_table)
        right = self.catalog.table(query.right_table)
        algorithm = self.policy.join_algorithm

        left_scan = SeqScanPlan(table=query.left_table, predicate=None)
        right_scan = SeqScanPlan(table=query.right_table, predicate=None)

        if algorithm == "index_nested_loop" and right.index_on(query.right_column) is not None:
            join = IndexNestedLoopJoinPlan(outer=left_scan,
                                           inner_table=query.right_table,
                                           inner_column=query.right_column,
                                           outer_column=query.left_column)
        elif algorithm == "nested_loop":
            # Put the smaller relation on the inner side to bound the rescans.
            if left.row_count <= right.row_count:
                join = NestedLoopJoinPlan(outer=right_scan, inner=left_scan,
                                          outer_column=query.right_column,
                                          inner_column=query.left_column)
            else:
                join = NestedLoopJoinPlan(outer=left_scan, inner=right_scan,
                                          outer_column=query.left_column,
                                          inner_column=query.right_column)
        else:
            # Hash join: build on the smaller input, probe with the larger --
            # unless the query pins a build side (``build_side`` models a
            # stale-statistics misestimate; the runtime join-side decision
            # exists to correct exactly this kind of planner-frozen choice).
            if query.build_side is not None:
                build_left = query.build_side == "left"
            else:
                build_left = left.row_count < right.row_count
            if build_left:
                join = HashJoinPlan(probe=right_scan, build=left_scan,
                                    probe_column=query.right_column,
                                    build_column=query.left_column)
            else:
                join = HashJoinPlan(probe=left_scan, build=right_scan,
                                    probe_column=query.left_column,
                                    build_column=query.right_column)
        return AggregatePlan(input=join, aggregates=query.aggregates)

    # -------------------------------------------------------------- updates
    def _plan_update(self, query: UpdateQuery) -> UpdatePlan:
        table = self.catalog.table(query.table)
        if table.index_on(query.key_column) is None:
            raise PlannerError(
                f"update on {query.table}.{query.key_column} requires an index "
                f"(OLTP point access path)")
        lookup = IndexPointLookupPlan(table=query.table, column=query.key_column,
                                      value=query.key_value)
        return UpdatePlan(lookup=lookup, set_column=query.set_column,
                          set_value=query.set_value)
