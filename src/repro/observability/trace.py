"""The per-query trace tree and the tracer that assembles it.

A :class:`Tracer` is attached to one measured unit by the session (or by
other drivers such as ``execute_suite``): the root span opens immediately
after ``reset_counters()`` and closes immediately before ``finalize()``,
so the root's synthesized delta *is* the whole-query counter set (the
observability tests assert key-by-key equality).  Inside the unit the
executor instruments the operator tree -- every ``batches()``/``rows()``
pull is bracketed by a counter span -- and opens phase spans around
planner/setup work; the parallel and spill layers add subspans in ``full``
mode.

Structure and attribution rules:

* **Nodes are structural.**  A node is keyed by its position in the tree
  (role + operator class + detail), so the repeated runs of a measured
  unit, and every pull of one run, merge into one node.  ``pulls`` counts
  enter/exit pairs.
* **Inclusive by construction.**  A child's pulls happen while its
  parent's pull span is open (generator suspension preserves nesting), so
  a parent's accumulated delta includes its children's.  *Self* time is
  inclusive minus the children's inclusive -- exact integer arithmetic on
  raw-bank deltas.
* **Reentrancy-safe.**  Only the outermost enter/exit of a node captures
  snapshots; nested re-entries (e.g. a replay subspan re-entered per
  morsel) just track depth.
* **Morsel / shared-scan composition.**  Worker charge tapes are replayed
  into the parent context *inside* the consuming operator's open span, in
  canonical replay order -- so exchange and shared-scan nodes attribute
  exactly the charges a serial scan would have issued.  ``full`` mode
  additionally gives each replayed morsel batch a ``replay`` subspan.

Tracing only reads hardware state; the ``off`` mode never constructs any
of this (``ctx.tracer`` stays ``None`` and every hook is one attribute
check).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..analysis.breakdown import BreakdownError, ExecutionBreakdown
from ..hardware.counters import EventCounters
from ..query.plans import TRACING_FULL, TRACING_MODES, TRACING_OFF
from .spans import capture_snapshot, synthesize_counters

__all__ = ["TraceNode", "Tracer"]

#: Attribute names under which operators hold their child operators.
#: ``inner_factory`` inners (nested-loop joins) are deliberately absent:
#: they are constructed per outer batch and attribute to the join node.
_CHILD_ROLES: Tuple[str, ...] = ("child", "probe", "build", "outer")

#: Cap on per-node ``full``-mode event records (per-pull timings, spill
#: I/O).  Keeps long scans from accumulating unbounded host-side lists;
#: ``events_dropped`` records how many were capped away.
_MAX_EVENTS = 512


class TraceNode:
    """One node of the trace tree: an operator, phase or subspan."""

    __slots__ = ("name", "kind", "parent", "children", "_child_index",
                 "user", "sup", "l1i_stall", "l2_accesses", "l2_misses",
                 "l2_writebacks", "io_stats", "rows", "pulls",
                 "host_seconds", "first_host", "last_host", "events",
                 "events_dropped", "meta", "fixed_counters",
                 "_open", "_depth")

    def __init__(self, name: str, kind: str = "operator",
                 parent: Optional["TraceNode"] = None) -> None:
        self.name = name
        self.kind = kind
        self.parent = parent
        self.children: List[TraceNode] = []
        self._child_index: Dict[tuple, TraceNode] = {}
        # Inclusive raw-bank delta accumulators.
        self.user: Dict[str, int] = {}
        self.sup: Dict[str, int] = {}
        self.l1i_stall = 0.0
        self.l2_accesses = 0
        self.l2_misses = 0
        self.l2_writebacks = 0
        self.io_stats: Dict[str, int] = {}
        self.rows = 0
        self.pulls = 0
        self.host_seconds = 0.0
        self.first_host: Optional[float] = None
        self.last_host: Optional[float] = None
        self.events: List[tuple] = []
        self.events_dropped = 0
        self.meta: Dict[str, object] = {}
        #: Pre-synthesized counters for leaf nodes built outside a live
        #: execution (e.g. the serving layer's result-cache probe span).
        self.fixed_counters: Optional[EventCounters] = None
        self._open = None
        self._depth = 0

    # ------------------------------------------------------------- building
    def child(self, key: tuple, name: str, kind: str) -> "TraceNode":
        """Get or create the child node at structural position ``key``."""
        node = self._child_index.get(key)
        if node is None:
            node = TraceNode(name, kind, parent=self)
            self._child_index[key] = node
            self.children.append(node)
        return node

    @classmethod
    def leaf(cls, name: str, counters: EventCounters,
             kind: str = "phase") -> "TraceNode":
        """A standalone single-span node carrying finalized counters."""
        node = cls(name, kind)
        node.fixed_counters = counters.snapshot()
        node.pulls = 1
        return node

    def _accumulate(self, before, after) -> None:
        user = self.user
        for event, value in after.user.items():
            delta = value - before.user.get(event, 0)
            if delta:
                user[event] = user.get(event, 0) + delta
        sup = self.sup
        for event, value in after.sup.items():
            delta = value - before.sup.get(event, 0)
            if delta:
                sup[event] = sup.get(event, 0) + delta
        self.l1i_stall += after.l1i_stall_cycles - before.l1i_stall_cycles
        self.l2_accesses += after.l2_accesses - before.l2_accesses
        self.l2_misses += after.l2_misses - before.l2_misses
        self.l2_writebacks += after.l2_writebacks - before.l2_writebacks
        io = self.io_stats
        for key, value in after.io_stats.items():
            delta = value - before.io_stats.get(key, 0)
            if delta:
                io[key] = io.get(key, 0) + delta
        self.rows += after.rows_produced - before.rows_produced
        self.pulls += 1
        self.host_seconds += after.host_seconds - before.host_seconds
        if self.first_host is None:
            self.first_host = before.host_seconds
        self.last_host = after.host_seconds

    # ------------------------------------------------------------ reporting
    def inclusive_counters(self, processor) -> EventCounters:
        """This node's delta (children included), in finalized shape."""
        if self.fixed_counters is not None:
            return self.fixed_counters.snapshot()
        return synthesize_counters(self.user, self.sup, self.l1i_stall,
                                   self.l2_accesses, self.l2_misses,
                                   self.l2_writebacks, processor)

    def self_counters(self, processor) -> EventCounters:
        """This node's delta minus its children's (exact on raw banks)."""
        if self.fixed_counters is not None:
            return self.fixed_counters.snapshot()
        user = dict(self.user)
        sup = dict(self.sup)
        l1i = self.l1i_stall
        accesses = self.l2_accesses
        misses = self.l2_misses
        writebacks = self.l2_writebacks
        for node in self.children:
            for event, value in node.user.items():
                user[event] = user.get(event, 0) - value
            for event, value in node.sup.items():
                sup[event] = sup.get(event, 0) - value
            l1i -= node.l1i_stall
            accesses -= node.l2_accesses
            misses -= node.l2_misses
            writebacks -= node.l2_writebacks
        return synthesize_counters(user, sup, l1i, accesses, misses,
                                   writebacks, processor)

    def self_io_stats(self) -> Dict[str, int]:
        out = dict(self.io_stats)
        for node in self.children:
            for key, value in node.io_stats.items():
                out[key] = out.get(key, 0) - value
        return {key: value for key, value in out.items() if value}

    def breakdown(self, spec, processor,
                  inclusive: bool = False) -> Optional[ExecutionBreakdown]:
        """The Table 4.2 stall decomposition of this node's (self) delta.

        ``None`` when the delta carries no cycles (e.g. a zero-cost phase):
        the paper's formulae need a positive cycle total to decompose.
        """
        counters = (self.inclusive_counters(processor) if inclusive
                    else self.self_counters(processor))
        try:
            return ExecutionBreakdown.from_counters(counters, spec,
                                                    label=self.name)
        except BreakdownError:
            return None

    def walk(self):
        """Yield ``(depth, node)`` pairs in depth-first pre-order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))


def describe_operator(operator) -> str:
    name = type(operator).__name__
    table = getattr(operator, "table", None)
    table_name = getattr(table, "name", None)
    if table_name:
        return f"{name}({table_name})"
    return name


class Tracer:
    """Builds one query's trace tree from scoped counter spans."""

    def __init__(self, ctx, spec, mode: str, label: str = "query") -> None:
        if mode not in TRACING_MODES or mode == TRACING_OFF:
            raise ValueError(f"tracer requires an active tracing mode, "
                             f"got {mode!r}")
        self.ctx = ctx
        self.spec = spec
        self.mode = mode
        self.full = mode == TRACING_FULL
        self.processor = ctx.processor
        self.root = TraceNode(label, kind="query")
        self._stack: List[TraceNode] = []

    # ------------------------------------------------------------ raw spans
    def enter(self, node: TraceNode) -> None:
        if node._depth == 0:
            node._open = capture_snapshot(self.ctx)
        node._depth += 1
        self._stack.append(node)

    def exit(self, node: TraceNode) -> None:
        self._stack.pop()
        node._depth -= 1
        if node._depth == 0:
            before = node._open
            node._open = None
            after = capture_snapshot(self.ctx)
            node._accumulate(before, after)
            if self.full:
                if len(node.events) < _MAX_EVENTS:
                    node.events.append(("pull", before.host_seconds,
                                        after.host_seconds - before.host_seconds))
                else:
                    node.events_dropped += 1

    @property
    def current(self) -> TraceNode:
        return self._stack[-1] if self._stack else self.root

    def open_root(self) -> None:
        self.enter(self.root)

    def close_root(self) -> None:
        while self._stack:  # defensive: an exception may strand open spans
            self.exit(self._stack[-1])

    @contextmanager
    def span(self, name: str, kind: str = "phase"):
        """A named subspan under the innermost open span."""
        node = self.current.child(("span", kind, name), name, kind)
        self.enter(node)
        try:
            yield node
        finally:
            self.exit(node)

    def span_node(self, name: str, kind: str = "phase") -> TraceNode:
        """The subspan node without entering it (for explicit parenting)."""
        return self.current.child(("span", kind, name), name, kind)

    @contextmanager
    def open(self, node: TraceNode):
        self.enter(node)
        try:
            yield node
        finally:
            self.exit(node)

    # --------------------------------------------------------- instrumenting
    def instrument(self, operator, parent: Optional[TraceNode] = None,
                   role: str = "plan") -> TraceNode:
        """Wrap ``operator`` (and its children) in per-pull counter spans.

        Wrapping is per-instance: the operator's ``batches``/``rows``
        method is shadowed by an instance attribute, so fresh operator
        trees of later runs are instrumented independently while their
        spans merge into the same structural nodes.
        """
        parent = parent if parent is not None else self.current
        name = describe_operator(operator)
        node = parent.child(("op", role, name), name, "operator")
        node.meta.setdefault("role", role)
        node.meta.setdefault("operator", type(operator).__name__)
        for attr in _CHILD_ROLES:
            child = getattr(operator, attr, None)
            if child is not None and (hasattr(child, "batches")
                                      or hasattr(child, "rows")):
                self.instrument(child, parent=node, role=attr)
        if hasattr(operator, "batches"):
            operator.batches = self._traced_pulls(operator.batches, node)
        elif hasattr(operator, "rows"):
            operator.rows = self._traced_pulls(operator.rows, node)
        return node

    def _traced_pulls(self, method, node: TraceNode):
        tracer = self

        def traced():
            iterator = method()
            while True:
                tracer.enter(node)
                try:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        return
                finally:
                    tracer.exit(node)
                yield item

        return traced

    # ------------------------------------------------------------ utilities
    def io_event(self, name: str, nbytes: int) -> None:
        """Record one spill-I/O occurrence on the innermost open span."""
        node = self.current
        if len(node.events) < _MAX_EVENTS:
            node.events.append((name, nbytes))
        else:
            node.events_dropped += 1
