"""Query tracing and attributed profiling.

The paper attributes an entire run's processor time to microarchitectural
causes; this package attributes it *per operator*.  A
:class:`~repro.observability.trace.Tracer` (installed by the session when
``tracing != "off"``) brackets every operator pull, planner/setup phase,
morsel replay and spill I/O in a counter span -- a snapshot-delta capture
of the simulated event banks -- and assembles the spans into a per-query
trace tree whose nodes each carry the Figure 5.x stall decomposition.
Exporters render the tree as text (``scripts/run_trace.py``), JSON and
Chrome ``trace_event`` format.

Tracing is observation only: snapshots read the live hardware state
between charges and never issue one, so result rows and every simulated
count are identical across ``off``/``spans``/``full`` (differentially
tested in ``tests/test_observability.py``).
"""

from .export import chrome_trace, chrome_trace_json, render_trace, trace_to_dict
from .spans import CounterSnapshot, DERIVED_EVENTS, capture_snapshot, synthesize_counters
from .trace import TraceNode, Tracer

__all__ = [
    "CounterSnapshot", "DERIVED_EVENTS", "capture_snapshot",
    "synthesize_counters", "TraceNode", "Tracer",
    "render_trace", "trace_to_dict", "chrome_trace", "chrome_trace_json",
]
