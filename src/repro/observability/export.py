"""Trace-tree exporters: text, JSON, and Chrome ``trace_event`` format.

Three consumers, three shapes:

* :func:`render_trace` -- the human-facing text tree
  (``scripts/run_trace.py``): per node, self/inclusive cycles, rows,
  pulls, and the Figure 5.x stall decomposition of the node's *self*
  delta, so "where does time go?" is answered per operator.
* :func:`trace_to_dict` -- JSON-serialisable nesting for ``BENCH_*.json``
  points and programmatic use.
* :func:`chrome_trace` -- ``chrome://tracing`` / Perfetto "complete"
  (``ph: "X"``) events.  Timestamps are host wall-clock (a node's span is
  first pull start to last pull end, children nested within parents by
  construction); simulated cycle totals ride along in ``args``.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..analysis.breakdown import GROUPS
from .trace import TraceNode

__all__ = ["render_trace", "trace_to_dict", "chrome_trace",
           "chrome_trace_json"]


def _cycles(counters) -> int:
    return counters.get("CPU_CLK_UNHALTED")


def _node_summary(node: TraceNode, processor) -> dict:
    inclusive = node.inclusive_counters(processor)
    self_counters = node.self_counters(processor)
    return {"inclusive": inclusive, "self": self_counters,
            "inclusive_cycles": _cycles(inclusive),
            "self_cycles": _cycles(self_counters)}


def render_trace(root: TraceNode, spec, processor,
                 show_breakdown: bool = True) -> str:
    """Render the trace tree as an indented text report."""
    lines: List[str] = []
    for depth, node in root.walk():
        summary = _node_summary(node, processor)
        indent = "  " * depth
        parts = [f"{indent}{node.name}",
                 f"self={summary['self_cycles']:,} cyc",
                 f"incl={summary['inclusive_cycles']:,} cyc"]
        if node.rows:
            parts.append(f"rows={node.rows:,}")
        if node.pulls:
            parts.append(f"pulls={node.pulls:,}")
        if node.host_seconds:
            parts.append(f"host={node.host_seconds * 1e3:.2f}ms")
        io = node.self_io_stats()
        if io.get("page_reads") or io.get("page_writes"):
            parts.append(f"io={io.get('page_reads', 0)}r/"
                         f"{io.get('page_writes', 0)}w")
        lines.append("  ".join(parts))
        if show_breakdown:
            breakdown = node.breakdown(spec, processor)
            if breakdown is not None:
                shares = breakdown.shares()
                lines.append("  " * (depth + 1) + "| " + "  ".join(
                    f"{group}={shares[group] * 100:.1f}%"
                    for group in GROUPS))
    return "\n".join(lines) + "\n"


def trace_to_dict(node: TraceNode, spec, processor,
                  include_counters: bool = False) -> dict:
    """JSON-serialisable nesting of the trace tree."""
    summary = _node_summary(node, processor)
    breakdown = node.breakdown(spec, processor)
    out: dict = {
        "name": node.name,
        "kind": node.kind,
        "pulls": node.pulls,
        "rows": node.rows,
        "host_seconds": round(node.host_seconds, 9),
        "self_cycles": summary["self_cycles"],
        "inclusive_cycles": summary["inclusive_cycles"],
    }
    if node.meta:
        out["meta"] = dict(node.meta)
    io = node.self_io_stats()
    if io:
        out["io_stats"] = io
    if breakdown is not None:
        out["breakdown"] = {name: round(value, 3) for name, value
                            in breakdown.components.items()}
        out["shares"] = {name: round(value, 6) for name, value
                         in breakdown.shares().items()}
    if include_counters:
        out["counters"] = {event: count for event, count
                           in summary["self"].as_dict().items() if count}
    if node.events:
        out["events"] = [list(event) for event in node.events]
        if node.events_dropped:
            out["events_dropped"] = node.events_dropped
    if node.children:
        out["children"] = [trace_to_dict(child, spec, processor,
                                         include_counters=include_counters)
                           for child in node.children]
    return out


def chrome_trace(root: TraceNode, spec, processor) -> dict:
    """The trace tree as Chrome ``trace_event`` "complete" events.

    Load the JSON in ``chrome://tracing`` (or https://ui.perfetto.dev):
    every node with observed host time becomes one ``X`` event whose
    nesting mirrors the operator tree, with simulated cycles in ``args``.
    """
    base = root.first_host or 0.0
    events = []
    for _, node in root.walk():
        if node.first_host is None or node.last_host is None:
            continue
        summary = _node_summary(node, processor)
        args = {"self_cycles": summary["self_cycles"],
                "inclusive_cycles": summary["inclusive_cycles"],
                "pulls": node.pulls, "rows": node.rows}
        if node.meta:
            args.update({key: value for key, value in node.meta.items()
                         if isinstance(value, (str, int, float))})
        breakdown = node.breakdown(spec, processor)
        if breakdown is not None:
            shares = breakdown.shares()
            args.update({f"share_{group}": round(shares[group], 4)
                         for group in GROUPS})
        events.append({
            "name": node.name,
            "cat": node.kind,
            "ph": "X",
            "ts": (node.first_host - base) * 1e6,
            "dur": max(node.last_host - node.first_host, 0.0) * 1e6,
            "pid": 0,
            "tid": 0,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(root: TraceNode, spec, processor,
                      indent: Optional[int] = None) -> str:
    return json.dumps(chrome_trace(root, spec, processor), indent=indent)
