"""Counter spans: snapshot-delta capture of the simulated hardware state.

A *span* is the paper's EMON discipline shrunk to one region of a query:
read every counter before the region, read it again after, and attribute
the difference.  The simulated processor makes this exact -- a
:class:`CounterSnapshot` copies the live event banks, the float L1I stall
accumulator, the L2 statistics the derived counters are computed from, and
the context's I/O statistics, without issuing a single charge.  Capture is
pure observation: no cache line moves, no counter increments, no address is
allocated, which is the whole zero-perturbation argument (DESIGN.md).

Derived-counter synthesis mirrors
:meth:`~repro.hardware.processor.SimulatedProcessor.finalize` exactly,
restricted to a delta:

* ``IFU_MEM_STALL``     = round(Δ ``_l1i_stall_cycles``) -- the accumulator
  only ever grows by integer-valued stall penalties, so deltas are exact;
* ``L2_RQSTS``          = Δ L2 accesses;
* ``L2_LINES_IN``       = Δ L2 misses;
* ``BUS_TRAN_MEM``      = Δ misses + Δ write-backs;
* ``MEMORY_LATENCY_CYCLES`` = Δ misses x the memory latency (the memory
  model's fill latency is linear in the fill count; write-backs add none);
* ``CPU_CLK_UNHALTED``  = the :class:`~repro.hardware.pipeline.CycleModel`
  assembled over the delta counters.

Every synthesized event except ``CPU_CLK_UNHALTED`` is an integer-linear
function of raw deltas, so per-node deltas sum to the whole-query counters
*exactly* (the observability tests assert key-by-key equality against
``finalize()``).  Cycles are the one nonlinear derivation -- the model
clamps ``gross - overlap`` to the computation floor -- so per-node cycle
totals are model-derived per delta and documented as non-additive.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from ..hardware.counters import EventCounters

__all__ = ["CounterSnapshot", "DERIVED_EVENTS", "capture_snapshot",
           "synthesize_counters"]

#: Events :meth:`SimulatedProcessor.finalize` derives rather than
#: accumulates.  Raw-bank deltas skip them defensively (they only appear in
#: the live bank if someone called ``finalize()`` mid-run) and synthesis
#: recomputes them from the snapshot's hardware statistics.
DERIVED_EVENTS: Tuple[str, ...] = (
    "IFU_MEM_STALL", "CPU_CLK_UNHALTED", "BUS_TRAN_MEM",
    "MEMORY_LATENCY_CYCLES", "L2_RQSTS", "L2_LINES_IN",
)

_DERIVED_SET = frozenset(DERIVED_EVENTS)


class CounterSnapshot:
    """One read of everything a span delta needs.  Pure observation."""

    __slots__ = ("user", "sup", "l1i_stall_cycles", "l2_accesses",
                 "l2_misses", "l2_writebacks", "io_stats", "rows_produced",
                 "host_seconds")

    def __init__(self, user: Dict[str, int], sup: Dict[str, int],
                 l1i_stall_cycles: float, l2_accesses: int, l2_misses: int,
                 l2_writebacks: int, io_stats: Dict[str, int],
                 rows_produced: int, host_seconds: float) -> None:
        self.user = user
        self.sup = sup
        self.l1i_stall_cycles = l1i_stall_cycles
        self.l2_accesses = l2_accesses
        self.l2_misses = l2_misses
        self.l2_writebacks = l2_writebacks
        self.io_stats = io_stats
        self.rows_produced = rows_produced
        self.host_seconds = host_seconds


def capture_snapshot(ctx) -> CounterSnapshot:
    """Snapshot the context's simulated hardware state without touching it.

    Works identically under python and native charging: the native fast
    path charges into the *live* counter banks (the C state holds a
    reference to the same dicts), and snapshots only ever happen between
    Python-level operator calls, never inside one C call.
    """
    processor = ctx.processor
    counters = processor.counters
    l2 = processor.caches.l2.stats
    return CounterSnapshot(dict(counters.user), dict(counters.sup),
                           processor._l1i_stall_cycles,
                           l2.total_accesses, l2.total_misses, l2.writebacks,
                           dict(ctx.io_stats), ctx.rows_produced,
                           time.perf_counter())


def synthesize_counters(user: Dict[str, int], sup: Dict[str, int],
                        l1i_stall_cycles: float, l2_accesses: int,
                        l2_misses: int, l2_writebacks: int,
                        processor) -> EventCounters:
    """Assemble delta accumulators into finalized-shape counters.

    ``user``/``sup`` are raw-bank deltas (derived events absent); the L2 /
    L1I-stall arguments are the matching hardware-statistic deltas.  The
    result carries the same derived events ``finalize()`` would have
    produced for a run consisting of exactly this span.
    """
    out = EventCounters()
    out.user = {event: count for event, count in user.items()
                if count and event not in _DERIVED_SET}
    out.sup = {event: count for event, count in sup.items() if count}
    out.user["IFU_MEM_STALL"] = int(round(l1i_stall_cycles))
    out.user["L2_RQSTS"] = l2_accesses
    out.user["L2_LINES_IN"] = l2_misses
    out.user["BUS_TRAN_MEM"] = l2_misses + l2_writebacks
    out.user["MEMORY_LATENCY_CYCLES"] = (
        l2_misses * processor.memory.spec.latency_cycles)
    out.user["CPU_CLK_UNHALTED"] = int(round(
        processor.cycle_model.assemble(out).total))
    return out
