"""Heap files: unordered collections of fixed-layout records across pages.

A heap file appends records into slotted pages allocated from a buffer pool,
keeps the list of page numbers it owns, and supports the access paths the
microbenchmark needs:

* full sequential scan in storage order (the access pattern of the paper's
  sequential range selection),
* fetch-by-RID (the access pattern of the non-clustered index selection,
  where the leaf entries of the B+-tree point back into the heap), and
* simple record updates/deletes for the OLTP-style workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .buffer_pool import BufferPool
from .page import PageError, PaxPage, RecordId, SlottedPage
from .schema import RecordLayout


class HeapFileError(RuntimeError):
    """Raised on invalid heap-file operations."""


@dataclass(frozen=True)
class ScanEntry:
    """One record produced by a physical scan.

    ``address`` is the simulated virtual address of the record's first byte,
    which the executor combines with the layout's field offsets to produce
    the data accesses it presents to the processor model.
    """

    rid: RecordId
    page: SlottedPage
    slot: int
    address: int


#: Supported physical page organisations.
PAGE_STYLE_NSM = "nsm"
PAGE_STYLE_PAX = "pax"
PAGE_STYLES = (PAGE_STYLE_NSM, PAGE_STYLE_PAX)


class HeapFile:
    """An append-oriented file of fixed-layout records.

    ``page_style`` selects the physical page organisation: ``"nsm"`` (the
    default slotted pages the paper's systems use) or ``"pax"`` (one
    minipage per column, so column batches are contiguous and the
    vectorized scan can read them as dense spans).
    """

    def __init__(self, name: str, layout: RecordLayout, buffer_pool: BufferPool,
                 page_style: str = PAGE_STYLE_NSM) -> None:
        if page_style not in PAGE_STYLES:
            raise HeapFileError(f"unknown page style {page_style!r}; "
                                f"expected one of {PAGE_STYLES}")
        self.name = name
        self.layout = layout
        self.buffer_pool = buffer_pool
        self.page_style = page_style
        self._page_numbers: List[int] = []
        self._page_number_set: set = set()
        self._record_count = 0
        self._current_page: Optional[SlottedPage] = None

    # ------------------------------------------------------------ mutation
    def insert(self, values: Sequence) -> RecordId:
        """Encode and append one record; returns its record id."""
        record_bytes = self.layout.encode(values)
        page = self._page_for_insert(len(record_bytes))
        slot = page.insert(record_bytes)
        self._record_count += 1
        return RecordId(page.page_number, slot)

    def insert_many(self, rows: Iterable[Sequence]) -> int:
        """Bulk insert; returns the number of records inserted."""
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def delete(self, rid: RecordId) -> None:
        page = self._page(rid.page_number)
        page.delete(rid.slot)
        self._record_count -= 1

    def update(self, rid: RecordId, values: Sequence) -> None:
        """In-place update (fixed-size records always fit)."""
        page = self._page(rid.page_number)
        page.update_in_place(rid.slot, self.layout.encode(values))

    def _page_for_insert(self, record_size: int) -> SlottedPage:
        page = self._current_page
        if page is None or not page.has_room_for(record_size):
            factory = None
            if self.page_style == PAGE_STYLE_PAX:
                layout = self.layout
                page_size = self.buffer_pool.page_size

                def factory(page_number: int, base_address: int) -> PaxPage:
                    return PaxPage(page_number, base_address, layout, page_size)

            if page is not None:
                # The previous fill target was pinned below; release it so a
                # capacity-limited pool may evict it now that it is full.
                self.buffer_pool.unpin(page.page_number)
            page = self.buffer_pool.allocate_page(factory, pin=True)
            self._page_numbers.append(page.page_number)
            self._page_number_set.add(page.page_number)
            self._current_page = page
        return page

    def _page(self, page_number: int) -> SlottedPage:
        if page_number not in self._page_number_set:
            raise HeapFileError(f"page {page_number} does not belong to heap file {self.name!r}")
        return self.buffer_pool.fetch_page(page_number)

    # -------------------------------------------------------------- queries
    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def page_count(self) -> int:
        return len(self._page_numbers)

    @property
    def records_per_page(self) -> int:
        """Capacity of one page for this layout (used by cost estimates)."""
        from .page import PAGE_HEADER_BYTES, SLOT_ENTRY_BYTES
        usable = self.buffer_pool.page_size - PAGE_HEADER_BYTES
        if self.page_style == PAGE_STYLE_PAX:
            return max(usable // self.layout.record_size, 1)
        return max(usable // (self.layout.record_size + SLOT_ENTRY_BYTES), 1)

    def data_bytes(self) -> int:
        """Bytes of record payload stored (working-set size of a full scan)."""
        return self._record_count * self.layout.record_size

    def page_numbers(self) -> Tuple[int, ...]:
        return tuple(self._page_numbers)

    # ------------------------------------------------------- data checkpoint
    def data_checkpoint(self) -> Tuple[Tuple[int, bytes, bool], ...]:
        """Snapshot every page's raw bytes (plus its dirty flag).

        Together with :meth:`data_restore` this extends the warmed-build
        reuse discipline (``AddressSpace.checkpoint``/``restore``, which
        only rolls back *allocation cursors*) to workloads that mutate
        data in place: the TPC-C-style transaction mix updates records, so
        re-measuring it against a shared build needs the page contents
        rolled back too.  The snapshot is taken and restored entirely at
        the Python level -- no buffer-pool statistics move and nothing is
        charged to the simulated processor, exactly like the address-space
        checkpoint.

        Covers in-place record updates (both NSM slotted pages and PAX
        minipages write through their fixed-size buffers); page *set*
        changes (inserts allocating new pages, deletes) are outside its
        contract -- :meth:`data_restore` asserts the page list is unchanged.
        """
        peek = self.buffer_pool.peek_page
        return tuple((number, bytes(peek(number)._buffer), peek(number).dirty)
                     for number in self._page_numbers)

    def data_restore(self, snapshot: Sequence[Tuple[int, bytes, bool]]) -> None:
        """Write a :meth:`data_checkpoint` snapshot back into the pages."""
        if len(snapshot) != len(self._page_numbers):
            raise HeapFileError(
                f"data_restore of heap file {self.name!r}: snapshot covers "
                f"{len(snapshot)} pages but the file now has "
                f"{len(self._page_numbers)} -- pages were allocated or "
                f"dropped since the checkpoint")
        peek = self.buffer_pool.peek_page
        for page_number, buffer, dirty in snapshot:
            page = peek(page_number)
            page._buffer[:] = buffer
            page.dirty = dirty

    # ----------------------------------------------------------------- scan
    def scan(self) -> Iterator[ScanEntry]:
        """Iterate over all live records in storage order."""
        fetch = self.buffer_pool.fetch_page
        for page_number in self._page_numbers:
            page = fetch(page_number)
            for slot in page.live_slots():
                yield ScanEntry(rid=RecordId(page_number, slot), page=page,
                                slot=slot, address=page.slot_address(slot))

    def scan_pages(self, start: Optional[int] = None,
                   stop: Optional[int] = None) -> Iterator[Tuple[SlottedPage, List[int]]]:
        """Iterate page-at-a-time: ``(page, [live slots])``.

        The executor uses this form so it can charge the per-page buffer-pool
        management code path once per page boundary crossing (one of the
        candidate explanations in Section 5.2.2 for the record-size effect on
        L1 instruction misses).

        ``start``/``stop`` restrict the iteration to a ``[start, stop)``
        slice of the heap's page sequence (the morsel-parallel exchange's
        unit of partitioning); only the selected pages are fetched.
        """
        fetch = self.buffer_pool.fetch_page
        for page_number in self._page_numbers[start:stop]:
            page = fetch(page_number)
            yield page, list(page.live_slots())

    def fetch(self, rid: RecordId) -> ScanEntry:
        """Fetch one record by rid (index access path)."""
        page = self._page(rid.page_number)
        if not page.is_live(rid.slot):
            raise HeapFileError(f"record {rid} is deleted")
        return ScanEntry(rid=rid, page=page, slot=rid.slot,
                         address=page.slot_address(rid.slot))

    def read_values(self, rid: RecordId) -> Tuple:
        """Decode the full record at ``rid`` (convenience/tests)."""
        entry = self.fetch(rid)
        return self.layout.decode(bytes(entry.page.record_view(entry.slot)))

    def __len__(self) -> int:
        return self._record_count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"HeapFile({self.name!r}, {self._record_count} records, "
                f"{self.page_count} pages)")
