"""Storage substrate: address space, schemas, pages, buffer pool, heap files, catalog."""

from .address_space import AddressSpace, AddressSpaceError, Region
from .buffer_pool import BufferPool, BufferPoolError, BufferPoolStats
from .catalog import Catalog, CatalogError, Table
from .heapfile import (PAGE_STYLE_NSM, PAGE_STYLE_PAX, PAGE_STYLES, HeapFile,
                       HeapFileError, ScanEntry)
from .page import (DEFAULT_PAGE_SIZE, PAGE_HEADER_BYTES, PageError, PaxPage,
                   RecordId, SlottedPage)
from .schema import (Column, ColumnType, RecordLayout, Schema, SchemaError,
                     microbenchmark_schema)

__all__ = [
    "AddressSpace", "AddressSpaceError", "Region",
    "BufferPool", "BufferPoolError", "BufferPoolStats",
    "Catalog", "CatalogError", "Table",
    "HeapFile", "HeapFileError", "ScanEntry",
    "PAGE_STYLE_NSM", "PAGE_STYLE_PAX", "PAGE_STYLES",
    "DEFAULT_PAGE_SIZE", "PAGE_HEADER_BYTES", "PageError", "PaxPage",
    "RecordId", "SlottedPage",
    "Column", "ColumnType", "RecordLayout", "Schema", "SchemaError",
    "microbenchmark_schema",
]
