"""Tables and the system catalog.

A :class:`Table` couples a schema/layout with the heap file holding its
records and any secondary indexes built over it.  The :class:`Catalog` owns
the simulated address space, the buffer pools (separate pools for heap pages
and index pages so the two kinds of data live in distinct address regions),
and the set of tables -- it is the storage-level facade the engine layer
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .address_space import AddressSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance (storage <-> index)
    from ..index.btree import BTreeIndex
from .buffer_pool import BufferPool
from .heapfile import PAGE_STYLE_NSM, HeapFile
from .page import DEFAULT_PAGE_SIZE, RecordId
from .schema import RecordLayout, Schema


class CatalogError(RuntimeError):
    """Raised for unknown tables/indexes or conflicting definitions."""


@dataclass
class Table:
    """A stored table: schema, layout, heap file and secondary indexes."""

    name: str
    schema: Schema
    layout: RecordLayout
    heap: HeapFile
    indexes: Dict[str, "BTreeIndex"] = field(default_factory=dict)

    # ------------------------------------------------------------ mutation
    def insert(self, values: Sequence) -> RecordId:
        """Insert a row, maintaining every secondary index."""
        rid = self.heap.insert(values)
        if self.indexes:
            for column_name, index in self.indexes.items():
                key = values[self.schema.index_of(column_name)]
                index.insert(key, rid)
        return rid

    def insert_many(self, rows: Iterable[Sequence]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def update(self, rid: RecordId, values: Sequence) -> None:
        """Update a row in place, maintaining indexes on changed keys."""
        if self.indexes:
            old_values = self.heap.read_values(rid)
            for column_name, index in self.indexes.items():
                position = self.schema.index_of(column_name)
                if old_values[position] != values[position]:
                    index.delete(old_values[position], rid)
                    index.insert(values[position], rid)
        self.heap.update(rid, values)

    def delete(self, rid: RecordId) -> None:
        if self.indexes:
            old_values = self.heap.read_values(rid)
            for column_name, index in self.indexes.items():
                index.delete(old_values[self.schema.index_of(column_name)], rid)
        self.heap.delete(rid)

    # -------------------------------------------------------------- queries
    @property
    def row_count(self) -> int:
        return self.heap.record_count

    def index_on(self, column_name: str) -> Optional["BTreeIndex"]:
        return self.indexes.get(column_name)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Table({self.name!r}, {self.row_count} rows, indexes={sorted(self.indexes)})"


class Catalog:
    """The storage manager: address space, buffer pools and table registry."""

    def __init__(self,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 address_space: Optional[AddressSpace] = None) -> None:
        self.page_size = page_size
        self.address_space = address_space or AddressSpace()
        self.heap_pool = BufferPool(self.address_space, region="heap", page_size=page_size)
        self.index_pool = BufferPool(self.address_space, region="index", page_size=page_size)
        self._tables: Dict[str, Table] = {}

    # ----------------------------------------------------------- DDL paths
    def create_table(self, name: str, schema: Schema,
                     record_size: Optional[int] = None,
                     layout_style: str = PAGE_STYLE_NSM) -> Table:
        """Create a table; ``layout_style`` picks NSM or PAX page organisation."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        layout = RecordLayout.build(schema, record_size=record_size)
        heap = HeapFile(name, layout, self.heap_pool, page_style=layout_style)
        table = Table(name=name, schema=schema, layout=layout, heap=heap)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]

    def create_index(self, table_name: str, column_name: str,
                     unique: bool = False) -> "BTreeIndex":
        """Create (and populate) a non-clustered B+-tree on one column."""
        table = self.table(table_name)
        from ..index.btree import BTreeIndex  # local import: storage <-> index cycle

        table.schema.column(column_name)  # validates existence
        if column_name in table.indexes:
            raise CatalogError(
                f"index on {table_name}.{column_name} already exists")
        index = BTreeIndex(name=f"{table_name}_{column_name}_idx",
                           address_space=self.address_space, unique=unique)
        position = table.schema.index_of(column_name)
        layout = table.layout
        entries = []
        for entry in table.heap.scan():
            key = layout.decode_column(bytes(entry.page.record_view(entry.slot)), column_name)
            entries.append((key, entry.rid))
        index.bulk_load(entries)
        table.indexes[column_name] = index
        return index

    def drop_index(self, table_name: str, column_name: str) -> None:
        table = self.table(table_name)
        if column_name not in table.indexes:
            raise CatalogError(f"no index on {table_name}.{column_name}")
        del table.indexes[column_name]

    # -------------------------------------------------------------- lookups
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def tables(self) -> Iterator[Table]:
        for name in sorted(self._tables):
            yield self._tables[name]

    def total_data_bytes(self) -> int:
        """Total relation bytes resident (the 'memory resident database' size)."""
        return sum(table.heap.data_bytes() for table in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Catalog(tables={list(self.table_names())})"
