"""Slotted pages.

Pages are the unit of buffer-pool management.  Each page owns a byte buffer of
``page_size`` bytes, a small header and a slot directory growing from the end
of the page toward the data area growing from the front -- the classic slotted
page organisation.  Records are stored contiguously, so a sequential scan of a
heap file sweeps virtual addresses monotonically, which is the access pattern
whose L2 behaviour Section 5.2.1 analyses.

Every page is assigned a stable, page-aligned virtual address by the buffer
pool; :meth:`SlottedPage.slot_address` and :meth:`SlottedPage.field_address`
translate a slot (and field offset) into the address the execution engine
presents to the simulated processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

DEFAULT_PAGE_SIZE = 8192

#: Bytes reserved at the start of each page for the header (page id, slot
#: count, free-space pointer, LSN placeholder).
PAGE_HEADER_BYTES = 24

#: Bytes per slot-directory entry (record offset + record length).
SLOT_ENTRY_BYTES = 4


class PageError(RuntimeError):
    """Raised on invalid page operations (overflow, bad slot, ...)."""


@dataclass(frozen=True)
class RecordId:
    """Physical record identifier: (page number, slot number)."""

    page_number: int
    slot: int

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"RID({self.page_number},{self.slot})"


class SlottedPage:
    """A fixed-size page with a slot directory.

    The implementation stores record payloads in a shared ``bytearray`` and
    keeps the slot directory as Python lists of offsets and lengths.  Deleted
    slots keep their directory entry with a length of ``-1`` (tombstone), as
    real systems do, so record ids of surviving records stay valid.
    """

    __slots__ = ("page_number", "page_size", "base_address", "_buffer",
                 "_offsets", "_lengths", "_free_offset", "dirty")

    def __init__(self, page_number: int, base_address: int,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= PAGE_HEADER_BYTES + SLOT_ENTRY_BYTES:
            raise PageError(f"page_size {page_size} is too small")
        self.page_number = page_number
        self.page_size = page_size
        self.base_address = base_address
        self._buffer = bytearray(page_size)
        self._offsets: List[int] = []
        self._lengths: List[int] = []
        self._free_offset = PAGE_HEADER_BYTES
        self.dirty = False

    # ------------------------------------------------------------ capacity
    @property
    def slot_count(self) -> int:
        """Number of slot-directory entries, including tombstones."""
        return len(self._offsets)

    @property
    def live_records(self) -> int:
        return sum(1 for length in self._lengths if length >= 0)

    def free_space(self) -> int:
        """Bytes available for a new record (payload plus its slot entry)."""
        directory_bytes = (self.slot_count + 1) * SLOT_ENTRY_BYTES
        return self.page_size - self._free_offset - directory_bytes

    def has_room_for(self, record_size: int) -> bool:
        return self.free_space() >= record_size

    # ------------------------------------------------------------- mutation
    def insert(self, record_bytes: bytes) -> int:
        """Insert a record; returns the slot number.

        Raises :class:`PageError` when the record does not fit.
        """
        size = len(record_bytes)
        if not self.has_room_for(size):
            raise PageError(
                f"page {self.page_number}: record of {size} bytes does not fit "
                f"({self.free_space()} bytes free)")
        offset = self._free_offset
        self._buffer[offset:offset + size] = record_bytes
        self._free_offset += size
        self._offsets.append(offset)
        self._lengths.append(size)
        self.dirty = True
        return len(self._offsets) - 1

    def delete(self, slot: int) -> None:
        """Tombstone a slot (space is not compacted)."""
        self._check_slot(slot)
        self._lengths[slot] = -1
        self.dirty = True

    def update_in_place(self, slot: int, record_bytes: bytes) -> None:
        """Overwrite a record of identical size (fixed-size record update)."""
        self._check_slot(slot)
        length = self._lengths[slot]
        if length != len(record_bytes):
            raise PageError(
                f"in-place update requires identical size (old {length}, new {len(record_bytes)})")
        offset = self._offsets[slot]
        self._buffer[offset:offset + length] = record_bytes
        self.dirty = True

    # --------------------------------------------------------------- access
    def record_bytes(self, slot: int) -> bytes:
        self._check_slot(slot)
        offset, length = self._offsets[slot], self._lengths[slot]
        return bytes(self._buffer[offset:offset + length])

    def record_view(self, slot: int) -> memoryview:
        """Zero-copy view of a record's bytes (hot path for field decoding)."""
        self._check_slot(slot)
        offset, length = self._offsets[slot], self._lengths[slot]
        return memoryview(self._buffer)[offset:offset + length]

    def slot_address(self, slot: int) -> int:
        """Virtual address of the first byte of the record in ``slot``."""
        self._check_slot(slot)
        return self.base_address + self._offsets[slot]

    def field_address(self, slot: int, field_offset: int) -> int:
        """Virtual address of byte ``field_offset`` within the record."""
        return self.slot_address(slot) + field_offset

    def live_slots(self) -> Iterator[int]:
        for slot, length in enumerate(self._lengths):
            if length >= 0:
                yield slot

    def is_live(self, slot: int) -> bool:
        return 0 <= slot < len(self._lengths) and self._lengths[slot] >= 0

    # ------------------------------------------------------------ internals
    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < len(self._offsets):
            raise PageError(f"page {self.page_number}: invalid slot {slot}")
        if self._lengths[slot] < 0:
            raise PageError(f"page {self.page_number}: slot {slot} is deleted")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"SlottedPage(#{self.page_number}, {self.live_records} records, "
                f"{self.free_space()} bytes free)")
