"""Slotted pages.

Pages are the unit of buffer-pool management.  Each page owns a byte buffer of
``page_size`` bytes, a small header and a slot directory growing from the end
of the page toward the data area growing from the front -- the classic slotted
page organisation.  Records are stored contiguously, so a sequential scan of a
heap file sweeps virtual addresses monotonically, which is the access pattern
whose L2 behaviour Section 5.2.1 analyses.

Every page is assigned a stable, page-aligned virtual address by the buffer
pool; :meth:`SlottedPage.slot_address` and :meth:`SlottedPage.field_address`
translate a slot (and field offset) into the address the execution engine
presents to the simulated processor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

DEFAULT_PAGE_SIZE = 8192

#: Bytes reserved at the start of each page for the header (page id, slot
#: count, free-space pointer, LSN placeholder).
PAGE_HEADER_BYTES = 24

#: Bytes per slot-directory entry (record offset + record length).
SLOT_ENTRY_BYTES = 4


class PageError(RuntimeError):
    """Raised on invalid page operations (overflow, bad slot, ...)."""


@dataclass(frozen=True)
class RecordId:
    """Physical record identifier: (page number, slot number)."""

    page_number: int
    slot: int

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"RID({self.page_number},{self.slot})"


class SlottedPage:
    """A fixed-size page with a slot directory.

    The implementation stores record payloads in a shared ``bytearray`` and
    keeps the slot directory as Python lists of offsets and lengths.  Deleted
    slots keep their directory entry with a length of ``-1`` (tombstone), as
    real systems do, so record ids of surviving records stay valid.
    """

    #: NSM pages store each record's bytes contiguously.
    columnar = False

    __slots__ = ("page_number", "page_size", "base_address", "_buffer",
                 "_offsets", "_lengths", "_free_offset", "dirty")

    def __init__(self, page_number: int, base_address: int,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= PAGE_HEADER_BYTES + SLOT_ENTRY_BYTES:
            raise PageError(f"page_size {page_size} is too small")
        self.page_number = page_number
        self.page_size = page_size
        self.base_address = base_address
        self._buffer = bytearray(page_size)
        self._offsets: List[int] = []
        self._lengths: List[int] = []
        self._free_offset = PAGE_HEADER_BYTES
        self.dirty = False

    # ------------------------------------------------------------ capacity
    @property
    def slot_count(self) -> int:
        """Number of slot-directory entries, including tombstones."""
        return len(self._offsets)

    @property
    def live_records(self) -> int:
        return sum(1 for length in self._lengths if length >= 0)

    def free_space(self) -> int:
        """Bytes available for a new record (payload plus its slot entry)."""
        directory_bytes = (self.slot_count + 1) * SLOT_ENTRY_BYTES
        return self.page_size - self._free_offset - directory_bytes

    def has_room_for(self, record_size: int) -> bool:
        return self.free_space() >= record_size

    # ------------------------------------------------------------- mutation
    def insert(self, record_bytes: bytes) -> int:
        """Insert a record; returns the slot number.

        Raises :class:`PageError` when the record does not fit.
        """
        size = len(record_bytes)
        if not self.has_room_for(size):
            raise PageError(
                f"page {self.page_number}: record of {size} bytes does not fit "
                f"({self.free_space()} bytes free)")
        offset = self._free_offset
        self._buffer[offset:offset + size] = record_bytes
        self._free_offset += size
        self._offsets.append(offset)
        self._lengths.append(size)
        self.dirty = True
        return len(self._offsets) - 1

    def delete(self, slot: int) -> None:
        """Tombstone a slot (space is not compacted)."""
        self._check_slot(slot)
        self._lengths[slot] = -1
        self.dirty = True

    def update_in_place(self, slot: int, record_bytes: bytes) -> None:
        """Overwrite a record of identical size (fixed-size record update)."""
        self._check_slot(slot)
        length = self._lengths[slot]
        if length != len(record_bytes):
            raise PageError(
                f"in-place update requires identical size (old {length}, new {len(record_bytes)})")
        offset = self._offsets[slot]
        self._buffer[offset:offset + length] = record_bytes
        self.dirty = True

    # --------------------------------------------------------------- access
    def record_bytes(self, slot: int) -> bytes:
        self._check_slot(slot)
        offset, length = self._offsets[slot], self._lengths[slot]
        return bytes(self._buffer[offset:offset + length])

    def record_view(self, slot: int) -> memoryview:
        """Zero-copy view of a record's bytes (hot path for field decoding)."""
        self._check_slot(slot)
        offset, length = self._offsets[slot], self._lengths[slot]
        return memoryview(self._buffer)[offset:offset + length]

    def field_values(self, offset: int, code: str, slots: Sequence[int]) -> List:
        """Decode the fixed-width field at record-relative ``offset`` for a
        batch of live slots -- one ``unpack_from`` straight off the page
        buffer per value, no per-record view or copy."""
        buffer = self._buffer
        offsets = self._offsets
        return [struct.unpack_from(code, buffer, offsets[slot] + offset)[0]
                for slot in slots]

    def slot_address(self, slot: int) -> int:
        """Virtual address of the first byte of the record in ``slot``."""
        self._check_slot(slot)
        return self.base_address + self._offsets[slot]

    def field_address(self, slot: int, field_offset: int) -> int:
        """Virtual address of byte ``field_offset`` within the record."""
        return self.slot_address(slot) + field_offset

    def live_slots(self) -> Iterator[int]:
        for slot, length in enumerate(self._lengths):
            if length >= 0:
                yield slot

    def is_live(self, slot: int) -> bool:
        return 0 <= slot < len(self._lengths) and self._lengths[slot] >= 0

    # ------------------------------------------------------------ internals
    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < len(self._offsets):
            raise PageError(f"page {self.page_number}: invalid slot {slot}")
        if self._lengths[slot] < 0:
            raise PageError(f"page {self.page_number}: slot {slot} is deleted")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"SlottedPage(#{self.page_number}, {self.live_records} records, "
                f"{self.free_space()} bytes free)")


class PaxPage:
    """A PAX (Partition Attributes Across) page for fixed-layout records.

    Instead of storing each record's bytes contiguously, the page is divided
    into one *minipage* per column (plus one for the anonymous record
    padding, so a PAX page holds the same number of records as an NSM page
    of the same size): record ``i``'s value for column ``c`` lives at
    ``minipage(c) + i * width(c)``.  A scan that only touches a few columns
    therefore sweeps a handful of dense value arrays instead of striding
    through whole records -- the cache-conscious layout Ailamaki et al.
    proposed as the remedy for the L2 data stalls this paper measures.

    The class mirrors the :class:`SlottedPage` record interface (``insert``,
    ``record_bytes``, ``record_view``, ``slot_address``, ``field_address``,
    ``live_slots``...) so heap files and the tuple-at-a-time executor work
    unchanged, and adds the columnar surface (``column_address``,
    ``column_values``) the vectorized executor batches over.  Records are
    fixed-size, so the slot directory degenerates to a live-bitmap.
    """

    columnar = True

    __slots__ = ("page_number", "page_size", "base_address", "layout",
                 "capacity", "_buffer", "_live", "_minipage_offsets",
                 "_padding_offset", "dirty")

    def __init__(self, page_number: int, base_address: int, layout,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        record_size = layout.record_size
        capacity = (page_size - PAGE_HEADER_BYTES) // record_size
        if capacity <= 0:
            raise PageError(
                f"page_size {page_size} cannot hold a {record_size}-byte PAX record")
        self.page_number = page_number
        self.page_size = page_size
        self.base_address = base_address
        self.layout = layout
        self.capacity = capacity
        self._buffer = bytearray(page_size)
        self._live: List[bool] = []
        offsets = []
        cursor = PAGE_HEADER_BYTES
        for column in layout.schema:
            offsets.append(cursor)
            cursor += column.byte_width * capacity
        self._minipage_offsets = tuple(offsets)
        self._padding_offset = cursor  # minipage for the anonymous filler
        self.dirty = False

    # ------------------------------------------------------------ capacity
    @property
    def slot_count(self) -> int:
        """Number of slots ever used, including tombstones."""
        return len(self._live)

    @property
    def live_records(self) -> int:
        return sum(self._live)

    def free_space(self) -> int:
        return (self.capacity - len(self._live)) * self.layout.record_size

    def has_room_for(self, record_size: int) -> bool:
        if record_size != self.layout.record_size:
            raise PageError(
                f"PAX page stores fixed {self.layout.record_size}-byte records, "
                f"got {record_size}")
        return len(self._live) < self.capacity

    # ------------------------------------------------------------- mutation
    def insert(self, record_bytes: bytes) -> int:
        """Scatter one NSM-encoded record across the minipages; returns the slot."""
        if not self.has_room_for(len(record_bytes)):
            raise PageError(f"PAX page {self.page_number} is full "
                            f"({self.capacity} records)")
        slot = len(self._live)
        self._scatter(slot, record_bytes)
        self._live.append(True)
        self.dirty = True
        return slot

    def delete(self, slot: int) -> None:
        """Tombstone a slot (the minipage entries are not compacted)."""
        self._check_slot(slot)
        self._live[slot] = False
        self.dirty = True

    def update_in_place(self, slot: int, record_bytes: bytes) -> None:
        self._check_slot(slot)
        if len(record_bytes) != self.layout.record_size:
            raise PageError(
                f"in-place update requires identical size "
                f"(old {self.layout.record_size}, new {len(record_bytes)})")
        self._scatter(slot, record_bytes)
        self.dirty = True

    def _scatter(self, slot: int, record_bytes: bytes) -> None:
        buffer = self._buffer
        for offset, field_offset, width in self._column_geometry():
            position = offset + slot * width
            buffer[position:position + width] = \
                record_bytes[field_offset:field_offset + width]

    def _column_geometry(self):
        """``(minipage_offset, record_offset, width)`` per column (+ padding)."""
        layout = self.layout
        for index, column in enumerate(layout.schema):
            yield self._minipage_offsets[index], layout.offsets[index], column.byte_width
        padding = layout.padding_bytes
        if padding:
            yield self._padding_offset, layout.packed_size, padding

    # --------------------------------------------------------------- access
    def record_bytes(self, slot: int) -> bytes:
        """Reassemble the NSM byte image of the record in ``slot``."""
        self._check_slot(slot)
        out = bytearray(self.layout.record_size)
        buffer = self._buffer
        for offset, field_offset, width in self._column_geometry():
            position = offset + slot * width
            out[field_offset:field_offset + width] = buffer[position:position + width]
        return bytes(out)

    def record_view(self, slot: int) -> memoryview:
        """Row view of a record (materialised: PAX rows are not contiguous)."""
        return memoryview(self.record_bytes(slot))

    def slot_address(self, slot: int) -> int:
        """Virtual address of the record's first column value."""
        self._check_slot(slot)
        first = self.layout.schema.columns[0]
        return self.base_address + self._minipage_offsets[0] + slot * first.byte_width

    def field_address(self, slot: int, field_offset: int) -> int:
        """Virtual address of record-relative byte ``field_offset``.

        The NSM record offset is translated to the owning minipage: byte
        ``field_offset`` of record ``slot`` lives in the minipage of the
        column whose ``[offset, offset + width)`` range contains it.
        """
        layout = self.layout
        for index, column in enumerate(layout.schema):
            start = layout.offsets[index]
            width = column.byte_width
            if start <= field_offset < start + width:
                return (self.base_address + self._minipage_offsets[index]
                        + slot * width + (field_offset - start))
        if layout.packed_size <= field_offset < layout.record_size:
            padding = layout.padding_bytes
            return (self.base_address + self._padding_offset
                    + slot * padding + (field_offset - layout.packed_size))
        raise PageError(f"field offset {field_offset} outside the "
                        f"{layout.record_size}-byte record")

    # ------------------------------------------------------------- columnar
    def column_address(self, column_name: str) -> int:
        """Virtual address of the first value in a column's minipage."""
        index = self.layout.schema.index_of(column_name)
        return self.base_address + self._minipage_offsets[index]

    def column_span(self, column_name: str, slots: Sequence[int]) -> Tuple[int, int]:
        """``(address, bytes)`` of the minipage range covering ``slots``."""
        if not slots:
            return self.column_address(column_name), 0
        index = self.layout.schema.index_of(column_name)
        width = self.layout.schema.columns[index].byte_width
        first, last = min(slots), max(slots)
        address = (self.base_address + self._minipage_offsets[index]
                   + first * width)
        return address, (last - first + 1) * width

    def column_values(self, column_name: str, slots: Sequence[int]) -> List:
        """Decode a column's values for the given slots from its minipage."""
        layout = self.layout
        index = layout.schema.index_of(column_name)
        column = layout.schema.columns[index]
        base = self._minipage_offsets[index]
        width = column.byte_width
        buffer = self._buffer
        from .schema import ColumnType  # local import: schema also feeds layouts
        if column.type is ColumnType.CHAR:
            out = []
            for slot in slots:
                raw = bytes(buffer[base + slot * width:base + (slot + 1) * width])
                out.append(raw.rstrip(b"\x00").decode(errors="replace"))
            return out
        count = len(slots)
        if count > 1 and slots[count - 1] - slots[0] == count - 1:
            # Ascending consecutive slots (the common full-run case) are
            # contiguous in the minipage: decode them with one bulk unpack.
            return list(struct.unpack_from(
                f"<{count}{column.type.struct_code}", buffer,
                base + slots[0] * width))
        code = "<" + column.type.struct_code
        return [struct.unpack_from(code, buffer, base + slot * width)[0]
                for slot in slots]

    def live_slots(self) -> Iterator[int]:
        for slot, live in enumerate(self._live):
            if live:
                yield slot

    def is_live(self, slot: int) -> bool:
        return 0 <= slot < len(self._live) and self._live[slot]

    # ------------------------------------------------------------ internals
    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < len(self._live):
            raise PageError(f"page {self.page_number}: invalid slot {slot}")
        if not self._live[slot]:
            raise PageError(f"page {self.page_number}: slot {slot} is deleted")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"PaxPage(#{self.page_number}, {self.live_records}/{self.capacity} "
                f"records, {len(self.layout.schema)} minipages)")
