"""Relational schemas and physical record layouts.

The paper's microbenchmark relation is::

    create table R (a1 integer not null,
                    a2 integer not null,
                    a3 integer not null,
                    <rest of fields>)

where ``<rest of fields>`` is integer padding bringing the record to 100
bytes (and to other sizes for the record-size sweep of Section 5.2).  This
module describes such schemas and computes the fixed physical layout (field
offsets, record size) used by the slotted pages, so the executor knows which
cache lines a field access touches.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class ColumnType(Enum):
    """Supported column types and their physical widths."""

    INT32 = ("i", 4)
    INT64 = ("q", 8)
    FLOAT64 = ("d", 8)
    CHAR = ("s", None)  # fixed-width string; width supplied per column

    def __init__(self, struct_code: str, width: Optional[int]) -> None:
        self.struct_code = struct_code
        self.fixed_width = width


class SchemaError(ValueError):
    """Raised on malformed schema definitions or layout mismatches."""


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: ColumnType = ColumnType.INT32
    width: Optional[int] = None
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.type is ColumnType.CHAR:
            if not self.width or self.width <= 0:
                raise SchemaError(f"CHAR column {self.name!r} needs a positive width")
        elif self.width is not None and self.width != self.type.fixed_width:
            raise SchemaError(
                f"column {self.name!r}: width {self.width} does not match type {self.type.name}")

    @property
    def byte_width(self) -> int:
        if self.type is ColumnType.CHAR:
            assert self.width is not None
            return self.width
        assert self.type.fixed_width is not None
        return self.type.fixed_width


@dataclass(frozen=True)
class Schema:
    """An ordered collection of columns."""

    columns: Tuple[Column, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, *columns: Column, name: str = "") -> "Schema":
        return cls(columns=tuple(columns), name=name)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column named {name!r} in schema {self.name!r}")

    @cached_property
    def _index(self) -> Dict[str, int]:
        return {col.name: i for i, col in enumerate(self.columns)}

    def index_of(self, name: str) -> int:
        index = self._index.get(name)
        if index is None:
            raise SchemaError(f"no column named {name!r} in schema {self.name!r}")
        return index

    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)


@dataclass(frozen=True)
class RecordLayout:
    """Physical layout of a fixed-size record for a schema.

    ``record_size`` may be larger than the packed width of the declared
    columns; the remainder is anonymous filler, which is exactly how the
    paper's ``<rest of fields>`` padding works.  Field offsets are packed in
    declaration order with no alignment gaps (integers are 4-byte aligned by
    construction because every type width here is a multiple of 4).
    """

    schema: Schema
    record_size: int
    offsets: Tuple[int, ...]

    @classmethod
    def build(cls, schema: Schema, record_size: Optional[int] = None) -> "RecordLayout":
        offsets: List[int] = []
        cursor = 0
        for column in schema:
            offsets.append(cursor)
            cursor += column.byte_width
        packed = cursor
        size = record_size if record_size is not None else packed
        if size < packed:
            raise SchemaError(
                f"record_size {size} is smaller than the packed column width {packed}")
        return cls(schema=schema, record_size=size, offsets=tuple(offsets))

    @property
    def packed_size(self) -> int:
        last = self.schema.columns[-1]
        return self.offsets[-1] + last.byte_width

    @property
    def padding_bytes(self) -> int:
        return self.record_size - self.packed_size

    def offset_of(self, column_name: str) -> int:
        return self.offsets[self.schema.index_of(column_name)]

    def field_slice(self, column_name: str) -> Tuple[int, int]:
        """``(offset, width)`` of a column within the record."""
        idx = self.schema.index_of(column_name)
        return self.offsets[idx], self.schema.columns[idx].byte_width

    @cached_property
    def column_codecs(self) -> Dict[str, Tuple[int, Optional[str], int]]:
        """``name -> (offset, struct format or None for CHAR, width)``.

        The batch read paths decode millions of fields; resolving the
        column's offset and format string once per layout instead of once
        per value keeps the decode loop down to a single ``unpack_from``.
        """
        codecs: Dict[str, Tuple[int, Optional[str], int]] = {}
        for idx, column in enumerate(self.schema.columns):
            code = (None if column.type is ColumnType.CHAR
                    else "<" + column.type.struct_code)
            codecs[column.name] = (self.offsets[idx], code, column.byte_width)
        return codecs

    # ------------------------------------------------------------ encoding
    def _struct_format(self) -> str:
        parts = ["<"]
        for column in self.schema:
            if column.type is ColumnType.CHAR:
                parts.append(f"{column.byte_width}s")
            else:
                parts.append(column.type.struct_code)
        return "".join(parts)

    def encode(self, values: Sequence) -> bytes:
        """Serialise ``values`` (one per column) into ``record_size`` bytes."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"expected {len(self.schema)} values, got {len(values)}")
        prepared = []
        for column, value in zip(self.schema, values):
            if column.type is ColumnType.CHAR:
                raw = value.encode() if isinstance(value, str) else bytes(value)
                prepared.append(raw[:column.byte_width].ljust(column.byte_width, b"\x00"))
            else:
                prepared.append(value)
        packed = struct.pack(self._struct_format(), *prepared)
        return packed.ljust(self.record_size, b"\x00")

    def decode(self, data: bytes) -> Tuple:
        """Deserialise a record previously produced by :meth:`encode`."""
        if len(data) < self.packed_size:
            raise SchemaError(
                f"record buffer of {len(data)} bytes is shorter than packed size {self.packed_size}")
        values = struct.unpack_from(self._struct_format(), data)
        out = []
        for column, value in zip(self.schema, values):
            if column.type is ColumnType.CHAR:
                out.append(value.rstrip(b"\x00").decode(errors="replace"))
            else:
                out.append(value)
        return tuple(out)

    def decode_column(self, data: bytes, column_name: str):
        """Decode a single column without materialising the whole record."""
        codec = self.column_codecs.get(column_name)
        if codec is None:
            self.schema.index_of(column_name)  # raises SchemaError
        offset, code, width = codec
        if code is None:
            raw = data[offset:offset + width]
            return raw.rstrip(b"\x00").decode(errors="replace")
        return struct.unpack_from(code, data, offset)[0]


def microbenchmark_schema(record_size: int = 100, name: str = "R") -> Tuple[Schema, RecordLayout]:
    """The paper's relation R/S schema at a given record size.

    Three declared integer attributes ``a1, a2, a3`` followed by anonymous
    integer filler up to ``record_size`` bytes (the paper varies this between
    20 and 200 bytes; the default is the 100 bytes used for most results).
    """
    if record_size < 12:
        raise SchemaError("record_size must be at least 12 bytes (three integers)")
    schema = Schema.of(
        Column("a1", ColumnType.INT32),
        Column("a2", ColumnType.INT32),
        Column("a3", ColumnType.INT32),
        name=name,
    )
    layout = RecordLayout.build(schema, record_size=record_size)
    return schema, layout
