"""Simulated virtual address space.

The cache and TLB models operate on addresses.  Because the DBMS under study
is simulated rather than compiled to x86, its objects do not naturally have
addresses; this module provides them.  The address space is divided into
named, non-overlapping regions so that the different kinds of memory the paper
reasons about stay distinguishable in the traces:

``code``
    Instruction addresses.  Each system profile lays out the executor's code
    paths here (:mod:`repro.execution.code_layout`); the footprint and layout
    of this region is what determines the L1 I-cache behaviour.
``heap``
    Buffer-pool frames holding relation pages.  Sequential scans sweep this
    region; its size relative to the 512 KB L2 determines the L2 data-miss
    behaviour (Section 5.2.1).
``index``
    B+-tree nodes.  Index range selections hop around this region and then
    into ``heap``, which is why their memory-stall share is larger than the
    sequential scan's despite touching fewer records.
``workspace``
    Private working structures: hash tables, aggregation state, per-record
    scratch.  The paper attributes the low L1 D-cache miss rate to the hot
    part of this region fitting in the 16 KB L1D.
``catalog``
    Schema and metadata objects (touched rarely).
``disk``
    Simulated backing store for evicted buffer-pool pages.  Addresses in
    this region are never touched by the cache simulation directly; the
    buffer pool charges page transfers in and out of it through the
    :class:`~repro.execution.context.ExecutionContext` I/O cost model, so a
    memory-constrained run pays for its faults instead of crashing on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Default region bases, spaced exactly one region size apart so the regions
#: tile the address space without overlapping.
DEFAULT_REGION_BASES: Dict[str, int] = {
    "code": 0x1000_0000,
    "heap": 0x2000_0000,
    "index": 0x3000_0000,
    "workspace": 0x4000_0000,
    "catalog": 0x5000_0000,
    "disk": 0x6000_0000,
}

DEFAULT_REGION_SIZE = 0x1000_0000  # 256 MB per region: the paper-scale R (120 MB) fits.


class AddressSpaceError(RuntimeError):
    """Raised on invalid allocations (unknown region, region exhausted)."""


@dataclass
class Region:
    """One named, contiguous region of the simulated address space."""

    name: str
    base: int
    size: int
    cursor: int = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def allocated_bytes(self) -> int:
        return self.cursor

    def allocate(self, size: int, alignment: int = 8) -> int:
        """Bump-allocate ``size`` bytes aligned to ``alignment``."""
        if size < 0:
            raise AddressSpaceError(f"negative allocation of {size} bytes in {self.name!r}")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise AddressSpaceError(f"alignment must be a power of two, got {alignment}")
        aligned_cursor = (self.cursor + alignment - 1) & ~(alignment - 1)
        if aligned_cursor + size > self.size:
            raise AddressSpaceError(
                f"region {self.name!r} exhausted: need {size} bytes at offset "
                f"{aligned_cursor}, capacity {self.size}")
        self.cursor = aligned_cursor + size
        return self.base + aligned_cursor

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """Named-region bump allocator for simulated virtual addresses."""

    def __init__(self,
                 region_bases: Optional[Dict[str, int]] = None,
                 region_size: int = DEFAULT_REGION_SIZE) -> None:
        bases = dict(region_bases or DEFAULT_REGION_BASES)
        self._regions: Dict[str, Region] = {
            name: Region(name=name, base=base, size=region_size)
            for name, base in bases.items()
        }

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise AddressSpaceError(f"unknown address-space region {name!r}") from None

    def regions(self) -> Dict[str, Region]:
        return dict(self._regions)

    def allocate(self, region: str, size: int, alignment: int = 8) -> int:
        """Allocate ``size`` bytes in ``region`` and return the base address."""
        return self.region(region).allocate(size, alignment)

    def checkpoint(self) -> Dict[str, int]:
        """Snapshot every region's allocation cursor.

        Together with :meth:`restore` this lets one warmed database be
        reused across measurement sessions: each session's transient
        allocations (workspace areas, code layouts) are rolled back before
        the next session allocates, so every session sees the exact same
        addresses -- and therefore the exact same cache-set geometry and
        simulated counts -- as a session against a freshly built database.
        """
        return {name: region.cursor for name, region in self._regions.items()}

    def ensure_region(self, name: str, size: Optional[int] = None) -> Region:
        """Return the region called ``name``, creating it on first use.

        Dynamic regions give concurrent logical sessions private namespaces
        (e.g. a per-session backing store for spill files) without touching
        the fixed region map.  A new region is placed immediately after the
        highest existing region, with its base aligned to the region size:
        region-size alignment means every within-region offset produces the
        same cache-set and TLB-set indices as the same offset in any other
        region, which is what keeps a session's simulated counts independent
        of *which* namespace it was handed.  Creation order is the caller's
        responsibility to keep deterministic; :meth:`restore` ignores regions
        absent from its snapshot, so checkpoints taken before a dynamic
        region existed restore cleanly.
        """
        region = self._regions.get(name)
        if region is not None:
            return region
        if size is None:
            size = max(r.size for r in self._regions.values())
        highest = max(r.end for r in self._regions.values())
        base = -(-highest // size) * size
        region = Region(name=name, base=base, size=size)
        self._regions[name] = region
        return region

    def restore(self, cursors: Dict[str, int]) -> None:
        """Roll allocation cursors back to a :meth:`checkpoint` snapshot."""
        for name, cursor in cursors.items():
            region = self.region(name)
            if cursor > region.cursor:
                raise AddressSpaceError(
                    f"cannot restore region {name!r} forward "
                    f"(checkpoint {cursor} > cursor {region.cursor})")
            region.cursor = cursor

    def region_of(self, addr: int) -> Optional[str]:
        """Name of the region containing ``addr`` (``None`` if outside all)."""
        for name, region in self._regions.items():
            if region.contains(addr):
                return name
        return None

    def allocated_bytes(self, region: str) -> int:
        return self.region(region).allocated_bytes
