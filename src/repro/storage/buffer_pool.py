"""Buffer pool with a simulated backing store.

The paper configures every DBMS with a buffer pool "large enough to fit the
datasets for all the queries" and verifies that no significant I/O happens
during measurement: the study is explicitly about processor and memory
behaviour, not the I/O subsystem.  The default pool (``capacity_pages=None``)
reflects that setup -- every page stays resident and the fault counter stays
zero after load, which the tests assert.

A capacity-limited pool, however, is now a real memory budget rather than a
data-loss trap:

* evicted frames are written to a simulated backing store (the ``disk``
  region of the :class:`~repro.storage.address_space.AddressSpace`); dirty
  victims charge a page write through the optional ``io`` cost model before
  they leave the pool;
* :meth:`fetch_page` transparently reloads a faulted page from the backing
  store as a charged page read -- the strict :class:`BufferPoolError` is
  reserved for page numbers that were never allocated;
* each frame receives a stable, page-aligned simulated virtual address from
  the ``heap`` (or ``index``, or ``workspace``) region, which is what ties
  the logical DBMS objects to the cache simulation; backing-store copies get
  a stable ``disk`` address so page transfers have somewhere to be charged;
* pin counts and hit/miss/eviction/transfer statistics are maintained so
  tests and benchmarks can reason about residency (a memory-resident run has
  zero faults; a memory-constrained hybrid hash join shows its spill traffic
  in ``page_reads``/``page_writes``).

The ``io`` collaborator only needs two methods, ``page_io_out(address,
nbytes)`` and ``page_io_in(address, nbytes)`` -- the
:class:`~repro.execution.context.ExecutionContext` implements them by
charging the simulated processor for the transferred lines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from .address_space import AddressSpace
from .page import DEFAULT_PAGE_SIZE, SlottedPage

#: Region that backs evicted pages.  Pages are only assigned an address here
#: lazily, on first eviction, so memory-resident pools never touch it.
BACKING_REGION = "disk"


class BufferPoolError(RuntimeError):
    """Raised on buffer-pool misuse (unknown page, over-capacity, pin leaks)."""


@dataclass
class BufferPoolStats:
    """Fetch statistics (hits vs. faults), evictions and page transfers."""

    fetches: int = 0
    hits: int = 0
    faults: int = 0
    evictions: int = 0
    page_reads: int = 0
    page_writes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.fetches if self.fetches else 0.0

    def as_dict(self) -> dict:
        return {"fetches": self.fetches, "hits": self.hits, "faults": self.faults,
                "evictions": self.evictions, "page_reads": self.page_reads,
                "page_writes": self.page_writes, "hit_rate": self.hit_rate}


class BufferPool:
    """Page allocator and LRU cache of :class:`SlottedPage` frames."""

    def __init__(self,
                 address_space: AddressSpace,
                 region: str = "heap",
                 page_size: int = DEFAULT_PAGE_SIZE,
                 capacity_pages: Optional[int] = None,
                 io=None,
                 backing_region: str = BACKING_REGION) -> None:
        self.address_space = address_space
        self.region = region
        #: Region evicted pages are addressed in.  The default shared
        #: ``disk`` region is right for the single-session case; concurrent
        #: logical sessions pass a private namespace (created with
        #: :meth:`~repro.storage.address_space.AddressSpace.ensure_region`)
        #: so two memory-budgeted joins spilling at the same time cannot
        #: collide on backing-store pages.
        self.backing_region = backing_region
        self.page_size = page_size
        self.capacity_pages = capacity_pages
        self.io = io
        self._frames: "OrderedDict[int, SlottedPage]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        #: Evicted pages, keyed by page number (the simulated disk contents).
        self._store: Dict[int, SlottedPage] = {}
        #: Stable ``disk``-region address per spilled page number.
        self._disk_addresses: Dict[int, int] = {}
        self._next_page_number = 0
        self.stats = BufferPoolStats()

    # ------------------------------------------------------------ allocation
    def allocate_page(self,
                      page_factory: Optional[Callable[[int, int], SlottedPage]] = None,
                      pin: bool = False) -> SlottedPage:
        """Create a brand-new page with a stable virtual address.

        ``page_factory(page_number, base_address)`` lets the caller choose
        the page organisation (a heap file configured for the PAX layout
        allocates :class:`~repro.storage.page.PaxPage` frames); the default
        is the classic slotted NSM page.  With ``pin=True`` the new page is
        returned already pinned, so a tight ``capacity_pages`` cannot evict
        it before the caller gets to use it.
        """
        page_number = self._next_page_number
        self._next_page_number += 1
        base_address = self.address_space.allocate(self.region, self.page_size,
                                                   alignment=self.page_size)
        if page_factory is None:
            page = SlottedPage(page_number, base_address, self.page_size)
        else:
            page = page_factory(page_number, base_address)
        self._admit(page)
        if pin:
            self.pin(page_number)
        return page

    def _admit(self, page: SlottedPage) -> None:
        """Insert ``page`` as the most-recently-used frame.

        The page is inserted *before* any eviction runs and is exempt from
        it, so a freshly allocated or freshly reloaded page can never be the
        victim that makes room for itself.
        """
        self._frames[page.page_number] = page
        self._frames.move_to_end(page.page_number)
        if self.capacity_pages is not None:
            try:
                while len(self._frames) > self.capacity_pages:
                    self._evict_one(exempt=page.page_number)
            except BufferPoolError:
                # Roll the admission back so a failed allocate/reload does
                # not leave the pool over capacity.
                self._frames.pop(page.page_number, None)
                raise

    def _evict_one(self, exempt: Optional[int] = None) -> None:
        """Evict the least-recently-used unpinned frame to the backing store."""
        for page_number in self._frames:
            if page_number == exempt:
                continue
            if self._pins.get(page_number, 0) == 0:
                victim = self._frames.pop(page_number)
                if victim.dirty:
                    if self.io is not None:
                        self.io.page_io_out(self._disk_address(page_number),
                                            self.page_size)
                    self.stats.page_writes += 1
                    victim.dirty = False
                self._store[page_number] = victim
                self.stats.evictions += 1
                return
        raise BufferPoolError("buffer pool is full and every page is pinned")

    def _disk_address(self, page_number: int) -> int:
        """Stable backing-store address for ``page_number`` (lazily assigned)."""
        address = self._disk_addresses.get(page_number)
        if address is None:
            address = self.address_space.allocate(self.backing_region, self.page_size,
                                                  alignment=self.page_size)
            self._disk_addresses[page_number] = address
        return address

    # ---------------------------------------------------------------- fetch
    def fetch_page(self, page_number: int, pin: bool = False) -> SlottedPage:
        """Return the frame for ``page_number``, reloading it on a fault.

        A resident page is a hit.  An evicted page is a fault: it is read
        back from the backing store as a charged page transfer (possibly
        evicting another frame to make room).  Only a page number that was
        never allocated raises :class:`BufferPoolError`.
        """
        self.stats.fetches += 1
        page = self._frames.get(page_number)
        if page is None:
            self.stats.faults += 1
            stored = self._store.pop(page_number, None)
            if stored is None:
                raise BufferPoolError(
                    f"page {page_number} was never allocated in this pool")
            if self.io is not None:
                self.io.page_io_in(self._disk_address(page_number), self.page_size)
            self.stats.page_reads += 1
            self._admit(stored)
            page = stored
        else:
            self.stats.hits += 1
            self._frames.move_to_end(page_number)
        if pin:
            self.pin(page_number)
        return page

    def page_exists(self, page_number: int) -> bool:
        """Whether ``page_number`` is retrievable (resident or spilled)."""
        return page_number in self._frames or page_number in self._store

    def peek_page(self, page_number: int) -> SlottedPage:
        """Uncharged, bookkeeping-free access to a page frame.

        Unlike :meth:`fetch_page` this touches neither the fetch statistics
        nor the LRU order and never performs (or charges) a reload -- the
        page is returned wherever it currently lives, resident or spilled.
        It exists for *measurement infrastructure* (data checkpoints of a
        warmed build) that must observe page contents without perturbing
        the simulated machine or the pool state.
        """
        page = self._frames.get(page_number)
        if page is None:
            page = self._store.get(page_number)
        if page is None:
            raise BufferPoolError(
                f"page {page_number} was never allocated in this pool")
        return page

    def is_resident(self, page_number: int) -> bool:
        return page_number in self._frames

    # ----------------------------------------------------------------- pins
    def pin(self, page_number: int) -> None:
        if page_number not in self._frames:
            raise BufferPoolError(f"cannot pin non-resident page {page_number}")
        self._pins[page_number] = self._pins.get(page_number, 0) + 1

    def unpin(self, page_number: int) -> None:
        count = self._pins.get(page_number, 0)
        if count <= 0:
            raise BufferPoolError(f"unpin of page {page_number} without matching pin")
        if count == 1:
            del self._pins[page_number]
        else:
            self._pins[page_number] = count - 1

    def pin_count(self, page_number: int) -> int:
        return self._pins.get(page_number, 0)

    # ------------------------------------------------------------ iteration
    def __len__(self) -> int:
        return len(self._frames)

    def pages(self) -> Iterator[SlottedPage]:
        """Iterate over resident pages in page-number order."""
        for page_number in sorted(self._frames):
            yield self._frames[page_number]

    def resident_bytes(self) -> int:
        return len(self._frames) * self.page_size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"BufferPool(region={self.region!r}, pages={len(self._frames)}, "
                f"page_size={self.page_size})")
