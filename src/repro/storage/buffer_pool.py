"""Memory-resident buffer pool.

The paper configures every DBMS with a buffer pool "large enough to fit the
datasets for all the queries" and verifies that no significant I/O happens
during measurement: the study is explicitly about processor and memory
behaviour, not the I/O subsystem.  The buffer pool here reflects that setup:

* every page lives in memory for the lifetime of the pool (no eviction path
  is exercised by the experiments, although an LRU eviction policy and a
  capacity limit are implemented so that the component is a complete
  substrate and can be stress-tested);
* each frame receives a stable, page-aligned simulated virtual address from
  the ``heap`` (or ``index``) region of the :class:`~repro.storage.
  address_space.AddressSpace`, which is what ties the logical DBMS objects to
  the cache simulation;
* pin counts and hit/miss statistics are maintained so tests can assert that
  the workloads are indeed memory resident (miss count stays zero after
  load).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from .address_space import AddressSpace
from .page import DEFAULT_PAGE_SIZE, PageError, SlottedPage


class BufferPoolError(RuntimeError):
    """Raised on buffer-pool misuse (unknown page, over-capacity, pin leaks)."""


@dataclass
class BufferPoolStats:
    """Fetch statistics (hits vs. faults) and occupancy."""

    fetches: int = 0
    hits: int = 0
    faults: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.fetches if self.fetches else 0.0

    def as_dict(self) -> dict:
        return {"fetches": self.fetches, "hits": self.hits, "faults": self.faults,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


class BufferPool:
    """Page allocator and cache of :class:`SlottedPage` frames."""

    def __init__(self,
                 address_space: AddressSpace,
                 region: str = "heap",
                 page_size: int = DEFAULT_PAGE_SIZE,
                 capacity_pages: Optional[int] = None) -> None:
        self.address_space = address_space
        self.region = region
        self.page_size = page_size
        self.capacity_pages = capacity_pages
        self._frames: "OrderedDict[int, SlottedPage]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._next_page_number = 0
        self.stats = BufferPoolStats()

    # ------------------------------------------------------------ allocation
    def allocate_page(self,
                      page_factory: Optional[Callable[[int, int], SlottedPage]] = None
                      ) -> SlottedPage:
        """Create a brand-new page with a stable virtual address.

        ``page_factory(page_number, base_address)`` lets the caller choose
        the page organisation (a heap file configured for the PAX layout
        allocates :class:`~repro.storage.page.PaxPage` frames); the default
        is the classic slotted NSM page.
        """
        page_number = self._next_page_number
        self._next_page_number += 1
        base_address = self.address_space.allocate(self.region, self.page_size,
                                                   alignment=self.page_size)
        if page_factory is None:
            page = SlottedPage(page_number, base_address, self.page_size)
        else:
            page = page_factory(page_number, base_address)
        self._admit(page)
        return page

    def _admit(self, page: SlottedPage) -> None:
        if self.capacity_pages is not None and len(self._frames) >= self.capacity_pages:
            self._evict_one()
        self._frames[page.page_number] = page
        self._frames.move_to_end(page.page_number)

    def _evict_one(self) -> None:
        for page_number in self._frames:
            if self._pins.get(page_number, 0) == 0:
                victim = self._frames.pop(page_number)
                if victim.dirty:
                    # A real system would write the page out here; the
                    # memory-resident experiments never reach this path.
                    victim.dirty = False
                self.stats.evictions += 1
                return
        raise BufferPoolError("buffer pool is full and every page is pinned")

    # ---------------------------------------------------------------- fetch
    def fetch_page(self, page_number: int, pin: bool = False) -> SlottedPage:
        """Return the frame for ``page_number`` (always a hit once loaded)."""
        self.stats.fetches += 1
        page = self._frames.get(page_number)
        if page is None:
            self.stats.faults += 1
            raise BufferPoolError(
                f"page {page_number} is not resident; the experiments assume a "
                f"memory-resident database (no I/O path)")
        self.stats.hits += 1
        self._frames.move_to_end(page_number)
        if pin:
            self.pin(page_number)
        return page

    def page_exists(self, page_number: int) -> bool:
        return page_number in self._frames

    # ----------------------------------------------------------------- pins
    def pin(self, page_number: int) -> None:
        if page_number not in self._frames:
            raise BufferPoolError(f"cannot pin non-resident page {page_number}")
        self._pins[page_number] = self._pins.get(page_number, 0) + 1

    def unpin(self, page_number: int) -> None:
        count = self._pins.get(page_number, 0)
        if count <= 0:
            raise BufferPoolError(f"unpin of page {page_number} without matching pin")
        if count == 1:
            del self._pins[page_number]
        else:
            self._pins[page_number] = count - 1

    def pin_count(self, page_number: int) -> int:
        return self._pins.get(page_number, 0)

    # ------------------------------------------------------------ iteration
    def __len__(self) -> int:
        return len(self._frames)

    def pages(self) -> Iterator[SlottedPage]:
        """Iterate over resident pages in page-number order."""
        for page_number in sorted(self._frames):
            yield self._frames[page_number]

    def resident_bytes(self) -> int:
        return len(self._frames) * self.page_size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"BufferPool(region={self.region!r}, pages={len(self._frames)}, "
                f"page_size={self.page_size})")
