"""repro: a reproduction of "DBMSs on a Modern Processor: Where Does Time Go?".

The package rebuilds, in pure Python, the full measurement stack of Ailamaki,
DeWitt, Hill and Wood's VLDB 1999 study: a trace-driven model of the Pentium
II Xeon platform (caches, TLBs, branch prediction, event counters), an
in-memory relational engine parameterised by profiles of the four anonymous
commercial DBMSs, the microbenchmark / TPC-D-style / TPC-C-style workloads,
the emon measurement methodology, and the execution-time breakdown framework
that is the paper's primary contribution.

Typical usage::

    from repro import MicroWorkload, Session, SYSTEM_B

    workload = MicroWorkload()
    database = workload.build()
    workload.create_selection_index(database)
    session = Session(database, SYSTEM_B)
    result = session.execute(workload.sequential_range_selection(0.10))
    print(result.breakdown.shares())
"""

from .analysis import ExecutionBreakdown, QueryMetrics, compute_metrics
from .engine import Database, QueryResult, Session
from .experiments import ExperimentConfig, ExperimentRunner, all_figures
from .hardware import PENTIUM_II_XEON, ProcessorSpec, SimulatedProcessor
from .systems import (ALL_SYSTEMS, SYSTEM_A, SYSTEM_B, SYSTEM_C, SYSTEM_D,
                      SystemProfile, system_by_key)
from .workloads import (MicroWorkload, MicroWorkloadConfig, TPCCConfig, TPCCWorkload,
                        TPCDConfig, TPCDWorkload)

__version__ = "1.0.0"

__all__ = [
    "ExecutionBreakdown", "QueryMetrics", "compute_metrics",
    "Database", "QueryResult", "Session",
    "ExperimentConfig", "ExperimentRunner", "all_figures",
    "PENTIUM_II_XEON", "ProcessorSpec", "SimulatedProcessor",
    "ALL_SYSTEMS", "SYSTEM_A", "SYSTEM_B", "SYSTEM_C", "SYSTEM_D", "SystemProfile",
    "system_by_key",
    "MicroWorkload", "MicroWorkloadConfig", "TPCCConfig", "TPCCWorkload",
    "TPCDConfig", "TPCDWorkload",
    "__version__",
]
