"""Concurrent query serving: queued admission over one shared build.

See :mod:`repro.serving.server` for the serving model and
:mod:`repro.serving.cache` for plan/result cache keying and invalidation.
"""

from .cache import (CachedResult, PlanCache, ResultCache, normalize_query,
                    query_tables)
from .server import QueryOutcome, Server, ServerStats, ServingFuture

__all__ = ["Server", "ServingFuture", "QueryOutcome", "ServerStats",
           "PlanCache", "ResultCache", "CachedResult", "normalize_query",
           "query_tables"]
