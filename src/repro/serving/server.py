"""A queued admission front-end over one shared warmed database build.

:class:`Server` is the serving layer the ROADMAP's "heavy traffic" north
star calls for: many logical sessions against **one** warmed database build,
admitted in rounds of at most ``max_concurrency`` queries.  Every admitted
query gets what the measurement discipline requires — its own simulated
processor, its own :class:`~repro.execution.context.ExecutionContext`, and
an address space rolled back to the post-build checkpoint — so each query's
rows and simulated counts are exactly those of a solo session against a
fresh build.  On top of that baseline, three stacked performance layers
remove *host-side* work without touching the per-query simulated story:

1. a **plan cache** (:class:`~repro.serving.cache.PlanCache`): repeated
   query classes skip the planner (whose selectivity estimate samples the
   heap — real wall-clock cost, zero simulated cost);
2. a **result cache** (:class:`~repro.serving.cache.ResultCache`): a
   repeat of a query whose tables have not changed returns the cached rows
   with a small charged cache-probe cost instead of re-executing — the one
   layer that (by design, and documented in DESIGN.md) changes a query's
   simulated counts;
3. **shared scans**
   (:class:`~repro.execution.parallel.SharedScanCoordinator`): queries of
   one admission round whose plans contain the same sequential-scan leaf
   ride one recorded morsel stream; each query replays the stream's charge
   tapes into its own context, keeping counts identical to solo execution
   while the scan's data work runs once per round.

Concurrency here is *logical*: queries of a round are served back to back on
the host (the simulator is single-threaded by design), and the open-loop
driver (:mod:`repro.workloads.serving`) accounts for time with a virtual
clock advanced by measured service wall time — so throughput and latency
percentiles mean what they would in a real queued server.

With every layer disabled (``plan_cache=False, result_cache=False,
shared_scans=False``) the server is a thin loop over
``Session.execute(query, warmup_runs=0)`` and is bit-identical to running
each query in its own solo session — the differential tests assert this.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..analysis.breakdown import ExecutionBreakdown
from ..analysis.metrics import compute_metrics
from ..engine.database import Database
from ..engine.session import QueryResult, Session
from ..execution.parallel import SharedScanCoordinator
from ..hardware.counters import EventCounters
from ..hardware.os_interference import OSInterferenceConfig
from ..hardware.specs import PENTIUM_II_XEON, ProcessorSpec
from ..observability import TraceNode
from ..query.plans import (CHARGE_SPAN, DEFAULT_BATCH_SIZE,
                           KERNEL_BACKEND_AUTO, TRACING_MODES, TRACING_OFF,
                           LogicalQuery, UpdateQuery)
from ..systems.profile import SystemProfile
from .cache import PlanCache, ResultCache, normalize_query, query_tables

__all__ = ["Server", "ServingFuture", "QueryOutcome", "ServerStats"]

#: Bytes of the simulated result-cache directory entry a hit probes.
_PROBE_ENTRY_BYTES = 64
#: Bytes of the entry actually read on a hit (key hash + rows pointer).
_PROBE_READ_BYTES = 16


@dataclass
class QueryOutcome:
    """What the server did for one submitted query."""

    result: QueryResult
    plan_cached: bool = False
    result_cached: bool = False
    #: True when this query rode a scan recorded by an *earlier* query of
    #: its admission round (the recording query itself reports False).
    shared_scan: bool = False
    #: Host wall-clock seconds this query's service took.
    service_seconds: float = 0.0

    @property
    def rows(self) -> List[Dict[str, object]]:
        return self.result.rows

    @property
    def cycles(self) -> int:
        return self.result.counters.get("CPU_CLK_UNHALTED")


class ServingFuture:
    """Handle for a submitted query; resolves when its round is served."""

    __slots__ = ("_server", "index", "query", "label", "outcome")

    def __init__(self, server: "Server", index: int, query: LogicalQuery,
                 label: str) -> None:
        self._server = server
        self.index = index
        self.query = query
        self.label = label
        self.outcome: Optional[QueryOutcome] = None

    def done(self) -> bool:
        return self.outcome is not None

    def result(self) -> QueryOutcome:
        """The outcome, serving queued rounds until this query completes."""
        while self.outcome is None:
            served, _ = self._server.step()
            if not served:
                raise RuntimeError("future cannot resolve: server queue idle")
        return self.outcome


def _nearest_rank(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over a non-empty list (no interpolation)."""
    ordered = sorted(values)
    rank = max(int(-(-fraction * len(ordered) // 1)), 1)  # ceil, >= 1
    return ordered[rank - 1]


def _service_histogram(values: List[float]) -> Dict[str, int]:
    """Power-of-two bucket counts over service seconds (keys are upper
    bounds like ``"<2^-10s"``), deterministic and JSON-friendly."""
    histogram: Dict[str, int] = {}
    for value in values:
        exponent = -30
        while (2.0 ** exponent) < value and exponent < 10:
            exponent += 1
        key = f"<2^{exponent}s"
        histogram[key] = histogram.get(key, 0) + 1
    return dict(sorted(histogram.items(),
                       key=lambda item: int(item[0][3:-1])))


@dataclass
class ClassStats:
    """Per-query-class serving telemetry (SRS-10/SRS-50/IRS/SJ/ACS/...)."""

    completed: int = 0
    result_cache_hits: int = 0
    plan_cache_hits: int = 0
    shared_scan_rides: int = 0
    service_seconds: List[float] = field(default_factory=list)

    @property
    def cache_hit_ratio(self) -> float:
        """Result-cache hits over completions (misses = executions)."""
        return self.result_cache_hits / self.completed if self.completed else 0.0

    def as_dict(self) -> dict:
        out = {"completed": self.completed,
               "result_cache_hits": self.result_cache_hits,
               "result_cache_misses": self.completed - self.result_cache_hits,
               "cache_hit_ratio": round(self.cache_hit_ratio, 6),
               "plan_cache_hits": self.plan_cache_hits,
               "shared_scan_rides": self.shared_scan_rides}
        if self.service_seconds:
            out["service_p50"] = round(_nearest_rank(self.service_seconds, 0.50), 6)
            out["service_p95"] = round(_nearest_rank(self.service_seconds, 0.95), 6)
            out["service_p99"] = round(_nearest_rank(self.service_seconds, 0.99), 6)
            out["service_histogram"] = _service_histogram(self.service_seconds)
        return out


@dataclass
class RoundRecord:
    """One admission round's span: what was admitted and how long it took."""

    round_index: int
    queue_depth: int
    admitted: int
    service_seconds: float

    def as_dict(self) -> dict:
        return {"round": self.round_index, "queue_depth": self.queue_depth,
                "admitted": self.admitted,
                "service_seconds": round(self.service_seconds, 6)}


@dataclass
class ServerStats:
    """Cumulative serving statistics plus live telemetry.

    Beyond the run totals, the server records a queue-depth high-water
    mark and time series (sampled at each admission round), one
    :class:`RoundRecord` per round (the round's admission/service span),
    and per-class :class:`ClassStats` with service-time percentiles,
    histograms and cache hit/miss ratios -- the telemetry the ``serving/*``
    bench cells export.  All of it is host-side observation; no simulated
    count changes.
    """

    submitted: int = 0
    completed: int = 0
    rounds: int = 0
    plan_cache_hits: int = 0
    result_cache_hits: int = 0
    shared_scan_recordings: int = 0
    shared_scan_reuses: int = 0
    updates: int = 0
    epochs: Dict[str, int] = field(default_factory=dict)
    queue_depth_high_water: int = 0
    #: ``(round_index, queue_depth_before_admission)`` samples.
    queue_depth_series: List[Tuple[int, int]] = field(default_factory=list)
    round_log: List[RoundRecord] = field(default_factory=list)
    classes: Dict[str, ClassStats] = field(default_factory=dict)

    def class_stats(self, class_key: str) -> ClassStats:
        stats = self.classes.get(class_key)
        if stats is None:
            stats = self.classes[class_key] = ClassStats()
        return stats

    def as_dict(self) -> dict:
        return {"submitted": self.submitted, "completed": self.completed,
                "rounds": self.rounds,
                "plan_cache_hits": self.plan_cache_hits,
                "result_cache_hits": self.result_cache_hits,
                "shared_scan_recordings": self.shared_scan_recordings,
                "shared_scan_reuses": self.shared_scan_reuses,
                "updates": self.updates,
                "queue_depth_high_water": self.queue_depth_high_water,
                "queue_depth_series": [list(sample) for sample
                                       in self.queue_depth_series],
                "rounds_log": [record.as_dict() for record in self.round_log],
                "classes": {key: stats.as_dict() for key, stats
                            in sorted(self.classes.items())}}


class Server:
    """Queued query serving against one shared warmed database build.

    ``database``/``checkpoint`` are a warmed build and its post-build
    address-space checkpoint (e.g. from
    :meth:`~repro.experiments.runner.ExperimentRunner.grid_database`).  The
    server restores the checkpoint before serving each query, which is what
    makes every query's addresses — and therefore its simulated counts —
    identical to a solo session against a fresh build.

    ``max_concurrency`` bounds how many queued queries one admission round
    serves (and how many logical-session spill namespaces exist);
    ``plan_cache``/``result_cache``/``shared_scans`` toggle the three
    performance layers independently.  The remaining knobs configure the
    per-query measurement sessions exactly as :class:`Session` would.
    """

    def __init__(self, database: Database, checkpoint: Dict[str, int],
                 profile: SystemProfile,
                 spec: ProcessorSpec = PENTIUM_II_XEON, *,
                 max_concurrency: int = 8,
                 plan_cache: bool = True,
                 result_cache: bool = True,
                 shared_scans: bool = True,
                 engine: str = "vectorized",
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 charge_mode: str = CHARGE_SPAN,
                 memory_budget_bytes: Optional[int] = None,
                 kernel_backend: str = KERNEL_BACKEND_AUTO,
                 os_interference: Optional[OSInterferenceConfig] = None,
                 tracing: str = TRACING_OFF) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if tracing not in TRACING_MODES:
            raise ValueError(f"unknown tracing mode {tracing!r}; "
                             f"expected one of {TRACING_MODES}")
        self.database = database
        self.checkpoint = dict(checkpoint)
        self.profile = profile
        self.spec = spec
        self.max_concurrency = max_concurrency
        self.engine = engine
        self.batch_size = batch_size
        self.charge_mode = charge_mode
        self.memory_budget_bytes = memory_budget_bytes
        self.kernel_backend = kernel_backend
        self.os_interference = os_interference
        self.tracing = tracing
        self.plan_cache: Optional[PlanCache] = PlanCache() if plan_cache else None
        self.result_cache: Optional[ResultCache] = (ResultCache()
                                                    if result_cache else None)
        self.shared_scans = shared_scans
        self.stats = ServerStats()
        self._queue: Deque[ServingFuture] = deque()
        self._submitted = 0
        #: Memoized probe charge per cached-result row count; the probe
        #: simulation is deterministic, so re-running it per hit would only
        #: burn wall time producing identical counters.
        self._probe_memo: Dict[int, Tuple[dict, dict]] = {}

    # ---------------------------------------------------------------- intake
    def submit(self, query: LogicalQuery, label: str = "") -> ServingFuture:
        """Enqueue a query; returns a future resolved when its round runs."""
        future = ServingFuture(self, self._submitted, query,
                               label or getattr(query, "label", "")
                               or type(query).__name__)
        self._submitted += 1
        self.stats.submitted += 1
        self._queue.append(future)
        if len(self._queue) > self.stats.queue_depth_high_water:
            self.stats.queue_depth_high_water = len(self._queue)
        return future

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # --------------------------------------------------------------- serving
    def step(self) -> Tuple[List[ServingFuture], float]:
        """Serve one admission round (≤ ``max_concurrency`` queued queries).

        Returns the served futures and the round's host wall-clock seconds.
        An empty queue returns ``([], 0.0)``.
        """
        if not self._queue:
            return [], 0.0
        depth_before = len(self._queue)
        admitted = [self._queue.popleft()
                    for _ in range(min(self.max_concurrency, len(self._queue)))]
        round_start = time.perf_counter()
        coordinator = (SharedScanCoordinator(self.database)
                       if self.shared_scans else None)
        for future in admitted:
            self._serve_one(future, coordinator)
        if coordinator is not None:
            self.stats.shared_scan_recordings += coordinator.recordings
            self.stats.shared_scan_reuses += coordinator.reuses
        elapsed = time.perf_counter() - round_start
        self.stats.queue_depth_series.append((self.stats.rounds, depth_before))
        self.stats.round_log.append(RoundRecord(
            round_index=self.stats.rounds, queue_depth=depth_before,
            admitted=len(admitted), service_seconds=elapsed))
        self.stats.rounds += 1
        return admitted, elapsed

    def run_until_idle(self) -> List[ServingFuture]:
        """Serve rounds until the queue drains; returns every served future."""
        served: List[ServingFuture] = []
        while self._queue:
            done, _ = self.step()
            served.extend(done)
        return served

    # ------------------------------------------------------------- internals
    def _epoch(self, table: str) -> int:
        return self.stats.epochs.get(table, 0)

    def _session(self, index: int) -> Session:
        """A fresh measurement session for one admitted query.

        The address space is rolled back to the shared build's checkpoint
        first, so the session's transient allocations land at the exact
        solo-session addresses; its spill backing store is then pointed at
        the logical session slot's private namespace (reset to empty), so
        concurrent budgeted joins never collide on backing-store pages.
        """
        self.database.address_space.restore(self.checkpoint)
        session = Session(self.database, self.profile, spec=self.spec,
                          os_interference=self.os_interference,
                          engine=self.engine, batch_size=self.batch_size,
                          charge_mode=self.charge_mode,
                          memory_budget_bytes=self.memory_budget_bytes,
                          kernel_backend=self.kernel_backend,
                          tracing=self.tracing)
        slot = index % self.max_concurrency
        namespace = f"disk.s{slot}"
        region = self.database.address_space.ensure_region(namespace)
        region.cursor = 0
        session.context.disk_namespace = namespace
        return session

    def _serve_one(self, future: ServingFuture,
                   coordinator: Optional[SharedScanCoordinator]) -> None:
        start = time.perf_counter()
        query = future.query
        key = normalize_query(query)
        tables = query_tables(query)
        cache_key = (key, tuple(self._epoch(t) for t in tables))
        is_update = isinstance(query, UpdateQuery)
        class_stats = self.stats.class_stats(future.label.split("#", 1)[0])

        if self.result_cache is not None and not is_update:
            entry = self.result_cache.get(cache_key)
            if entry is not None:
                outcome = self._serve_hit(future, entry)
                outcome.service_seconds = time.perf_counter() - start
                future.outcome = outcome
                self.stats.result_cache_hits += 1
                self.stats.completed += 1
                class_stats.completed += 1
                class_stats.result_cache_hits += 1
                class_stats.service_seconds.append(outcome.service_seconds)
                return

        session = self._session(future.index)
        plan = None
        plan_cached = False
        if self.plan_cache is not None and not is_update:
            plan = self.plan_cache.get(cache_key)
            plan_cached = plan is not None
        if plan is None:
            plan = session.plan(query)
            if self.plan_cache is not None and not is_update:
                self.plan_cache.put(cache_key, plan, tables)
        if plan_cached:
            self.stats.plan_cache_hits += 1

        reuses_before = coordinator.reuses if coordinator is not None else 0
        if coordinator is not None:
            session.context.shared_scans = coordinator
        result = session.execute(query, warmup_runs=0, label=future.label,
                                 plan=plan)
        shared = (coordinator is not None
                  and coordinator.reuses > reuses_before)

        if is_update:
            # The epoch bump makes old cache entries unreachable; the
            # eager invalidations reclaim them.  Dropping the round's
            # shared-scan recordings is a *correctness* requirement: a
            # later query of this round must re-record from live data,
            # not replay the pre-update stream (whose stale rows would
            # then be cached under the table's new epoch).
            for table in tables:
                self.stats.epochs[table] = self._epoch(table) + 1
                if self.result_cache is not None:
                    self.result_cache.invalidate_table(table)
                if self.plan_cache is not None:
                    self.plan_cache.invalidate_table(table)
                if coordinator is not None:
                    coordinator.drop_table(table)
            self.stats.updates += 1
        elif self.result_cache is not None:
            self.result_cache.put(cache_key, result.rows,
                                  result.plan_description, tables)

        future.outcome = QueryOutcome(result=result, plan_cached=plan_cached,
                                      shared_scan=shared,
                                      service_seconds=time.perf_counter() - start)
        self.stats.completed += 1
        class_stats.completed += 1
        if plan_cached:
            class_stats.plan_cache_hits += 1
        if shared:
            class_stats.shared_scan_rides += 1
        class_stats.service_seconds.append(future.outcome.service_seconds)

    def _probe_charge(self, row_count: int) -> Tuple[dict, dict]:
        """Counters and invocations of one cache probe serving ``row_count`` rows.

        The probe runs against restored addresses on a cold simulated
        processor, so its counts are a pure function of the row count for a
        fixed server configuration; the first probe of each row count runs
        the real simulation and later probes reuse the (bit-identical)
        memoized counters without paying the session-construction wall cost.
        """
        memo = self._probe_memo.get(row_count)
        if memo is not None:
            return memo
        session = self._session(0)
        ctx = session.context
        invocations_before = ctx.snapshot_invocations()
        ctx.visit("query_setup")
        probe = ctx.allocate_workspace(_PROBE_ENTRY_BYTES)
        ctx.read_address(probe, _PROBE_READ_BYTES)
        if row_count:
            ctx.row_produced(row_count)
        counters = session.processor.finalize()
        memo = (counters.as_dict(),
                session._invocation_delta(invocations_before))
        self._probe_memo[row_count] = memo
        return memo

    def _serve_hit(self, future: ServingFuture, entry) -> QueryOutcome:
        """Serve cached rows with a charged cache-probe cost.

        A hit's charged work is the modelled probe: the query-setup routine,
        one read of the cache directory entry, and the per-row result
        delivery — simulated on a fresh cold processor against restored
        addresses (memoized per row count, see :meth:`_probe_charge`).  The
        returned :class:`QueryResult` is shaped exactly like an executed
        one, so drivers aggregate hits and misses uniformly.
        """
        rows = entry.rows
        counter_dict, invocations = self._probe_charge(len(rows))
        counters = EventCounters.from_dict(counter_dict)
        label = future.label
        breakdown = ExecutionBreakdown.from_counters(
            counters, self.spec, label=f"{self.profile.key}:{label}")
        metrics = compute_metrics(counters, self.spec)
        trace = None
        if self.tracing != TRACING_OFF:
            # A hit never runs operators, so the trace is a single
            # phase-level span covering the charged probe cost.
            trace = TraceNode.leaf("result_cache_probe", counters)
        result = QueryResult(
            system=self.profile.key, label=label,
            plan_description="ResultCache hit\n" + entry.plan_description,
            rows=rows, counters=counters, breakdown=breakdown,
            metrics=metrics, engine=self.engine,
            routine_invocations=dict(invocations), trace=trace)
        return QueryOutcome(result=result, result_cached=True)
