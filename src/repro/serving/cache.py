"""Plan and result caches for the serving layer.

Both caches are *semantically* keyed: the key is the normalized structure of
the logical query (labels stripped, predicate trees and constants rendered
canonically) combined with the **version epoch** of every table the query
reads.  The serving :class:`~repro.serving.server.Server` bumps a table's
epoch whenever an update executes against it, so every cached plan and
result for that table becomes unreachable at once — invalidation is free and
exact, and a re-submitted query after an update re-plans and re-executes
against current data.

The plan cache is a pure host-side optimisation: the planner never touches
the simulated hardware (its selectivity estimate samples the heap directly),
so serving a cached plan changes no simulated count — only the wall-clock
cost of planning disappears.  The result cache *does* change the simulated
story, deliberately: a hit charges a small cache-probe cost instead of the
query's full execution (see ``Server._serve_hit``), which is the modelled
behaviour of a semantic result cache in front of the engine.  Rows returned
from the cache are copied on the way in and on the way out, so callers can
never corrupt a cached result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..query.plans import (JoinQuery, LogicalQuery, PhysicalPlan,
                           SelectionQuery, UpdateQuery)

__all__ = ["normalize_query", "query_tables", "PlanCache", "ResultCache",
           "CachedResult"]


def query_tables(query: LogicalQuery) -> Tuple[str, ...]:
    """Names of the tables a logical query reads (or writes)."""
    if isinstance(query, (SelectionQuery, UpdateQuery)):
        return (query.table,)
    if isinstance(query, JoinQuery):
        return (query.left_table, query.right_table)
    raise TypeError(f"unknown logical query {query!r}")


def normalize_query(query: LogicalQuery) -> tuple:
    """A hashable key for the query's structure, with the label stripped.

    Two submissions of the same query class (same tables, aggregates,
    predicate tree and constants, planner hints) normalize to the same key
    regardless of their display labels.  Expression trees and aggregate
    specs are frozen dataclasses, so their ``repr`` is a canonical rendering
    of structure plus constants.
    """
    if isinstance(query, SelectionQuery):
        return ("select", query.table,
                tuple(repr(a) for a in query.aggregates),
                repr(query.predicate), query.prefer_index_on)
    if isinstance(query, JoinQuery):
        return ("join", query.left_table, query.right_table,
                query.left_column, query.right_column,
                tuple(repr(a) for a in query.aggregates),
                repr(query.predicate), query.build_side)
    if isinstance(query, UpdateQuery):
        return ("update", query.table, query.key_column, repr(query.key_value),
                query.set_column, repr(query.set_value))
    raise TypeError(f"unknown logical query {query!r}")


class PlanCache:
    """Physical plans keyed on (normalized query, table epochs).

    Epoch keying already guarantees a stale plan is never *served*;
    :meth:`invalidate_table` additionally reclaims the entries an epoch
    bump made unreachable, so a long-running server's plan cache does not
    grow with its update history.
    """

    def __init__(self) -> None:
        self._plans: Dict[tuple, Tuple[PhysicalPlan, Tuple[str, ...]]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[PhysicalPlan]:
        entry = self._plans.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[0]

    def put(self, key: tuple, plan: PhysicalPlan,
            tables: Tuple[str, ...] = ()) -> None:
        self._plans[key] = (plan, tuple(tables))

    def invalidate_table(self, table: str) -> int:
        """Drop every plan whose query reads ``table``; returns the count.

        Matches the table tuple stored with each entry, never substrings
        or arbitrary elements of the normalized key.
        """
        stale = [key for key, (_, tables) in self._plans.items()
                 if table in tables]
        for key in stale:
            del self._plans[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._plans)


@dataclass
class CachedResult:
    """Rows (plus the plan description they came from) of one cached query."""

    rows: List[Dict[str, object]]
    plan_description: str
    #: Tables the query read — the exact match target for invalidation.
    tables: Tuple[str, ...] = ()


class ResultCache:
    """Query results keyed on (normalized query, table epochs).

    Epoch keying makes update invalidation implicit: after the server bumps
    a table's epoch, every entry recorded under the old epoch can never be
    looked up again.  Stale entries are dropped eagerly anyway (see
    :meth:`invalidate_table`) so a long-running server's cache does not
    grow with its update history.
    """

    def __init__(self) -> None:
        self._results: Dict[tuple, CachedResult] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[CachedResult]:
        entry = self._results.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return CachedResult(rows=[dict(row) for row in entry.rows],
                            plan_description=entry.plan_description,
                            tables=entry.tables)

    def put(self, key: tuple, rows: List[Dict[str, object]],
            plan_description: str, tables: Tuple[str, ...] = ()) -> None:
        self._results[key] = CachedResult(rows=[dict(row) for row in rows],
                                          plan_description=plan_description,
                                          tables=tuple(tables))

    def invalidate_table(self, table: str) -> int:
        """Drop every entry whose query read ``table``; returns the count.

        The epoch in the key already guarantees correctness; this only
        reclaims memory for entries that became unreachable.  Matching is
        against the table tuple stored with each entry, so a table whose
        name happens to equal a column name in some other entry's key is
        never over-invalidated.
        """
        stale = [key for key, entry in self._results.items()
                 if table in entry.tables]
        for key in stale:
            del self._results[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._results)
