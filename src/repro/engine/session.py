"""Measurement sessions.

A :class:`Session` binds together everything needed to execute queries "the
way the paper measures them": one database, one system profile (which of the
four commercial DBMSs is being impersonated), one simulated processor
configuration, and the warm-up / measurement discipline of Section 4.3:

* the caches are warmed with prior runs of the same query before measuring,
* a *unit of execution* consists of several queries run back to back so that
  per-query client/server start-up overhead is amortised, and
* results come back as counter snapshots plus the derived breakdown and rate
  metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.breakdown import ExecutionBreakdown
from ..analysis.metrics import QueryMetrics, compute_metrics
from ..execution.code_layout import CodeLayout
from ..execution.context import ExecutionContext
from ..execution.executor import execute_plan, execute_update
from ..execution.kernels import resolve_kernels
from ..execution.parallel import ParallelExecution
from ..hardware.counters import EventCounters
from ..hardware.os_interference import OSInterferenceConfig
from ..hardware.pipeline import OverlapModel
from ..hardware.processor import SimulatedProcessor
from ..hardware.specs import PENTIUM_II_XEON, ProcessorSpec
from ..adaptive import AdaptiveExecution
from ..query.planner import Planner
from ..observability import Tracer
from ..query.plans import (ADAPTIVITY_OFF, CHARGE_SPAN, DEFAULT_BATCH_SIZE,
                           ENGINE_TUPLE, KERNEL_BACKEND_AUTO, TRACING_OFF,
                           ExecutionConfig, LogicalQuery, PhysicalPlan,
                           UpdatePlan, UpdateQuery, describe_plan)
from ..systems.profile import SystemProfile
from .database import Database


@dataclass
class QueryResult:
    """Everything measured for one query (or one unit of queries)."""

    system: str
    label: str
    plan_description: str
    rows: List[Dict[str, object]]
    counters: EventCounters
    breakdown: ExecutionBreakdown
    metrics: QueryMetrics
    queries_in_unit: int = 1
    engine: str = ENGINE_TUPLE
    #: Interpreted executor-routine invocations charged during the measured
    #: unit (batched calls count once per batch) -- the quantity the
    #: vectorized engine exists to shrink.
    routine_invocations: Dict[str, int] = field(default_factory=dict)
    #: Root of the per-query trace tree
    #: (:class:`~repro.observability.trace.TraceNode`) when the session ran
    #: with ``tracing != "off"``; ``None`` otherwise.
    trace: Optional[object] = None

    @property
    def total_routine_invocations(self) -> int:
        return sum(self.routine_invocations.values())

    @property
    def scalar(self) -> object:
        """The single aggregate value for scalar-aggregate queries."""
        if len(self.rows) == 1 and len(self.rows[0]) == 1:
            return next(iter(self.rows[0].values()))
        return None


class Session:
    """Execute queries for one system profile on one simulated platform."""

    def __init__(self,
                 database: Database,
                 profile: SystemProfile,
                 spec: ProcessorSpec = PENTIUM_II_XEON,
                 os_interference: Optional[OSInterferenceConfig] = OSInterferenceConfig(),
                 overlap: Optional[OverlapModel] = None,
                 engine: str = ENGINE_TUPLE,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 charge_mode: str = CHARGE_SPAN,
                 parallelism: int = 1,
                 parallel_backend: str = "process",
                 morsel_pages: Optional[int] = None,
                 adaptivity: str = ADAPTIVITY_OFF,
                 adaptive_joins: bool = False,
                 adaptive_batching: bool = False,
                 memory_budget_bytes: Optional[int] = None,
                 kernel_backend: str = KERNEL_BACKEND_AUTO,
                 tracing: str = TRACING_OFF) -> None:
        """``parallelism=N`` (N > 1) enables the morsel-parallel exchange
        for vectorized sequential scans: page morsels are produced by N
        workers (``parallel_backend="process"`` forks a pool inheriting the
        database; ``"inline"`` runs the same machinery in-process) and their
        charge tapes are replayed in canonical order, so result rows and
        every simulated hardware count are identical to ``parallelism=1``.

        ``adaptivity`` selects the runtime-adaptation mode
        (:mod:`repro.adaptive`): ``"off"`` (default, bit-identical to
        previous releases), ``"static"`` (adaptive charging, planner
        decisions -- the experiments' control arm), ``"greedy"`` (adapt
        every enabled decision from observations) or ``"epsilon"`` (greedy
        with deterministic exploration of conjunct orders).  Multi-conjunct
        filter reordering is active under any non-``off`` mode;
        ``adaptive_joins=True`` additionally lets the vectorized hash join
        flip its build/probe sides when observed cardinalities contradict
        the planner, and ``adaptive_batching=True`` lets vectorized
        sequential scans resize their vectors within the bounded ladder
        from observed L1D miss pressure.  Result rows are identical in
        every combination.

        ``memory_budget_bytes`` caps the vectorized hash join's working
        memory: a build side that does not fit is hash-partitioned into
        spill partitions through a capacity-limited buffer pool
        (grace/hybrid), whose page traffic is charged via the context's
        I/O cost model.  ``None`` (default) keeps the fully memory-resident
        join, bit-identical to previous releases; result rows, row order
        and column order are identical at every budget.

        ``kernel_backend`` selects the data-plane kernel implementation the
        vectorized operators compute with (:mod:`repro.execution.kernels`):
        ``"python"`` (pure-Python loops, zero dependencies), ``"array"``
        (numpy bulk operations; requires the ``[fast]`` extra) or ``"auto"``
        (default: ``array`` when numpy is importable, else ``python`` with
        a one-time warning).  Kernels only transform plain data -- they
        never touch the simulated hardware -- so result rows, row/column
        order and every simulated count are identical across backends; only
        host wall-clock time differs.

        ``tracing`` selects the query-tracing mode
        (:mod:`repro.observability`): ``"off"`` (default) bypasses the
        subsystem structurally; ``"spans"`` brackets every operator pull
        and planner/setup phase in a counter span and attaches the
        resulting trace tree to :attr:`QueryResult.trace`; ``"full"``
        additionally records per-pull host timings, per-morsel replay
        subspans and spill-I/O subspans.  Tracing only reads hardware
        snapshots between charges, so result rows and every simulated
        count are identical in all three modes.
        """
        self.database = database
        self.profile = profile
        self.spec = spec
        self.processor = SimulatedProcessor(spec, os_interference=os_interference,
                                            overlap=overlap)
        self.planner = Planner(database.catalog, profile,
                               execution=ExecutionConfig(engine=engine,
                                                         batch_size=batch_size,
                                                         charge_mode=charge_mode,
                                                         workers=max(parallelism, 1),
                                                         morsel_pages=morsel_pages,
                                                         adaptivity=adaptivity,
                                                         adaptive_joins=adaptive_joins,
                                                         adaptive_batching=adaptive_batching,
                                                         memory_budget_bytes=memory_budget_bytes,
                                                         kernel_backend=kernel_backend,
                                                         tracing=tracing))
        self.tracing = tracing
        self.code_layout = CodeLayout(profile, database.address_space)
        self.context = ExecutionContext(self.processor, profile,
                                        database.address_space,
                                        code_layout=self.code_layout,
                                        charge_mode=charge_mode,
                                        kernels=resolve_kernels(kernel_backend))
        self.context.memory_budget_bytes = memory_budget_bytes
        self.adaptive: Optional[AdaptiveExecution] = None
        if adaptivity != ADAPTIVITY_OFF:
            self.adaptive = AdaptiveExecution(adaptivity,
                                              join_sides=adaptive_joins,
                                              batch_sizing=adaptive_batching)
            self.context.adaptive = self.adaptive
        self.parallel: Optional[ParallelExecution] = None
        if parallelism > 1:
            self.parallel = ParallelExecution(database, parallelism,
                                              backend=parallel_backend,
                                              morsel_pages=morsel_pages)
            self.context.parallel = self.parallel

    def close(self) -> None:
        """Release the morsel-worker pool (no-op for serial sessions)."""
        if self.parallel is not None:
            self.parallel.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def execution(self) -> ExecutionConfig:
        """The execution configuration plans are planned for and run under."""
        return self.planner.execution

    # ------------------------------------------------------------- planning
    def plan(self, query: LogicalQuery) -> PhysicalPlan:
        return self.planner.plan(query)

    def explain(self, query: LogicalQuery) -> str:
        return describe_plan(self.plan(query))

    # ------------------------------------------------------------ execution
    def execute(self, query: LogicalQuery,
                warmup_runs: int = 1,
                queries_per_unit: int = 1,
                label: str = "",
                warmup_query: Optional[LogicalQuery] = None,
                plan: Optional[PhysicalPlan] = None) -> QueryResult:
        """Measure ``query`` following the paper's methodology.

        ``warmup_runs`` executions are performed first to warm the caches,
        TLBs and BTB; their counters are discarded.  The measured *unit* then
        executes the query ``queries_per_unit`` times back to back (the paper
        used units of ten) and the reported counters cover the whole unit.

        ``warmup_query`` optionally substitutes a different query for the
        warm-up runs.  The experiment runner uses this for the indexed range
        selection at reduced scale: warming up with a *shifted* key window
        exercises the same code paths and index structure without parking the
        measured window's records in the L2 cache (at the paper's full scale
        the 10% window is 23x the L2, so this distinction does not arise).

        ``plan`` optionally supplies a pre-planned physical plan for
        ``query`` (the serving layer's plan cache skips the planner this
        way); ``None`` plans the query here.  Planning charges nothing to
        the simulated hardware, so a cached plan changes no counts.
        """
        if plan is None:
            plan = self.plan(query)
        label = label or getattr(query, "label", "") or type(query).__name__

        warmup_plan = self.plan(warmup_query) if warmup_query is not None else plan
        for _ in range(max(warmup_runs, 0)):
            self._run_plan(warmup_plan)
        self.processor.reset_counters()
        invocations_before = self.context.snapshot_invocations()

        # The tracer (if any) covers exactly the measured unit: the root
        # span opens on freshly reset counters and closes before finalize,
        # so its synthesized delta equals the whole-unit counter set.
        # Warm-up runs stay untraced by construction.
        tracer = self._attach_tracer(label)
        rows: List[Dict[str, object]] = []
        try:
            for _ in range(max(queries_per_unit, 1)):
                rows = self._run_plan(plan)
        finally:
            self._detach_tracer(tracer)

        counters = self.processor.finalize()
        breakdown = ExecutionBreakdown.from_counters(counters, self.spec,
                                                     label=f"{self.profile.key}:{label}")
        metrics = compute_metrics(counters, self.spec)
        return QueryResult(system=self.profile.key, label=label,
                           plan_description=describe_plan(plan), rows=rows,
                           counters=counters, breakdown=breakdown, metrics=metrics,
                           queries_in_unit=max(queries_per_unit, 1),
                           engine=self.execution.engine,
                           routine_invocations=self._invocation_delta(invocations_before),
                           trace=tracer.root if tracer is not None else None)

    def execute_suite(self, queries: Sequence[LogicalQuery],
                      warmup_runs: int = 1, label: str = "") -> QueryResult:
        """Run a suite of different queries as one measured unit (TPC-D style)."""
        plans = [(self.plan(query), getattr(query, "label", "")) for query in queries]
        for plan, _ in plans:
            for _ in range(max(warmup_runs, 0)):
                self._run_plan(plan)
        self.processor.reset_counters()
        invocations_before = self.context.snapshot_invocations()
        tracer = self._attach_tracer(label or "suite")
        rows: List[Dict[str, object]] = []
        try:
            for plan, _ in plans:
                rows = self._run_plan(plan)
        finally:
            self._detach_tracer(tracer)
        counters = self.processor.finalize()
        breakdown = ExecutionBreakdown.from_counters(counters, self.spec,
                                                     label=f"{self.profile.key}:{label}")
        metrics = compute_metrics(counters, self.spec)
        return QueryResult(system=self.profile.key, label=label or "suite",
                           plan_description="\n".join(describe_plan(p) for p, _ in plans),
                           rows=rows, counters=counters, breakdown=breakdown,
                           metrics=metrics, queries_in_unit=len(plans),
                           engine=self.execution.engine,
                           routine_invocations=self._invocation_delta(invocations_before),
                           trace=tracer.root if tracer is not None else None)

    def _attach_tracer(self, label: str):
        """Install a tracer on the context for one measured unit.

        Returns ``None`` (and touches nothing) when ``tracing="off"`` --
        the structural bypass: no tracer object ever exists, and the hot
        paths only check ``ctx.tracer is None``.
        """
        if self.tracing == TRACING_OFF:
            return None
        tracer = Tracer(self.context, self.spec, self.tracing, label=label)
        self.context.tracer = tracer
        tracer.open_root()
        return tracer

    def _detach_tracer(self, tracer) -> None:
        if tracer is not None:
            tracer.close_root()
            self.context.tracer = None

    def _run_plan(self, plan: PhysicalPlan) -> List[Dict[str, object]]:
        if isinstance(plan, UpdatePlan):
            updated = execute_update(plan, self.database.catalog, self.context,
                                     execution=self.execution)
            if self.parallel is not None:
                # The forked workers hold a pre-update database snapshot.
                self.parallel.invalidate_snapshot()
            return [{"updated": updated}]
        return execute_plan(plan, self.database.catalog, self.context,
                            execution=self.execution)

    def _invocation_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Routine invocations charged since the ``before`` snapshot."""
        after = self.context.op_invocations
        return {operation: after[operation] - before.get(operation, 0)
                for operation in after
                if after[operation] - before.get(operation, 0)}

    # -------------------------------------------------- transactional (OLTP)
    def execute_transaction(self, statements: Sequence[LogicalQuery]) -> int:
        """Execute one OLTP transaction (used by the TPC-C-style workload).

        Charges one ``txn_overhead`` for begin/commit, locking and logging,
        plus the per-statement work.  Returns the number of statements run.
        The caller is responsible for counter snapshots (the workload driver
        measures whole transaction batches, not single transactions).
        """
        self.context.visit("txn_overhead")
        for statement in statements:
            plan = self.plan(statement)
            if isinstance(plan, UpdatePlan):
                execute_update(plan, self.database.catalog, self.context,
                               charge_setup=False, execution=self.execution)
                if self.parallel is not None:
                    # Invalidate immediately: a later statement of this very
                    # transaction may scan the table the update just changed.
                    self.parallel.invalidate_snapshot()
            else:
                execute_plan(plan, self.database.catalog, self.context,
                             execution=self.execution)
        return len(statements)

    def measure(self) -> Tuple[EventCounters, ExecutionBreakdown, QueryMetrics]:
        """Finalize and report counters for work driven outside :meth:`execute`."""
        counters = self.processor.finalize()
        breakdown = ExecutionBreakdown.from_counters(counters, self.spec,
                                                     label=self.profile.key)
        metrics = compute_metrics(counters, self.spec)
        return counters, breakdown, metrics

    def reset_measurement(self) -> None:
        """Discard counters but keep cache/TLB/BTB contents (warm state)."""
        self.processor.reset_counters()
