"""Engine facade: database instances and measurement sessions."""

from .database import Database
from .session import QueryResult, Session

__all__ = ["Database", "QueryResult", "Session"]
