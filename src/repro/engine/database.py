"""Database facade.

:class:`Database` wraps the storage catalog behind the small DDL/DML surface
the workloads and examples need: create a table (optionally with explicit
record padding, as the paper's ``<rest of fields>`` requires), bulk-load rows,
build a non-clustered index, and inspect sizes.  The same database instance is
shared by every system profile measured against it -- the paper used "the
exact same commands and datasets ... for all the DBMSs".
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..index.btree import BTreeIndex
from ..storage.address_space import AddressSpace
from ..storage.catalog import Catalog, Table
from ..storage.page import DEFAULT_PAGE_SIZE
from ..storage.schema import Column, ColumnType, Schema


class Database:
    """A memory-resident database instance."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE,
                 address_space: Optional[AddressSpace] = None) -> None:
        self.catalog = Catalog(page_size=page_size, address_space=address_space)

    # ------------------------------------------------------------------ DDL
    def create_table(self, name: str, columns: Sequence[Tuple[str, ColumnType]],
                     record_size: Optional[int] = None,
                     layout_style: str = "nsm") -> Table:
        """Create a table from ``(name, type)`` pairs with optional padding.

        ``layout_style`` selects the page organisation: ``"nsm"`` (slotted
        pages, the default) or ``"pax"`` (per-column minipages).
        """
        schema = Schema(columns=tuple(Column(cname, ctype) for cname, ctype in columns),
                        name=name)
        return self.catalog.create_table(name, schema, record_size=record_size,
                                         layout_style=layout_style)

    def create_index(self, table: str, column: str, unique: bool = False) -> BTreeIndex:
        return self.catalog.create_index(table, column, unique=unique)

    def drop_index(self, table: str, column: str) -> None:
        self.catalog.drop_index(table, column)

    # ------------------------------------------------------------------ DML
    def load(self, table: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load rows into an existing table; returns the row count."""
        return self.catalog.table(table).insert_many(rows)

    # -------------------------------------------------------------- queries
    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    def row_count(self, name: str) -> int:
        return self.catalog.table(name).row_count

    def resident_bytes(self) -> int:
        """Total relation bytes in the buffer pool (must fit in memory)."""
        return self.catalog.total_data_bytes()

    @property
    def address_space(self) -> AddressSpace:
        return self.catalog.address_space

    # ------------------------------------------------------- data checkpoint
    def data_checkpoint(self) -> Dict[str, Tuple]:
        """Snapshot every table's raw page bytes (see ``HeapFile.data_checkpoint``).

        The address-space checkpoint rolls back *allocation cursors*; this
        rolls back *data* mutated in place (record updates), which is what
        lets an update-heavy workload (the TPC-C mix) be measured repeatedly
        against one shared warmed build with every measurement seeing the
        freshly built contents.  Purely Python-level: nothing is charged.
        """
        return {table.name: table.heap.data_checkpoint()
                for table in self.catalog.tables()}

    def data_restore(self, snapshot: Dict[str, Tuple]) -> None:
        """Write a :meth:`data_checkpoint` snapshot back into every table."""
        for name, pages in snapshot.items():
            self.catalog.table(name).heap.data_restore(pages)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-table row/page/byte counts, for reports and examples."""
        out: Dict[str, Dict[str, int]] = {}
        for table in self.catalog.tables():
            out[table.name] = {
                "rows": table.row_count,
                "pages": table.heap.page_count,
                "bytes": table.heap.data_bytes(),
                "record_size": table.layout.record_size,
                "indexes": len(table.indexes),
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Database(tables={list(self.catalog.table_names())})"
