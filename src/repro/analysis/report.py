"""Text rendering of the paper's figures and tables.

The original figures are stacked bar charts; a terminal reproduction renders
each one as an aligned text table (systems as columns, components as rows,
values as percentages) plus, where useful, a crude horizontal bar.  The
benchmark harness prints these tables so a run of ``pytest benchmarks/``
regenerates every figure in readable form, and EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def format_percentage(value: float) -> str:
    return f"{100.0 * value:5.1f}%"


def format_table(title: str,
                 row_labels: Sequence[str],
                 column_labels: Sequence[str],
                 values: Mapping[str, Mapping[str, float]],
                 formatter=format_percentage,
                 row_header: str = "") -> str:
    """Render ``values[column][row]`` as an aligned text table.

    Missing cells render as ``-`` (e.g. System A's indexed range selection,
    which the paper omits because A did not use the index).
    """
    label_width = max([len(row_header)] + [len(label) for label in row_labels]) + 2
    column_width = max([8] + [len(label) + 2 for label in column_labels])
    lines = [title, "=" * len(title)]
    header = " " * label_width + "".join(f"{label:>{column_width}}" for label in column_labels)
    lines.append(header)
    for row in row_labels:
        cells = []
        for column in column_labels:
            cell = values.get(column, {})
            if row in cell and cell[row] is not None:
                cells.append(f"{formatter(cell[row]):>{column_width}}")
            else:
                cells.append(f"{'-':>{column_width}}")
        lines.append(f"{row:<{label_width}}" + "".join(cells))
    return "\n".join(lines)


def format_stacked_bars(title: str,
                        series: Mapping[str, Mapping[str, float]],
                        component_order: Sequence[str],
                        width: int = 50,
                        symbols: str = "#*+=~.") -> str:
    """Render normalised stacked bars, one per key of ``series``.

    Each component gets a symbol; the legend maps symbols back to component
    names.  This is the closest a text terminal gets to Figure 5.1/5.2.
    """
    lines = [title, "=" * len(title)]
    legend = "  ".join(f"{symbols[i % len(symbols)]}={name}"
                       for i, name in enumerate(component_order))
    lines.append(f"legend: {legend}")
    label_width = max(len(label) for label in series) + 2
    for label, components in series.items():
        total = sum(components.get(name, 0.0) for name in component_order)
        if total <= 0:
            lines.append(f"{label:<{label_width}}(empty)")
            continue
        bar = ""
        for i, name in enumerate(component_order):
            share = components.get(name, 0.0) / total
            bar += symbols[i % len(symbols)] * int(round(share * width))
        lines.append(f"{label:<{label_width}}|{bar[:width]:<{width}}|")
    return "\n".join(lines)


def format_key_values(title: str, values: Mapping[str, object]) -> str:
    """Render a flat mapping as an aligned two-column listing."""
    lines = [title, "=" * len(title)]
    width = max(len(str(key)) for key in values) + 2
    for key, value in values.items():
        if isinstance(value, float):
            rendered = f"{value:,.3f}"
        else:
            rendered = str(value)
        lines.append(f"{key:<{width}}{rendered}")
    return "\n".join(lines)


def format_comparison(title: str,
                      rows: Sequence[Tuple[str, str, str, str]],
                      headers: Tuple[str, str, str, str] = ("observation", "paper",
                                                            "measured", "verdict")) -> str:
    """Render paper-vs-measured comparison rows (used by EXPERIMENTS.md)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return " | ".join(f"{cell:<{widths[i]}}" for i, cell in enumerate(row))
    lines = [title, "=" * len(title), fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
