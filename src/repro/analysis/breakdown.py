"""The execution-time breakdown framework (the paper's primary contribution).

Section 3 of the paper proposes measuring where query execution time goes by
decomposing it as

    T_Q = T_C + T_M + T_B + T_R - T_OVL

with the memory component further split per Table 3.1 and each piece derived
from hardware counters per Table 4.2:

=========  =======================================  ==============================
Component  Meaning                                  Measurement method (Table 4.2)
=========  =======================================  ==============================
T_C        useful computation                       estimated minimum from uops retired
T_L1D      L1 D-cache miss stalls (hit in L2)       #misses x 4 cycles
T_L1I      L1 I-cache miss stalls                   actual stall time (IFU_MEM_STALL)
T_L2D      L2 data miss stalls                      #misses x measured memory latency
T_L2I      L2 instruction miss stalls               #misses x measured memory latency
T_DTLB     data TLB stalls                          not measured
T_ITLB     instruction TLB stalls                   #misses x 32 cycles
T_B        branch misprediction penalty             #mispredictions retired x 17 cycles
T_FU       functional-unit contention stalls        actual stall time
T_DEP      dependency stalls                        actual stall time
T_ILD      instruction-length decoder stalls        actual stall time
T_OVL      overlapped stall time                    not measured
=========  =======================================  ==============================

:class:`ExecutionBreakdown` applies exactly those formulae to an
:class:`~repro.hardware.counters.EventCounters` snapshot.  Because several of
the formulae are upper bounds (overlap is not subtracted per component), the
component sum generally exceeds the measured cycle total; the paper handles
this by reporting components as percentages, and :meth:`ExecutionBreakdown.
shares` does the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..hardware.counters import EventCounters, MODE_USER
from ..hardware.specs import PENTIUM_II_XEON, ProcessorSpec

#: Stall-time component identifiers, in the paper's Table 3.1 order.
COMPONENTS: Tuple[str, ...] = (
    "TC", "TL1D", "TL1I", "TL2D", "TL2I", "TDTLB", "TITLB",
    "TB", "TFU", "TDEP", "TILD",
)

#: The four top-level groups of Figure 5.1.
GROUPS: Tuple[str, ...] = ("computation", "memory", "branch", "resource")

#: Memory sub-components as reported in Figure 5.2 (TDTLB excluded: the paper
#: could not measure it).
MEMORY_COMPONENTS: Tuple[str, ...] = ("TL1D", "TL1I", "TL2D", "TL2I", "TITLB")


@dataclass(frozen=True)
class MeasurementMethod:
    """How one component is obtained (the rows of Table 4.2)."""

    component: str
    description: str
    method: str


#: Table 4.2, reproduced as data so reports and docs can render it.
TABLE_4_2: Tuple[MeasurementMethod, ...] = (
    MeasurementMethod("TC", "computation time", "Estimated minimum based on uops retired"),
    MeasurementMethod("TL1D", "L1 D-cache stalls", "#misses * 4 cycles"),
    MeasurementMethod("TL1I", "L1 I-cache stalls", "actual stall time"),
    MeasurementMethod("TL2D", "L2 data stalls", "#misses * measured memory latency"),
    MeasurementMethod("TL2I", "L2 instruction stalls", "#misses * measured memory latency"),
    MeasurementMethod("TDTLB", "DTLB stalls", "Not measured"),
    MeasurementMethod("TITLB", "ITLB stalls", "#misses * 32 cycles"),
    MeasurementMethod("TB", "branch misprediction penalty",
                      "# branch mispredictions retired * 17 cycles"),
    MeasurementMethod("TFU", "functional unit stalls", "actual stall time"),
    MeasurementMethod("TDEP", "dependency stalls", "actual stall time"),
    MeasurementMethod("TILD", "Instruction-length decoder stalls", "actual stall time"),
    MeasurementMethod("TOVL", "overlap time", "Not measured"),
)


class BreakdownError(RuntimeError):
    """Raised when a breakdown cannot be computed from the given counters."""


@dataclass
class ExecutionBreakdown:
    """Execution-time components (cycles) estimated from hardware counters."""

    components: Dict[str, float]
    total_cycles: float
    counters: Optional[EventCounters] = None
    label: str = ""

    # ------------------------------------------------------------- builders
    @classmethod
    def from_counters(cls, counters: EventCounters,
                      spec: ProcessorSpec = PENTIUM_II_XEON,
                      mode: str = MODE_USER,
                      label: str = "",
                      include_dtlb: bool = False) -> "ExecutionBreakdown":
        """Apply the Table 4.2 formulae to a counter snapshot.

        ``include_dtlb`` adds the DTLB component the paper could not measure;
        it defaults to off so that shares line up with the published
        methodology.
        """
        get = lambda event: counters.get(event, mode)  # noqa: E731 - local shorthand
        total = float(get("CPU_CLK_UNHALTED"))
        if total <= 0:
            raise BreakdownError("counters carry no CPU_CLK_UNHALTED cycles; "
                                 "was the processor finalised?")

        retire_width = spec.pipeline.retire_width_uops
        l1d_misses = get("DCU_LINES_IN")
        l2_data_misses = get("L2_DATA_MISS")
        l2_ifetch_misses = get("L2_IFETCH_MISS")
        memory_latency = spec.memory.latency_cycles

        components: Dict[str, float] = {
            "TC": get("UOPS_RETIRED") / retire_width,
            "TL1D": max(l1d_misses - l2_data_misses, 0) * spec.l1d.miss_penalty_cycles,
            "TL1I": float(get("IFU_MEM_STALL")),
            "TL2D": l2_data_misses * memory_latency,
            "TL2I": l2_ifetch_misses * memory_latency,
            "TDTLB": (get("DTLB_MISS") * spec.dtlb.miss_penalty_cycles) if include_dtlb else 0.0,
            "TITLB": get("ITLB_MISS") * spec.itlb.miss_penalty_cycles,
            "TB": get("BR_MISS_PRED_RETIRED") * spec.branch.misprediction_penalty_cycles,
            "TFU": float(get("FU_CONTENTION_STALLS")),
            "TDEP": float(get("PARTIAL_RAT_STALLS")),
            "TILD": float(get("ILD_STALL")),
        }
        return cls(components=components, total_cycles=total,
                   counters=counters.snapshot(), label=label)

    # ------------------------------------------------------------ aggregates
    @property
    def computation(self) -> float:
        return self.components["TC"]

    @property
    def memory(self) -> float:
        """T_M: the memory-hierarchy stall components of Table 3.1."""
        return sum(self.components[name] for name in MEMORY_COMPONENTS) \
            + self.components.get("TDTLB", 0.0)

    @property
    def branch(self) -> float:
        return self.components["TB"]

    @property
    def resource(self) -> float:
        return (self.components["TFU"] + self.components["TDEP"]
                + self.components["TILD"])

    @property
    def stall(self) -> float:
        return self.memory + self.branch + self.resource

    @property
    def estimated_total(self) -> float:
        """Sum of all components (an upper bound on the measured total)."""
        return self.computation + self.stall

    @property
    def overlap(self) -> float:
        """Implied T_OVL: component sum minus measured cycles (>= 0 normally)."""
        return max(self.estimated_total - self.total_cycles, 0.0)

    def group_cycles(self) -> Dict[str, float]:
        """Cycles per top-level group (Figure 5.1 categories)."""
        return {"computation": self.computation, "memory": self.memory,
                "branch": self.branch, "resource": self.resource}

    def shares(self) -> Dict[str, float]:
        """Fractions of execution time per top-level group.

        The paper normalises the four groups to 100% of query execution time;
        because the per-component estimates are upper bounds, the shares are
        computed against the component sum rather than the raw cycle count so
        they add up to 1.0 exactly as in Figure 5.1.
        """
        groups = self.group_cycles()
        denominator = sum(groups.values())
        if denominator <= 0:
            raise BreakdownError("breakdown has no cycles to normalise")
        return {name: value / denominator for name, value in groups.items()}

    def memory_shares(self) -> Dict[str, float]:
        """Fractions of the memory stall time per sub-component (Figure 5.2)."""
        memory = {name: self.components[name] for name in MEMORY_COMPONENTS}
        denominator = sum(memory.values())
        if denominator <= 0:
            return {name: 0.0 for name in MEMORY_COMPONENTS}
        return {name: value / denominator for name, value in memory.items()}

    def component_shares(self) -> Dict[str, float]:
        """Every component as a fraction of the component sum."""
        denominator = self.estimated_total
        return {name: value / denominator for name, value in self.components.items()}

    # ------------------------------------------------------------ utilities
    def per_record(self, records: Optional[int] = None) -> Dict[str, float]:
        """Cycles per record for every component (uses RECORDS_PROCESSED)."""
        if records is None:
            if self.counters is None:
                raise BreakdownError("per_record needs a record count or counters")
            records = self.counters.get("RECORDS_PROCESSED")
        if not records:
            raise BreakdownError("no records were processed")
        out = {name: value / records for name, value in self.components.items()}
        out["total"] = self.total_cycles / records
        return out

    def merged_with(self, other: "ExecutionBreakdown", label: str = "") -> "ExecutionBreakdown":
        """Sum of two breakdowns (e.g. the queries of a workload suite)."""
        components = {name: self.components[name] + other.components[name]
                      for name in self.components}
        counters = None
        if self.counters is not None and other.counters is not None:
            counters = self.counters.merged_with(other.counters)
        return ExecutionBreakdown(components=components,
                                  total_cycles=self.total_cycles + other.total_cycles,
                                  counters=counters,
                                  label=label or self.label)

    @staticmethod
    def average(breakdowns: Iterable["ExecutionBreakdown"], label: str = "") -> "ExecutionBreakdown":
        """Average the *shares* of several breakdowns (the paper's TPC-D averages)."""
        items = list(breakdowns)
        if not items:
            raise BreakdownError("cannot average zero breakdowns")
        merged = items[0]
        for item in items[1:]:
            merged = merged.merged_with(item)
        merged.label = label or merged.label
        return merged

    def as_dict(self) -> Dict[str, float]:
        out = dict(self.components)
        out["total_cycles"] = self.total_cycles
        out["memory"] = self.memory
        out["resource"] = self.resource
        out["stall"] = self.stall
        return out
