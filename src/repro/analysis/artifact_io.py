"""CSV and plot emitters for the reproduction artifact.

The artifact pipeline (:mod:`repro.experiments.artifact`, driven by
``scripts/run_artifact.py``) measures every figure once and persists the
structured :class:`~repro.experiments.figures.FigureResult` data as JSON;
this module turns that JSON into the per-figure CSV files reviewers diff
and, when matplotlib happens to be installed, into PNG charts.  matplotlib
is strictly optional: :func:`matplotlib_available` gates the plot stage and
everything else is pure standard library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

Scalar = Union[int, float, str]
Row = Tuple[Scalar, ...]


def flatten(data: Dict, depth: int) -> List[Row]:
    """Flatten a uniformly nested figure-data dict into key-path rows.

    Every figure's ``data`` is a nested mapping of uniform depth whose
    leaves are scalars; ``depth`` is the number of key levels.  Each
    returned row is ``(key_1, ..., key_depth, value)``, in the mapping's
    (insertion) order, so CSV output is deterministic for a deterministic
    measurement.
    """
    rows: List[Row] = []

    def walk(node, prefix: Tuple[Scalar, ...]) -> None:
        if len(prefix) == depth:
            if isinstance(node, dict):
                raise ValueError(
                    f"figure data deeper than declared depth {depth} at {prefix!r}")
            rows.append(prefix + (node,))
            return
        if not isinstance(node, dict):
            raise ValueError(
                f"figure data shallower than declared depth {depth} at {prefix!r}")
        for key, child in node.items():
            walk(child, prefix + (key,))

    walk(data, ())
    return rows


def write_csv(path: Path, columns: Sequence[str], rows: Sequence[Row]) -> None:
    """Write one figure's flattened rows as CSV (header + data rows)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(columns))
        writer.writerows(rows)


def read_raw(path: Path) -> Dict[str, Dict]:
    """Load the ``run_all`` stage's raw measurement JSON."""
    with open(path) as handle:
        return json.load(handle)


def write_raw(path: Path, raw: Dict[str, Dict]) -> None:
    """Persist the raw measurement data (figure name -> title/data/text)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(raw, handle, indent=1, sort_keys=False)
        handle.write("\n")


def matplotlib_available() -> bool:
    """True when the optional plotting dependency can be imported."""
    try:  # pragma: no cover - exercised only where matplotlib exists
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True  # pragma: no cover


def render_plot(name: str, title: str, columns: Sequence[str],
                rows: Sequence[Row], path: Path) -> bool:
    """Render one figure's rows as a horizontal bar chart PNG.

    Returns False (writing nothing) when matplotlib is unavailable or the
    figure's values are non-numeric (the method tables); the CSV remains
    the canonical artifact either way.
    """
    if not matplotlib_available():
        return False
    numeric = [row for row in rows
               if isinstance(row[-1], (int, float))
               and not isinstance(row[-1], bool)]
    if not numeric:
        return False
    import matplotlib  # pragma: no cover - optional dependency
    matplotlib.use("Agg")  # pragma: no cover
    import matplotlib.pyplot as plt  # pragma: no cover

    labels = [" / ".join(str(key) for key in row[:-1]) for row in numeric]  # pragma: no cover
    values = [float(row[-1]) for row in numeric]  # pragma: no cover
    height = max(2.0, 0.28 * len(numeric) + 1.2)  # pragma: no cover
    fig, axis = plt.subplots(figsize=(10, height))  # pragma: no cover
    axis.barh(range(len(values)), values)  # pragma: no cover
    axis.set_yticks(range(len(values)))  # pragma: no cover
    axis.set_yticklabels(labels, fontsize=7)  # pragma: no cover
    axis.invert_yaxis()  # pragma: no cover
    axis.set_xlabel(columns[-1])  # pragma: no cover
    axis.set_title(f"{name}: {title}")  # pragma: no cover
    fig.tight_layout()  # pragma: no cover
    path.parent.mkdir(parents=True, exist_ok=True)  # pragma: no cover
    fig.savefig(path, dpi=120)  # pragma: no cover
    plt.close(fig)  # pragma: no cover
    return True  # pragma: no cover
