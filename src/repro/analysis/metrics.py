"""Derived performance metrics.

Beyond the time breakdown itself, the paper reports a set of rate metrics that
this module computes from a counter snapshot:

* clocks per instruction (CPI) and its breakdown (Figure 5.6),
* instructions retired per record (Figure 5.3),
* L1 D-cache, L1 I-cache and L2 data/instruction miss rates (Section 5.2),
* branch frequency, branch misprediction rate and BTB miss rate (Section 5.3),
* memory-bandwidth utilisation (the latency-bound argument of Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.counters import EventCounters, MODE_USER
from ..hardware.specs import PENTIUM_II_XEON, ProcessorSpec
from .breakdown import ExecutionBreakdown


@dataclass(frozen=True)
class QueryMetrics:
    """Rate metrics for one measured query execution."""

    cycles: float
    instructions: int
    uops: int
    records: int
    cpi: float
    instructions_per_record: float
    l1d_miss_rate: float
    l1i_miss_rate: float
    l2_data_miss_rate: float
    l2_instruction_miss_rate: float
    l2_data_misses_per_record: float
    branch_fraction: float
    branch_misprediction_rate: float
    btb_miss_rate: float
    memory_bandwidth_utilisation: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": float(self.instructions),
            "uops": float(self.uops),
            "records": float(self.records),
            "cpi": self.cpi,
            "instructions_per_record": self.instructions_per_record,
            "l1d_miss_rate": self.l1d_miss_rate,
            "l1i_miss_rate": self.l1i_miss_rate,
            "l2_data_miss_rate": self.l2_data_miss_rate,
            "l2_instruction_miss_rate": self.l2_instruction_miss_rate,
            "l2_data_misses_per_record": self.l2_data_misses_per_record,
            "branch_fraction": self.branch_fraction,
            "branch_misprediction_rate": self.branch_misprediction_rate,
            "btb_miss_rate": self.btb_miss_rate,
            "memory_bandwidth_utilisation": self.memory_bandwidth_utilisation,
        }


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def compute_metrics(counters: EventCounters,
                    spec: ProcessorSpec = PENTIUM_II_XEON,
                    mode: str = MODE_USER,
                    records: Optional[int] = None) -> QueryMetrics:
    """Compute the rate metrics from one counter snapshot."""
    get = lambda event: counters.get(event, mode)  # noqa: E731 - local shorthand
    cycles = float(get("CPU_CLK_UNHALTED"))
    instructions = get("INST_RETIRED")
    uops = get("UOPS_RETIRED")
    if records is None:
        records = get("RECORDS_PROCESSED")

    data_refs = get("DATA_MEM_REFS")
    l1d_misses = get("DCU_LINES_IN")
    ifetches = get("IFU_IFETCH")
    l1i_misses = get("IFU_IFETCH_MISS")
    l2_data_requests = get("L2_DATA_RQSTS")
    l2_data_misses = get("L2_DATA_MISS")
    l2_ifetches = get("L2_IFETCH")
    l2_ifetch_misses = get("L2_IFETCH_MISS")
    branches = get("BR_INST_RETIRED")
    mispredictions = get("BR_MISS_PRED_RETIRED")
    btb_misses = get("BTB_MISSES")

    bus_bytes = float(get("BUS_TRAN_MEM")) * spec.l2.line_bytes
    peak_bytes = spec.memory.peak_bandwidth_bytes_per_cycle * cycles if cycles else 0.0

    return QueryMetrics(
        cycles=cycles,
        instructions=instructions,
        uops=uops,
        records=records,
        cpi=_ratio(cycles, instructions),
        instructions_per_record=_ratio(instructions, records),
        l1d_miss_rate=_ratio(l1d_misses, data_refs),
        l1i_miss_rate=_ratio(l1i_misses, ifetches),
        l2_data_miss_rate=_ratio(l2_data_misses, l2_data_requests),
        l2_instruction_miss_rate=_ratio(l2_ifetch_misses, l2_ifetches),
        l2_data_misses_per_record=_ratio(l2_data_misses, records),
        branch_fraction=_ratio(branches, instructions),
        branch_misprediction_rate=_ratio(mispredictions, branches),
        btb_miss_rate=_ratio(btb_misses, branches),
        memory_bandwidth_utilisation=_ratio(bus_bytes, peak_bytes),
    )


def cpi_breakdown(breakdown: ExecutionBreakdown, instructions: int) -> Dict[str, float]:
    """Clocks-per-instruction contribution of each top-level group (Figure 5.6)."""
    if instructions <= 0:
        raise ValueError("instructions must be positive for a CPI breakdown")
    groups = breakdown.group_cycles()
    total = sum(groups.values())
    measured_cpi = breakdown.total_cycles / instructions
    if total <= 0:
        return {name: 0.0 for name in groups} | {"total": measured_cpi}
    out = {name: measured_cpi * (value / total) for name, value in groups.items()}
    out["total"] = measured_cpi
    return out
