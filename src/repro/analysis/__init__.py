"""The execution-time breakdown framework and derived metrics."""

from .breakdown import (BreakdownError, COMPONENTS, ExecutionBreakdown, GROUPS,
                        MEMORY_COMPONENTS, MeasurementMethod, TABLE_4_2)
from .metrics import QueryMetrics, compute_metrics, cpi_breakdown

__all__ = [
    "BreakdownError", "COMPONENTS", "ExecutionBreakdown", "GROUPS",
    "MEMORY_COMPONENTS", "MeasurementMethod", "TABLE_4_2",
    "QueryMetrics", "compute_metrics", "cpi_breakdown",
]
