"""The reproduction artifact: every figure and table as data files.

This module is the measurement side of the three-command artifact pipeline
(``scripts/run_artifact.py``)::

    run_all  -- measure every figure/table once, persist raw JSON
    csv      -- derive one CSV per figure/table, verify all are non-empty
    plot     -- render PNG charts when matplotlib is installed (optional)

Everything measures through one shared :class:`ExperimentRunner`, so the
whole artifact costs one pass over the workloads: the microbenchmark grid
figures (5.1--5.5) per page layout, the record-size and selectivity sweeps
per layout, the TPC-D and TPC-C workloads on the warmed-build grid under
the modern engine matrix (tuple vs vectorized, optional ``workers`` and
adaptivity arms), and the two configuration tables (4.1/4.2).

Scale presets pick the dataset sizes: ``ci`` (seconds, used by the CI smoke
job), ``small`` (a quick local run) and ``full`` (the repo's default
reduced-paper scale, still env-scalable through ``REPRO_BENCH_SCALE``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

from ..analysis import artifact_io
from ..workloads.micro import MicroWorkloadConfig
from ..workloads.tpcc import TPCCConfig
from ..workloads.tpcd import TPCDConfig
from . import figures
from .runner import ExperimentConfig, ExperimentRunner

#: Page layouts every per-layout artifact covers.
LAYOUTS: Tuple[str, ...] = ("nsm", "pax")


class ArtifactError(RuntimeError):
    """A pipeline stage could not produce (or verify) its outputs."""


@dataclass(frozen=True)
class ArtifactOptions:
    """Cross-cutting knobs of the artifact run (the optional matrix arms)."""

    workers: Tuple[int, ...] = (1,)
    adaptivity: bool = False


@dataclass(frozen=True)
class ArtifactSpec:
    """One artifact: a name, its CSV schema, and how to measure it.

    ``columns`` names the flattened key path plus the trailing value
    column; its length minus one is the nesting depth of the data the
    builder returns.
    """

    name: str
    title: str
    columns: Tuple[str, ...]
    build: Callable[[ExperimentRunner, ArtifactOptions], Dict]


# ---------------------------------------------------------------------- scale
def config_for_scale(scale: str) -> ExperimentConfig:
    """The :class:`ExperimentConfig` behind one scale preset."""
    if scale == "ci":
        return ExperimentConfig(
            micro=MicroWorkloadConfig(scale=1 / 2000),
            tpcd=TPCDConfig(lineitem_rows=400, orders_rows=80,
                            part_rows=40, supplier_rows=20),
            tpcc=TPCCConfig(scale=0.004),
            tpcc_transactions=12,
            record_size_points=(48, 100),
            selectivity_points=(0.0, 0.1, 0.5),
        )
    if scale == "small":
        return ExperimentConfig(
            micro=MicroWorkloadConfig(scale=1 / 500),
            tpcd=TPCDConfig(lineitem_rows=2500, orders_rows=400,
                            part_rows=150, supplier_rows=40),
            tpcc=TPCCConfig(scale=0.02),
            tpcc_transactions=60,
        )
    if scale == "full":
        return ExperimentConfig()
    raise ArtifactError(f"unknown scale preset {scale!r}; "
                        f"expected one of: ci, small, full")


# ------------------------------------------------------------------- builders
def _per_layout(figure_fn) -> Callable[[ExperimentRunner, ArtifactOptions], Dict]:
    """Compose a single-layout figure across :data:`LAYOUTS`."""
    def build(runner: ExperimentRunner, options: ArtifactOptions) -> Dict:
        return {layout: figure_fn(runner, layout=layout).data
                for layout in LAYOUTS}
    return build


def _selectivity_sweep(runner: ExperimentRunner,
                       options: ArtifactOptions) -> Dict:
    """Full selectivity sweep per layout (System D sequential selection)."""
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for layout in LAYOUTS:
        series = runner.selectivity_series(layout=layout)
        per_point: Dict[str, Dict[str, float]] = {}
        for selectivity, result in sorted(series.items()):
            shares = result.breakdown.component_shares()
            per_point[f"{selectivity:.2f}"] = {
                "cycles": float(result.breakdown.total_cycles),
                "CPI": result.metrics.cpi,
                "branch misprediction rate":
                    result.metrics.branch_misprediction_rate,
                "branch stall share": shares["TB"],
                "L1I stall share": shares["TL1I"],
                "rows": float(len(result.rows)),
            }
        data[layout] = per_point
    return data


def _tpcd_matrix(runner: ExperimentRunner, options: ArtifactOptions) -> Dict:
    data = figures.tpcd_matrix(runner, workers=options.workers).data
    if options.adaptivity:
        for layout in LAYOUTS:
            result = runner.tpcd_grid_result(layout, engine="vectorized",
                                             adaptivity="greedy")
            data[layout]["vectorized/adaptive"] = {
                "cycles": float(result.breakdown.total_cycles),
                "CPI": result.metrics.cpi,
                "memory stall share": result.breakdown.shares()["memory"],
                "instructions": float(result.counters.get("INST_RETIRED")),
                "routine invocations": float(result.total_routine_invocations),
            }
    return data


def _tpcc_matrix(runner: ExperimentRunner, options: ArtifactOptions) -> Dict:
    return figures.tpcc_matrix(runner, workers=options.workers).data


def _simple(figure_fn) -> Callable[[ExperimentRunner, ArtifactOptions], Dict]:
    def build(runner: ExperimentRunner, options: ArtifactOptions) -> Dict:
        return figure_fn(runner).data
    return build


#: Every artifact the pipeline produces, in paper order.
REGISTRY: Tuple[ArtifactSpec, ...] = (
    ArtifactSpec("table_4_1", "Cache characteristics",
                 ("cache level", "characteristic", "value"),
                 lambda runner, options: figures.table_4_1(runner.config.spec).data),
    ArtifactSpec("table_4_2", "Measurement methods",
                 ("component", "field", "value"),
                 lambda runner, options: figures.table_4_2().data),
    ArtifactSpec("figure_5_1", "Execution time breakdown",
                 ("layout", "query", "system", "component", "share"),
                 lambda runner, options:
                 figures.figure_5_1(runner, layouts=LAYOUTS).data),
    ArtifactSpec("figure_5_2", "Memory stall breakdown",
                 ("layout", "query", "system", "component", "share"),
                 lambda runner, options:
                 figures.figure_5_2(runner, layouts=LAYOUTS).data),
    ArtifactSpec("figure_5_3", "Instructions retired per record",
                 ("layout", "system", "query", "instructions_per_record"),
                 _per_layout(figures.figure_5_3)),
    ArtifactSpec("figure_5_4_left", "Branch misprediction rates",
                 ("layout", "system", "query", "misprediction_rate"),
                 _per_layout(figures.figure_5_4_left)),
    ArtifactSpec("figure_5_4_right", "Branch and L1I stalls vs selectivity",
                 ("layout", "selectivity", "component", "share"),
                 _per_layout(figures.figure_5_4_right)),
    ArtifactSpec("figure_5_5", "Resource stall split",
                 ("layout", "component", "system", "query", "share"),
                 _per_layout(figures.figure_5_5)),
    ArtifactSpec("figure_5_6", "CPI breakdown, micro vs TPC-D",
                 ("layout", "workload", "system", "component", "cpi"),
                 _per_layout(figures.figure_5_6)),
    ArtifactSpec("figure_5_7", "Cache stalls, micro vs TPC-D",
                 ("layout", "workload", "system", "component", "share"),
                 _per_layout(figures.figure_5_7)),
    ArtifactSpec("tpcc_summary", "Section 5.5 TPC-C observations",
                 ("layout", "system", "metric", "value"),
                 _per_layout(figures.tpcc_summary)),
    ArtifactSpec("record_size_sweep", "Section 5.2 record-size sweep",
                 ("layout", "system", "record_size", "metric", "value"),
                 _per_layout(figures.record_size_sweep)),
    ArtifactSpec("selectivity_sweep", "Selectivity sweep (System D, SRS)",
                 ("layout", "selectivity", "metric", "value"),
                 _selectivity_sweep),
    ArtifactSpec("tpcd_matrix", "TPC-D under the modern engine matrix",
                 ("layout", "arm", "metric", "value"), _tpcd_matrix),
    ArtifactSpec("tpcc_matrix", "TPC-C under the modern engine matrix",
                 ("layout", "arm", "metric", "value"), _tpcc_matrix),
    ArtifactSpec("engine_ablation", "Tuple vs vectorized execution",
                 ("query", "arm", "metric", "value"),
                 _simple(figures.engine_ablation)),
    ArtifactSpec("headline_claims", "Section 1 headline claims",
                 ("claim", "value"), _simple(figures.headline_claims)),
)


def spec_by_name(name: str) -> ArtifactSpec:
    for spec in REGISTRY:
        if spec.name == name:
            return spec
    raise ArtifactError(f"unknown artifact {name!r}")


def expected_csvs(out_dir: Path) -> List[Path]:
    """The CSV files a complete artifact run must produce (for CI checks)."""
    return [out_dir / "csv" / f"{spec.name}.csv" for spec in REGISTRY]


# --------------------------------------------------------------------- stages
def raw_path(out_dir: Path) -> Path:
    return out_dir / "raw" / "measurements.json"


def run_all(out_dir: Path, scale: str = "full",
            options: ArtifactOptions = ArtifactOptions(),
            echo=print) -> Path:
    """Stage 1: measure every artifact and persist the raw JSON."""
    runner = ExperimentRunner(config_for_scale(scale))
    raw: Dict[str, Dict] = {}
    for spec in REGISTRY:
        echo(f"[artifact] measuring {spec.name} ...")
        data = spec.build(runner, options)
        if not data:
            raise ArtifactError(f"artifact {spec.name} produced no data")
        raw[spec.name] = {"title": spec.title, "columns": list(spec.columns),
                          "scale": scale, "data": data}
    path = raw_path(out_dir)
    artifact_io.write_raw(path, raw)
    echo(f"[artifact] wrote {path} ({len(raw)} artifacts)")
    return path


def emit_csvs(out_dir: Path, echo=print) -> List[Path]:
    """Stage 2: derive one CSV per artifact from the raw JSON and verify."""
    path = raw_path(out_dir)
    if not path.exists():
        raise ArtifactError(f"{path} not found -- run the run_all stage first")
    raw = artifact_io.read_raw(path)
    missing = [spec.name for spec in REGISTRY if spec.name not in raw]
    if missing:
        raise ArtifactError(f"raw measurements incomplete, missing: {missing}")
    written: List[Path] = []
    for spec in REGISTRY:
        rows = artifact_io.flatten(raw[spec.name]["data"], len(spec.columns) - 1)
        if not rows:
            raise ArtifactError(f"artifact {spec.name} flattened to zero rows")
        csv_path = out_dir / "csv" / f"{spec.name}.csv"
        artifact_io.write_csv(csv_path, spec.columns, rows)
        written.append(csv_path)
        echo(f"[artifact] wrote {csv_path} ({len(rows)} rows)")
    empty = [str(p) for p in written if p.stat().st_size == 0]
    if empty:
        raise ArtifactError(f"empty CSVs: {empty}")
    return written


def render_plots(out_dir: Path, echo=print) -> List[Path]:
    """Stage 3 (optional): render PNG charts from the raw JSON."""
    path = raw_path(out_dir)
    if not path.exists():
        raise ArtifactError(f"{path} not found -- run the run_all stage first")
    if not artifact_io.matplotlib_available():
        echo("[artifact] matplotlib not installed -- skipping plots "
             "(CSVs are the canonical artifact)")
        return []
    raw = artifact_io.read_raw(path)
    rendered: List[Path] = []
    for spec in REGISTRY:  # pragma: no cover - needs matplotlib
        if spec.name not in raw:
            continue
        rows = artifact_io.flatten(raw[spec.name]["data"], len(spec.columns) - 1)
        png = out_dir / "plots" / f"{spec.name}.png"
        if artifact_io.render_plot(spec.name, spec.title, spec.columns, rows, png):
            rendered.append(png)
            echo(f"[artifact] wrote {png}")
    return rendered  # pragma: no cover - needs matplotlib
