"""Experiment runner: shared measurement infrastructure for every figure.

The paper's figures all draw on a small set of underlying measurements (the
three microbenchmark queries on four systems, a selectivity sweep, a record
size sweep, the TPC-D suite and the TPC-C mix).  :class:`ExperimentRunner`
performs each of those measurements exactly once, caches the result, and lets
every figure function pull what it needs -- so regenerating the whole figure
set costs one pass over the workloads rather than one pass per figure.

Scale and warm-up policy
------------------------
The default configuration runs the microbenchmark at 1/200 of the paper's
row counts (R = 6,000 hundred-byte rows = ~600 KB, still larger than the
512 KB L2) and measures a single cold-cache execution per query
(``warmup_runs=0``).  The paper warms its caches with repeated runs, which is
harmless at full scale because every query's working set dwarfs the L2; at
reduced scale a warm-up run would park the indexed selection's (10% of R)
working set inside the L2 and erase exactly the effect the paper reports, so
the runner measures the first execution instead.  The substitution is
recorded in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.breakdown import ExecutionBreakdown
from ..analysis.metrics import QueryMetrics, compute_metrics
from ..engine.database import Database
from ..engine.session import QueryResult, Session
from ..execution.parallel import fork_available
from ..hardware.os_interference import OSInterferenceConfig
from ..hardware.specs import PENTIUM_II_XEON, ProcessorSpec
from ..systems.profile import SystemProfile
from ..systems.vendors import ALL_SYSTEMS, oltp_variant, system_by_key
from ..workloads.micro import MicroWorkload, MicroWorkloadConfig
from ..workloads.sweeps import RECORD_SIZE_POINTS, SELECTIVITY_POINTS
from ..workloads.tpcc import TPCCConfig, TPCCWorkload
from ..workloads.tpcd import TPCDConfig, TPCDWorkload

#: The three microbenchmark query kinds, using the paper's abbreviations.
QUERY_KINDS = ("SRS", "IRS", "SJ")


#: Runner inherited by forked grid workers (set only around a dispatch).
_GRID_RUNNER: Optional["ExperimentRunner"] = None


def _grid_cell_task(cell: Tuple[str, str, str], system_key: str) -> "QueryResult":
    """Worker entry point: measure one grid cell on the forked runner."""
    runner = _GRID_RUNNER
    engine, layout, kind = cell
    return runner.grid_cell(engine, layout, kind, system_key=system_key)

#: Systems measured for the TPC-D comparison (the paper ran A, B and D).
TPCD_SYSTEMS = ("A", "B", "D")


def _env_scale(default: float) -> float:
    """Allow ``REPRO_BENCH_SCALE`` to shrink/grow the benchmark workloads."""
    value = os.environ.get("REPRO_BENCH_SCALE")
    if not value:
        return default
    return float(value) * default


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by every experiment."""

    micro: MicroWorkloadConfig = field(default_factory=lambda: MicroWorkloadConfig(
        scale=_env_scale(MicroWorkloadConfig().scale)))
    tpcd: TPCDConfig = field(default_factory=lambda: TPCDConfig(
        lineitem_rows=max(int(_env_scale(1.0) * 5_000), 500),
        orders_rows=500, part_rows=200, supplier_rows=50))
    tpcc: TPCCConfig = field(default_factory=lambda: TPCCConfig(
        scale=_env_scale(TPCCConfig().scale)))
    spec: ProcessorSpec = PENTIUM_II_XEON
    warmup_runs: int = 0
    selectivity: float = 0.10
    os_interference: bool = True
    tpcc_transactions: int = 120
    selectivity_points: Tuple[float, ...] = SELECTIVITY_POINTS
    record_size_points: Tuple[int, ...] = RECORD_SIZE_POINTS
    record_size_systems: Tuple[str, ...] = ("C", "D")
    #: Morsel parallelism inside each measured session (the ``workers=N``
    #: exchange; simulated counts are identical for every N by design).
    parallelism: int = 1
    #: Process-level parallelism across independent grid cells
    #: (engine x layout x query); cells are dispatched to a fork-based
    #: pool that inherits the warmed database builds.
    grid_workers: int = 1

    def os_config(self) -> Optional[OSInterferenceConfig]:
        return OSInterferenceConfig() if self.os_interference else None


@dataclass
class TPCCResult:
    """Measurement of one system's TPC-C run."""

    system: str
    breakdown: ExecutionBreakdown
    metrics: QueryMetrics
    transactions: int


class ExperimentRunner:
    """Lazily measures and caches every experiment the figures need."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._micro_db: Optional[Database] = None
        self._micro_workload: Optional[MicroWorkload] = None
        self._tpcd_db: Optional[Database] = None
        self._tpcd_workload: Optional[TPCDWorkload] = None
        self._micro_results: Dict[Tuple[str, str, float, int, str, Optional[str]],
                                  Optional[QueryResult]] = {}
        self._record_size_results: Dict[Tuple[str, int], QueryResult] = {}
        self._record_size_dbs: Dict[int, Tuple[Database, MicroWorkload]] = {}
        self._tpcd_results: Dict[str, QueryResult] = {}
        self._tpcc_results: Dict[str, TPCCResult] = {}
        # One warmed (R + S + selection index) build per page layout, shared
        # by every grid cell; the address-space checkpoint taken right after
        # the build lets each cell's session roll the allocator back, so a
        # cell measured against the cached build is bit-identical to one
        # measured against a fresh build.
        self._grid_dbs: Dict[str, Tuple[Database, Dict[str, int]]] = {}
        self._grid_results: Dict[Tuple[str, str, str, str], QueryResult] = {}
        self._adaptive_results: Dict[Tuple[str, str, str], QueryResult] = {}
        # Warmed TPC builds, one per page layout, shared by every engine/
        # charge-mode/worker/backend arm of the TPC-under-the-modern-engine
        # matrix.  TPC-D is read-only, so the address-space checkpoint
        # suffices; the TPC-C mix *updates* records, so its entry also
        # carries a data checkpoint (raw page bytes) restored before every
        # measurement -- each arm sees the freshly built contents.
        self._tpcd_grid_dbs: Dict[str, Tuple[Database, Dict[str, int]]] = {}
        self._tpcd_grid_results: Dict[Tuple, QueryResult] = {}
        self._tpcc_grid_dbs: Dict[str, Tuple[Database, TPCCWorkload,
                                             Dict[str, int], Dict]] = {}
        self._tpcc_grid_results: Dict[Tuple, TPCCResult] = {}
        # Per-(record size, layout) warmed builds for the layout-pinned
        # record-size sweep (each point is its own database).
        self._record_size_grid_dbs: Dict[Tuple[int, str],
                                         Tuple[Database, MicroWorkload,
                                               Dict[str, int]]] = {}

    # ----------------------------------------------------------- workloads
    @property
    def micro_workload(self) -> MicroWorkload:
        if self._micro_workload is None:
            self._micro_workload = MicroWorkload(self.config.micro)
        return self._micro_workload

    @property
    def micro_database(self) -> Database:
        if self._micro_db is None:
            workload = self.micro_workload
            self._micro_db = workload.build()
            workload.create_selection_index(self._micro_db)
        return self._micro_db

    @property
    def tpcd_workload(self) -> TPCDWorkload:
        if self._tpcd_workload is None:
            self._tpcd_workload = TPCDWorkload(self.config.tpcd)
        return self._tpcd_workload

    @property
    def tpcd_database(self) -> Database:
        if self._tpcd_db is None:
            self._tpcd_db = self.tpcd_workload.build()
        return self._tpcd_db

    def systems(self) -> Tuple[SystemProfile, ...]:
        return ALL_SYSTEMS

    # ------------------------------------------------------------- sessions
    def _session(self, profile: SystemProfile, database: Database,
                 engine: str = "tuple") -> Session:
        return Session(database, profile, spec=self.config.spec,
                       os_interference=self.config.os_config(), engine=engine)

    # ------------------------------------------------------- micro results
    def micro_result(self, system_key: str, kind: str,
                     selectivity: Optional[float] = None,
                     record_size: Optional[int] = None,
                     engine: str = "tuple",
                     layout: Optional[str] = None) -> Optional[QueryResult]:
        """Measure one (system, query kind) point of the microbenchmark.

        Returns ``None`` for System A's indexed range selection: A's
        optimiser does not use the index, so -- exactly as in Figure 5.1 --
        there is no IRS measurement for it.  ``engine`` selects the
        tuple-at-a-time executor (what the paper's systems do) or the
        vectorized batch executor for the engine-ablation experiment.

        ``layout`` pins the page layout (``"nsm"``/``"pax"``) and routes the
        measurement through the warmed-build grid machinery: one shared
        build per layout, address space rolled back to the post-build
        checkpoint before each session, so every point measures against
        fresh-build-identical state.  ``None`` (the default) preserves the
        historical discipline -- the shared NSM database with sequential
        session allocations -- so existing figures reproduce bit-identically.
        """
        if kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}")
        selectivity = self.config.selectivity if selectivity is None else selectivity
        record_size = self.config.micro.record_size if record_size is None else record_size
        key = (system_key.upper(), kind, round(selectivity, 4), record_size,
               engine, layout)
        if key in self._micro_results:
            return self._micro_results[key]

        profile = system_by_key(system_key)
        if kind == "IRS" and not profile.uses_index_for_range_selection:
            self._micro_results[key] = None
            return None

        if layout is not None:
            if record_size != self.config.micro.record_size:
                database, workload, checkpoint = \
                    self._record_size_grid_database(record_size, layout)
            else:
                workload = self.micro_workload
                database, checkpoint = self.grid_database(layout)
            database.address_space.restore(checkpoint)
            session = Session(database, profile, spec=self.config.spec,
                              os_interference=self.config.os_config(),
                              engine=engine)
        elif record_size == self.config.micro.record_size:
            database, workload = self.micro_database, self.micro_workload
            session = self._session(profile, database, engine=engine)
        else:
            database, workload = self._record_size_database(record_size)
            session = self._session(profile, database, engine=engine)
        warmup_query = None
        warmup_runs = self.config.warmup_runs
        if kind == "SRS":
            query = workload.sequential_range_selection(selectivity)
        elif kind == "IRS":
            query = workload.indexed_range_selection(selectivity)
            # Warm the index-selection code paths and inner index nodes with a
            # probe over a *disjoint* key window, so the measured window's heap
            # records stay cold (as they are at the paper's full scale, where
            # 10% of R is ~23x the L2 capacity).
            warmup_query = workload.indexed_range_selection(selectivity, offset=1.0)
            warmup_runs = max(warmup_runs, 1)
        else:
            query = workload.sequential_join()
        result = session.execute(query, warmup_runs=warmup_runs,
                                 warmup_query=warmup_query)
        self._micro_results[key] = result
        return result

    def micro_results(self, kinds: Sequence[str] = QUERY_KINDS,
                      systems: Optional[Sequence[str]] = None
                      ) -> Dict[str, Dict[str, Optional[QueryResult]]]:
        """``{kind: {system: result-or-None}}`` for the default selectivity."""
        systems = [p.key for p in ALL_SYSTEMS] if systems is None else list(systems)
        return {kind: {system: self.micro_result(system, kind) for system in systems}
                for kind in kinds}

    def selectivity_series(self, system_key: str = "D", kind: str = "SRS",
                           selectivities: Optional[Sequence[float]] = None,
                           layout: Optional[str] = None
                           ) -> Dict[float, QueryResult]:
        """Measurements across the selectivity sweep (Figure 5.4 right).

        ``layout`` pins the page layout and measures every point against the
        shared warmed grid build for that layout (see :meth:`micro_result`);
        ``None`` keeps the historical shared-NSM path bit-identical.
        """
        selectivities = self.config.selectivity_points if selectivities is None else selectivities
        out: Dict[float, QueryResult] = {}
        for selectivity in selectivities:
            result = self.micro_result(system_key, kind, selectivity=selectivity,
                                       layout=layout)
            if result is not None:
                out[selectivity] = result
        return out

    # -------------------------------------------------- record-size results
    def _record_size_database(self, record_size: int) -> Tuple[Database, MicroWorkload]:
        if record_size not in self._record_size_dbs:
            workload = MicroWorkload(replace(self.config.micro, record_size=record_size))
            database = workload.build(include_s=False)
            workload.create_selection_index(database)
            self._record_size_dbs[record_size] = (database, workload)
        return self._record_size_dbs[record_size]

    def _record_size_grid_database(self, record_size: int, layout: str
                                   ) -> Tuple[Database, MicroWorkload, Dict[str, int]]:
        """Warmed layout-pinned build for one record-size sweep point.

        Mirrors :meth:`_record_size_database` but builds with the requested
        page layout and takes the post-build address-space checkpoint, so
        every session against the point rolls back to fresh-build state --
        the sweep's measurements cannot depend on point build order.
        """
        key = (record_size, layout)
        cached = self._record_size_grid_dbs.get(key)
        if cached is None:
            workload = MicroWorkload(replace(self.config.micro, record_size=record_size))
            database = workload.build(include_s=False, layout_style=layout)
            workload.create_selection_index(database)
            cached = (database, workload, database.address_space.checkpoint())
            self._record_size_grid_dbs[key] = cached
        return cached

    def record_size_series(self, systems: Optional[Sequence[str]] = None,
                           record_sizes: Optional[Sequence[int]] = None,
                           layout: Optional[str] = None
                           ) -> Dict[Tuple[str, int], QueryResult]:
        """Sequential-selection measurements across record sizes (Section 5.2).

        ``layout`` pins the page layout; each sweep point then measures
        against its own warmed checkpoint-restored build for that layout.
        """
        systems = self.config.record_size_systems if systems is None else systems
        record_sizes = self.config.record_size_points if record_sizes is None else record_sizes
        out: Dict[Tuple[str, int], QueryResult] = {}
        for system in systems:
            for size in record_sizes:
                result = self.micro_result(system, "SRS", record_size=size,
                                           layout=layout)
                assert result is not None
                out[(system, size)] = result
        return out

    # ----------------------------------------------------------- DSS / OLTP
    def tpcd_result(self, system_key: str) -> QueryResult:
        """Average breakdown of the 17-query DSS suite for one system."""
        key = system_key.upper()
        if key not in self._tpcd_results:
            profile = system_by_key(key)
            session = self._session(profile, self.tpcd_database)
            result = session.execute_suite(self.tpcd_workload.queries(),
                                           warmup_runs=0, label="TPC-D")
            self._tpcd_results[key] = result
        return self._tpcd_results[key]

    def tpcc_result(self, system_key: str) -> TPCCResult:
        """TPC-C-style OLTP measurement for one system (OLTP profile variant)."""
        key = system_key.upper()
        if key not in self._tpcc_results:
            profile = oltp_variant(system_by_key(key))
            workload = TPCCWorkload(self.config.tpcc)
            database = workload.build()
            session = self._session(profile, database)
            _, breakdown, metrics, executed = workload.run(
                session, transactions=self.config.tpcc_transactions,
                warmup_transactions=max(self.config.tpcc_transactions // 10, 5))
            self._tpcc_results[key] = TPCCResult(system=key, breakdown=breakdown,
                                                 metrics=metrics, transactions=executed)
        return self._tpcc_results[key]

    # ------------------------------------------------- TPC warmed-build grid
    def tpcd_grid_database(self, layout: str) -> Tuple[Database, Dict[str, int]]:
        """The warmed TPC-D build for one page layout, plus its checkpoint.

        Built exactly once per layout; every arm of the TPC-under-the-
        modern-engine matrix shares it.  The suite is read-only, so the
        address-space checkpoint alone restores fresh-build state.
        """
        cached = self._tpcd_grid_dbs.get(layout)
        if cached is None:
            database = self.tpcd_workload.build(layout_style=layout)
            cached = (database, database.address_space.checkpoint())
            self._tpcd_grid_dbs[layout] = cached
        return cached

    def tpcd_grid_result(self, layout: str, system_key: str = "B",
                         engine: str = "vectorized",
                         charge_mode: Optional[str] = None,
                         workers: int = 1,
                         kernel_backend: Optional[str] = None,
                         adaptivity: str = "off") -> QueryResult:
        """The 17-query TPC-D suite on the warmed grid, one engine-matrix arm.

        Restores the layout's post-build checkpoint, then runs the full
        suite exactly like :meth:`tpcd_result` (``warmup_runs=0``, averaged
        label ``"TPC-D"``) but through the modern-engine knobs: ``engine``
        (tuple/vectorized), ``charge_mode`` (``per_address``/``span``),
        ``workers`` (morsel parallelism) and ``kernel_backend``.  Counts are
        identical across charge modes, worker counts and backends by design;
        engines differ (that is the ablation).
        """
        key = (layout, system_key.upper(), engine, charge_mode, workers,
               kernel_backend, adaptivity)
        cached = self._tpcd_grid_results.get(key)
        if cached is not None:
            return cached
        database, checkpoint = self.tpcd_grid_database(layout)
        database.address_space.restore(checkpoint)
        kwargs = {}
        if charge_mode is not None:
            kwargs["charge_mode"] = charge_mode
        if kernel_backend is not None:
            kwargs["kernel_backend"] = kernel_backend
        with Session(database, system_by_key(system_key), spec=self.config.spec,
                     os_interference=self.config.os_config(), engine=engine,
                     parallelism=workers, adaptivity=adaptivity,
                     adaptive_joins=(adaptivity != "off"),
                     **kwargs) as session:
            result = session.execute_suite(self.tpcd_workload.queries(),
                                           warmup_runs=0, label="TPC-D")
        self._tpcd_grid_results[key] = result
        return result

    def tpcc_grid_database(self, layout: str
                           ) -> Tuple[Database, TPCCWorkload, Dict[str, int], Dict]:
        """The warmed TPC-C build for one layout, plus both checkpoints.

        The transaction mix *updates* records in place, so fresh-build
        state needs two restores: the address-space checkpoint (allocation
        cursors) and the data checkpoint (raw page bytes snapshotted right
        after the build).  Slot directories and indexes are untouched by
        the mix's absolute-value updates, so page bytes are sufficient.
        """
        cached = self._tpcc_grid_dbs.get(layout)
        if cached is None:
            workload = TPCCWorkload(self.config.tpcc)
            database = workload.build(layout_style=layout)
            cached = (database, workload, database.address_space.checkpoint(),
                      database.data_checkpoint())
            self._tpcc_grid_dbs[layout] = cached
        return cached

    def tpcc_grid_result(self, layout: str, system_key: str = "B",
                         engine: str = "vectorized",
                         charge_mode: Optional[str] = None,
                         workers: int = 1,
                         kernel_backend: Optional[str] = None) -> TPCCResult:
        """The TPC-C mix on the warmed grid, one engine-matrix arm.

        Restores both the address-space checkpoint *and* the data
        checkpoint before driving the mix, so every arm measures the
        freshly built table contents no matter which update-heavy arms ran
        before it -- the warmed-build discipline extended to a mutating
        workload.  Drive parameters match :meth:`tpcc_result` exactly
        (OLTP profile variant, configured transaction count, 10% warm-up).
        """
        key = (layout, system_key.upper(), engine, charge_mode, workers,
               kernel_backend)
        cached = self._tpcc_grid_results.get(key)
        if cached is not None:
            return cached
        database, workload, checkpoint, data = self.tpcc_grid_database(layout)
        database.address_space.restore(checkpoint)
        database.data_restore(data)
        profile = oltp_variant(system_by_key(system_key))
        kwargs = {}
        if charge_mode is not None:
            kwargs["charge_mode"] = charge_mode
        if kernel_backend is not None:
            kwargs["kernel_backend"] = kernel_backend
        with Session(database, profile, spec=self.config.spec,
                     os_interference=self.config.os_config(), engine=engine,
                     parallelism=workers, **kwargs) as session:
            _, breakdown, metrics, executed = workload.run(
                session, transactions=self.config.tpcc_transactions,
                warmup_transactions=max(self.config.tpcc_transactions // 10, 5))
        result = TPCCResult(system=system_key.upper(), breakdown=breakdown,
                            metrics=metrics, transactions=executed)
        self._tpcc_grid_results[key] = result
        return result

    # -------------------------------------------------- engine x layout grid
    def grid_database(self, layout: str) -> Tuple[Database, Dict[str, int]]:
        """The warmed microbenchmark build for one page layout.

        Built exactly once per layout (R, S, selection index) and shared by
        every grid cell; returns the database plus the address-space
        checkpoint taken immediately after the build.
        """
        cached = self._grid_dbs.get(layout)
        if cached is None:
            workload = self.micro_workload
            database = workload.build(layout_style=layout)
            workload.create_selection_index(database)
            cached = (database, database.address_space.checkpoint())
            self._grid_dbs[layout] = cached
        return cached

    def grid_session(self, engine: str, layout: str,
                     system_key: str = "B",
                     adaptivity: str = "off",
                     parallelism: Optional[int] = None,
                     adaptive_joins: bool = False,
                     adaptive_batching: bool = False,
                     batch_size: Optional[int] = None,
                     memory_budget_bytes: Optional[int] = None,
                     kernel_backend: Optional[str] = None,
                     tracing: Optional[str] = None) -> Session:
        """A measurement session against the cached grid build.

        The address space is rolled back to the post-build checkpoint
        first, so the session's transient allocations (code layout,
        workspace) land at the same addresses as against a fresh build --
        simulated counts cannot depend on how many cells ran before.
        ``adaptivity`` threads the runtime-adaptation mode through to the
        session (used by the adaptivity experiment cells), with
        ``adaptive_joins`` / ``adaptive_batching`` enabling the
        per-decision switches and ``batch_size`` pinning the configured
        vector size (the batch-size cells deliberately start from a wrong
        one); ``parallelism`` overrides the config knob per session (the
        bench pins adaptive cells to serial, where their cycles are
        deterministic).  ``memory_budget_bytes`` caps the vectorized hash
        join's working memory (the budget-sweep cells express it relative
        to the build side's ``s_bytes``).  ``kernel_backend`` selects the
        data-plane kernel implementation (``None`` keeps the session
        default, ``auto``).  ``tracing`` enables per-operator query
        tracing (:mod:`repro.observability`; ``None`` keeps the default,
        ``off``).
        """
        database, checkpoint = self.grid_database(layout)
        database.address_space.restore(checkpoint)
        if parallelism is None:
            parallelism = self.config.parallelism
        kwargs = {}
        if batch_size is not None:
            kwargs["batch_size"] = batch_size
        if memory_budget_bytes is not None:
            kwargs["memory_budget_bytes"] = memory_budget_bytes
        if kernel_backend is not None:
            kwargs["kernel_backend"] = kernel_backend
        if tracing is not None:
            kwargs["tracing"] = tracing
        return Session(database, system_by_key(system_key), spec=self.config.spec,
                       os_interference=self.config.os_config(), engine=engine,
                       parallelism=parallelism,
                       adaptivity=adaptivity,
                       adaptive_joins=adaptive_joins,
                       adaptive_batching=adaptive_batching,
                       **kwargs)

    def serving_server(self, layout: str, *, system_key: str = "B",
                       max_concurrency: int = 8,
                       plan_cache: bool = True,
                       result_cache: bool = True,
                       shared_scans: bool = True,
                       engine: str = "vectorized",
                       memory_budget_bytes: Optional[int] = None,
                       kernel_backend: Optional[str] = None,
                       tracing: Optional[str] = None):
        """A serving :class:`~repro.serving.server.Server` over the cached
        grid build for ``layout``.

        The server restores the build's checkpoint before every query it
        serves, so — like :meth:`grid_session` — serving cells measure
        against fresh-build-identical state regardless of what ran before.
        With ``max_concurrency=1`` and all three layers disabled the server
        degenerates to back-to-back solo sessions (the bench's serial
        serving baseline).
        """
        from ..serving import Server
        database, checkpoint = self.grid_database(layout)
        kwargs = {}
        if kernel_backend is not None:
            kwargs["kernel_backend"] = kernel_backend
        if tracing is not None:
            kwargs["tracing"] = tracing
        return Server(database, checkpoint, system_by_key(system_key),
                      spec=self.config.spec,
                      os_interference=self.config.os_config(),
                      max_concurrency=max_concurrency,
                      plan_cache=plan_cache, result_cache=result_cache,
                      shared_scans=shared_scans, engine=engine,
                      memory_budget_bytes=memory_budget_bytes, **kwargs)

    def grid_cell(self, engine: str, layout: str, kind: str,
                  system_key: str = "B") -> QueryResult:
        """Measure one engine x layout x query cell (cold, warmup_runs=0)."""
        key = (engine, layout, kind, system_key.upper())
        cached = self._grid_results.get(key)
        if cached is not None:
            return cached
        if kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}")
        workload = self.micro_workload
        if kind == "SRS":
            query = workload.sequential_range_selection()
        elif kind == "IRS":
            query = workload.indexed_range_selection()
        else:
            query = workload.sequential_join()
        with self.grid_session(engine, layout, system_key) as session:
            result = session.execute(query, warmup_runs=0)
        self._grid_results[key] = result
        return result

    # ------------------------------------------------- adaptivity experiment
    def adaptive_cell(self, layout: str, adaptivity: str,
                      system_key: str = "B") -> QueryResult:
        """Measure the skewed-conjunct selection under one adaptivity mode.

        Runs the vectorized engine on the shared warmed grid build
        (checkpoint-restored, cold caches, ``warmup_runs=0``) so the only
        difference between two cells of the same layout is the conjunct
        evaluation policy: ``off`` is the bit-identical legacy path,
        ``static`` is adaptive charging in planner order (the control arm),
        ``greedy``/``epsilon`` reorder from observed selectivities.
        """
        key = (layout, adaptivity, system_key.upper())
        cached = self._adaptive_results.get(key)
        if cached is not None:
            return cached
        query = self.micro_workload.skewed_conjunct_selection()
        with self.grid_session("vectorized", layout, system_key,
                               adaptivity=adaptivity) as session:
            result = session.execute(query, warmup_runs=0)
        self._adaptive_results[key] = result
        return result

    def adaptive_grid(self, layouts: Sequence[str] = ("nsm", "pax"),
                      modes: Sequence[str] = ("off", "static", "greedy",
                                              "epsilon"),
                      system_key: str = "B"
                      ) -> Dict[Tuple[str, str], QueryResult]:
        """Measure the full layout x adaptivity-mode grid of the experiment."""
        return {(layout, mode): self.adaptive_cell(layout, mode, system_key)
                for layout in layouts for mode in modes}

    def adaptive_join_cell(self, layout: str, adaptivity: str,
                           system_key: str = "B") -> QueryResult:
        """Measure the skewed (planner-wrong) join under one adaptivity mode.

        The skewed join pins the hash build side to R, the 30x larger
        relation (a stale-statistics misestimate); ``adaptive_joins`` is
        enabled for every non-``off`` mode, so ``static`` is the
        cycle-identical control arm (the policy never flips) and ``greedy``
        flips to build on S.  Measured with ``warmup_runs=1``: the warm-up
        execution populates the collector's cardinality observations --
        the paper's warm-unit discipline, and the regime where join-side
        selection flips *before* any build work is wasted.
        """
        key = (layout, adaptivity, system_key.upper(), "join")
        cached = self._adaptive_results.get(key)
        if cached is not None:
            return cached
        query = self.micro_workload.skewed_join()
        with self.grid_session("vectorized", layout, system_key,
                               adaptivity=adaptivity,
                               adaptive_joins=(adaptivity != "off")) as session:
            result = session.execute(query, warmup_runs=1)
        self._adaptive_results[key] = result
        return result

    def adaptive_batch_cell(self, layout: str, adaptivity: str,
                            system_key: str = "B",
                            batch_size: int = 32) -> QueryResult:
        """Measure the 50% selection with a deliberately wrong vector size.

        ``adaptive_batching`` is enabled for every non-``off`` mode:
        ``static`` runs the same cross-page scan structure at the fixed
        (wrong) size -- the control arm -- while ``greedy`` walks the
        bounded ladder from observed L1D pressure and settles on the
        largest rung whose misses-per-row still fits.
        """
        key = (layout, adaptivity, system_key.upper(), "batch")
        cached = self._adaptive_results.get(key)
        if cached is not None:
            return cached
        query = self.micro_workload.sequential_range_selection(0.5)
        with self.grid_session("vectorized", layout, system_key,
                               adaptivity=adaptivity,
                               adaptive_batching=(adaptivity != "off"),
                               batch_size=batch_size) as session:
            result = session.execute(query, warmup_runs=0)
        self._adaptive_results[key] = result
        return result

    def micro_grid(self,
                   engines: Sequence[str] = ("tuple", "vectorized"),
                   layouts: Sequence[str] = ("nsm", "pax"),
                   kinds: Sequence[str] = QUERY_KINDS,
                   system_key: str = "B",
                   grid_workers: Optional[int] = None
                   ) -> Dict[Tuple[str, str, str], QueryResult]:
        """Measure the full engine x layout x query grid.

        Cells are independent measurements (each rolls the shared warmed
        build back to its post-build checkpoint), so they can be dispatched
        to a fork-based process pool: ``grid_workers`` (defaulting to the
        config knob) > 1 fans cells out to worker processes that inherit
        the warmed builds through fork.  Cell results are identical under
        serial and parallel dispatch.
        """
        cells = [(engine, layout, kind) for engine in engines
                 for layout in layouts for kind in kinds]
        workers = self.config.grid_workers if grid_workers is None else grid_workers
        pending = [cell for cell in cells
                   if (cell[0], cell[1], cell[2], system_key.upper())
                   not in self._grid_results]
        if workers > 1 and len(pending) > 1 and fork_available():
            # Build every needed database before forking so workers inherit
            # the warmed builds instead of rebuilding per process.
            for layout in {layout for _, layout, _ in pending}:
                self.grid_database(layout)
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            global _GRID_RUNNER
            _GRID_RUNNER = self
            try:
                with ProcessPoolExecutor(
                        max_workers=min(workers, len(pending)),
                        mp_context=multiprocessing.get_context("fork")) as pool:
                    futures = {cell: pool.submit(_grid_cell_task, cell, system_key)
                               for cell in pending}
                    for cell, future in futures.items():
                        key = (cell[0], cell[1], cell[2], system_key.upper())
                        self._grid_results[key] = future.result()
            finally:
                _GRID_RUNNER = None
        return {cell: self.grid_cell(*cell, system_key=system_key)
                for cell in cells}

    # -------------------------------------------------------------- helpers
    def selected_records(self, selectivity: Optional[float] = None) -> int:
        """Ground-truth count of records a range selection qualifies."""
        return self.micro_workload.expected_selected_rows(selectivity)

    def r_rows(self) -> int:
        return self.config.micro.r_rows
