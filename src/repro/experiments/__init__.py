"""Experiment harness: shared runner plus one function per reproduced figure/table."""

from .figures import (FigureResult, all_figures, engine_ablation, figure_5_1,
                      figure_5_2, figure_5_3, figure_5_4_left, figure_5_4_right,
                      figure_5_5, figure_5_6, figure_5_7, figure_adaptivity,
                      headline_claims, record_size_sweep, table_4_1, table_4_2,
                      tpcc_summary)
from .runner import (ExperimentConfig, ExperimentRunner, QUERY_KINDS, TPCCResult,
                     TPCD_SYSTEMS)

__all__ = [
    "FigureResult", "all_figures", "engine_ablation", "figure_5_1", "figure_5_2", "figure_5_3",
    "figure_5_4_left", "figure_5_4_right", "figure_5_5", "figure_5_6", "figure_5_7",
    "figure_adaptivity", "headline_claims", "record_size_sweep", "table_4_1", "table_4_2",
    "tpcc_summary",
    "ExperimentConfig", "ExperimentRunner", "QUERY_KINDS", "TPCCResult", "TPCD_SYSTEMS",
]
