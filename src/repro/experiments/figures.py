"""Reproductions of every table and figure in the paper's evaluation.

Each function measures (through a shared :class:`~repro.experiments.runner.
ExperimentRunner`) and returns a :class:`FigureResult` holding the structured
data plus a text rendering in the spirit of the original chart.  The
benchmark harness under ``benchmarks/`` calls one function per figure and
asserts the qualitative claims the paper attaches to it; EXPERIMENTS.md
records the rendered output next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.breakdown import MEMORY_COMPONENTS
from ..analysis.metrics import cpi_breakdown
from ..analysis.report import format_key_values, format_stacked_bars, format_table
from ..hardware.specs import PENTIUM_II_XEON, ProcessorSpec
from .runner import ExperimentRunner, QUERY_KINDS, TPCD_SYSTEMS

#: Labels used in the figures, matching the paper's legends.
GROUP_LABELS = ("Computation", "Memory stalls", "Branch mispredictions", "Resource stalls")
MEMORY_LABELS = ("L1 D-stalls", "L1 I-stalls", "L2 D-stalls", "L2 I-stalls", "ITLB stalls")
QUERY_TITLES = {"SRS": "10% Sequential Range Selection",
                "IRS": "10% Indexed Range Selection",
                "SJ": "Join"}


@dataclass
class FigureResult:
    """Structured data plus a text rendering for one reproduced figure/table."""

    name: str
    title: str
    data: Dict
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ---------------------------------------------------------------------------
# Tables 4.1 and 4.2 (platform configuration and measurement method)
# ---------------------------------------------------------------------------
def table_4_1(spec: ProcessorSpec = PENTIUM_II_XEON) -> FigureResult:
    """Table 4.1: cache characteristics of the simulated platform."""
    data = spec.table_4_1()
    rows = list(next(iter(data.values())).keys())
    text = format_table("Table 4.1: Pentium II Xeon cache characteristics",
                        rows, list(data.keys()),
                        {column: dict(values) for column, values in data.items()},
                        formatter=str)
    return FigureResult(name="table_4_1", title="Cache characteristics", data=data, text=text)


def table_4_2() -> FigureResult:
    """Table 4.2: how each stall-time component is measured."""
    from ..analysis.breakdown import TABLE_4_2 as methods
    data = {m.component: {"description": m.description, "method": m.method} for m in methods}
    lines = ["Table 4.2: Method of measuring each stall time component",
             "=" * 56]
    for method in methods:
        lines.append(f"{method.component:<7}{method.description:<38}{method.method}")
    return FigureResult(name="table_4_2", title="Measurement methods", data=data,
                        text="\n".join(lines))


# ---------------------------------------------------------------------------
# Figure 5.1: execution time breakdown into the four components
# ---------------------------------------------------------------------------
def figure_5_1(runner: ExperimentRunner,
               layouts: Optional[Sequence[str]] = None) -> FigureResult:
    """Execution-time breakdown (TC / TM / TB / TR) per system and query.

    ``layouts`` (e.g. ``("nsm", "pax")``) reproduces the breakdown per page
    layout through the warmed-build grid machinery, quantifying how much of
    each system's profile survives the PAX layout change; ``None`` (the
    default) keeps the paper's original NSM measurement discipline and
    output shape.
    """
    if layouts is not None:
        return _breakdown_by_layout(runner, layouts, "figure_5_1")
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    for kind in QUERY_KINDS:
        per_system: Dict[str, Dict[str, float]] = {}
        for profile in runner.systems():
            result = runner.micro_result(profile.key, kind)
            if result is None:
                continue
            shares = result.breakdown.shares()
            per_system[profile.key] = {
                "Computation": shares["computation"],
                "Memory stalls": shares["memory"],
                "Branch mispredictions": shares["branch"],
                "Resource stalls": shares["resource"],
            }
        data[kind] = per_system
        sections.append(format_table(
            f"Figure 5.1 ({QUERY_TITLES[kind]}): query execution time breakdown",
            list(GROUP_LABELS), list(per_system.keys()), per_system))
    return FigureResult(name="figure_5_1", title="Execution time breakdown",
                        data=data, text="\n\n".join(sections))


def _layout_naming(base: str, layout: Optional[str]) -> Tuple[str, str]:
    """``(figure name, title tag)`` for a layout-pinned figure variant.

    ``None`` keeps the legacy name (and an empty tag) so existing figure
    consumers see byte-identical output; a pinned layout suffixes the name
    and tags the rendered title.
    """
    if layout is None:
        return base, ""
    return f"{base}_{layout}", f" [{layout.upper()}]"


def _breakdown_by_layout(runner: ExperimentRunner, layouts: Sequence[str],
                         figure: str) -> FigureResult:
    """Per-layout variants of the Figure 5.1 / 5.2 breakdowns.

    Each (layout, kind, system) point is measured against the shared warmed
    build of that layout (address space checkpoint-restored per session), so
    points are fresh-build-identical and independent of measurement order.
    """
    data: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    sections = []
    label_by_component = dict(zip(MEMORY_COMPONENTS, MEMORY_LABELS))
    for layout in layouts:
        per_kind: Dict[str, Dict[str, Dict[str, float]]] = {}
        for kind in QUERY_KINDS:
            per_system: Dict[str, Dict[str, float]] = {}
            for profile in runner.systems():
                result = runner.micro_result(profile.key, kind, layout=layout)
                if result is None:
                    continue
                if figure == "figure_5_1":
                    shares = result.breakdown.shares()
                    per_system[profile.key] = {
                        "Computation": shares["computation"],
                        "Memory stalls": shares["memory"],
                        "Branch mispredictions": shares["branch"],
                        "Resource stalls": shares["resource"],
                    }
                else:
                    memory_shares = result.breakdown.memory_shares()
                    per_system[profile.key] = {
                        label_by_component[name]: value
                        for name, value in memory_shares.items()}
            per_kind[kind] = per_system
            labels = (list(GROUP_LABELS) if figure == "figure_5_1"
                      else list(MEMORY_LABELS))
            number = "5.1" if figure == "figure_5_1" else "5.2"
            what = ("query execution time breakdown" if figure == "figure_5_1"
                    else "memory stall time breakdown")
            sections.append(format_table(
                f"Figure {number} [{layout.upper()}] ({QUERY_TITLES[kind]}): {what}",
                labels, list(per_system.keys()), per_system))
        data[layout] = per_kind
    return FigureResult(name=f"{figure}_layouts",
                        title=("Execution time breakdown by layout"
                               if figure == "figure_5_1"
                               else "Memory stall breakdown by layout"),
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Figure 5.2: memory stall breakdown
# ---------------------------------------------------------------------------
def figure_5_2(runner: ExperimentRunner,
               layouts: Optional[Sequence[str]] = None) -> FigureResult:
    """Contributions of the five memory components to the memory stall time.

    ``layouts`` reproduces the breakdown per page layout (see
    :func:`figure_5_1`); the default keeps the original NSM discipline.
    """
    if layouts is not None:
        return _breakdown_by_layout(runner, layouts, "figure_5_2")
    label_by_component = dict(zip(MEMORY_COMPONENTS, MEMORY_LABELS))
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    for kind in QUERY_KINDS:
        per_system: Dict[str, Dict[str, float]] = {}
        for profile in runner.systems():
            result = runner.micro_result(profile.key, kind)
            if result is None:
                continue
            shares = result.breakdown.memory_shares()
            per_system[profile.key] = {label_by_component[name]: value
                                       for name, value in shares.items()}
        data[kind] = per_system
        sections.append(format_table(
            f"Figure 5.2 ({QUERY_TITLES[kind]}): memory stall time breakdown",
            list(MEMORY_LABELS), list(per_system.keys()), per_system))
    return FigureResult(name="figure_5_2", title="Memory stall breakdown",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Figure 5.3: instructions retired per record
# ---------------------------------------------------------------------------
def figure_5_3(runner: ExperimentRunner,
               layout: Optional[str] = None) -> FigureResult:
    """Instructions retired per record for each system and query.

    Following the paper's definitions: the sequential selection and the join
    divide by the number of records in R; the indexed selection divides by
    the number of *selected* records.  ``layout`` pins the page layout and
    measures through the warmed-build grid (see
    :meth:`~repro.experiments.runner.ExperimentRunner.micro_result`);
    ``None`` keeps the paper's NSM discipline bit-identical.
    """
    r_rows = runner.r_rows()
    selected = runner.selected_records()
    data: Dict[str, Dict[str, float]] = {}
    for profile in runner.systems():
        per_query: Dict[str, float] = {}
        for kind in QUERY_KINDS:
            result = runner.micro_result(profile.key, kind, layout=layout)
            if result is None:
                continue
            instructions = result.counters.get("INST_RETIRED")
            divisor = selected if kind == "IRS" else r_rows
            per_query[kind] = instructions / max(divisor, 1)
        data[profile.key] = per_query
    name, tag = _layout_naming("figure_5_3", layout)
    text = format_table(f"Figure 5.3{tag}: Instructions retired per record",
                        list(QUERY_KINDS), list(data.keys()),
                        data, formatter=lambda v: f"{v:,.0f}")
    return FigureResult(name=name, title="Instructions retired per record",
                        data=data, text=text)


# ---------------------------------------------------------------------------
# Figure 5.4: branch misprediction rates; TB and TL1I vs selectivity
# ---------------------------------------------------------------------------
def figure_5_4_left(runner: ExperimentRunner,
                    layout: Optional[str] = None) -> FigureResult:
    """Branch misprediction rates per system and query."""
    data: Dict[str, Dict[str, float]] = {}
    for profile in runner.systems():
        per_query: Dict[str, float] = {}
        for kind in QUERY_KINDS:
            result = runner.micro_result(profile.key, kind, layout=layout)
            if result is None:
                continue
            per_query[kind] = result.metrics.branch_misprediction_rate
        data[profile.key] = per_query
    name, tag = _layout_naming("figure_5_4_left", layout)
    text = format_table(f"Figure 5.4 (left){tag}: branch misprediction rates",
                        list(QUERY_KINDS), list(data.keys()), data)
    return FigureResult(name=name, title="Branch misprediction rates",
                        data=data, text=text)


def figure_5_4_right(runner: ExperimentRunner, system_key: str = "D",
                     layout: Optional[str] = None) -> FigureResult:
    """TB and TL1I (as % of execution time) versus selectivity for one system."""
    series = runner.selectivity_series(system_key, "SRS", layout=layout)
    data: Dict[str, Dict[str, float]] = {}
    for selectivity, result in sorted(series.items()):
        shares = result.breakdown.component_shares()
        data[f"{selectivity:.0%}"] = {
            "Branch mispred. stalls": shares["TB"],
            "L1 I-cache stalls": shares["TL1I"],
        }
    name, tag = _layout_naming("figure_5_4_right", layout)
    text = format_table(
        f"Figure 5.4 (right){tag}: System {system_key} sequential selection -- "
        f"TB and TL1I vs selectivity",
        ["Branch mispred. stalls", "L1 I-cache stalls"], list(data.keys()), data)
    return FigureResult(name=name,
                        title="Branch and L1I stalls vs selectivity",
                        data=data, text=text)


# ---------------------------------------------------------------------------
# Figure 5.5: TDEP and TFU contributions
# ---------------------------------------------------------------------------
def figure_5_5(runner: ExperimentRunner,
               layout: Optional[str] = None) -> FigureResult:
    """Dependency and functional-unit stall contributions to execution time."""
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    name, tag = _layout_naming("figure_5_5", layout)
    for component, label in (("TDEP", "TDEP"), ("TFU", "TFU")):
        per_system: Dict[str, Dict[str, float]] = {}
        for profile in runner.systems():
            per_query: Dict[str, float] = {}
            for kind in QUERY_KINDS:
                result = runner.micro_result(profile.key, kind, layout=layout)
                if result is None:
                    continue
                per_query[kind] = result.breakdown.component_shares()[component]
            per_system[profile.key] = per_query
        data[label] = per_system
        sections.append(format_table(
            f"Figure 5.5{tag}: {label} contribution to execution time",
            list(QUERY_KINDS), list(per_system.keys()), per_system))
    return FigureResult(name=name, title="Resource stall split",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Figures 5.6 / 5.7: microbenchmark versus TPC-D
# ---------------------------------------------------------------------------
def _tpcd_for_figure(runner: ExperimentRunner, system: str,
                     layout: Optional[str]):
    """The TPC-D suite result a comparison figure should use.

    The legacy path (``layout is None``) is the historical fresh-NSM-build
    tuple-engine measurement; a pinned layout routes through the warmed TPC
    grid with the *tuple* engine so the page layout is the only axis that
    changed relative to the paper's measurement.
    """
    if layout is None:
        return runner.tpcd_result(system)
    return runner.tpcd_grid_result(layout, system_key=system, engine="tuple")


def figure_5_6(runner: ExperimentRunner,
               systems: Sequence[str] = TPCD_SYSTEMS,
               layout: Optional[str] = None) -> FigureResult:
    """Clocks-per-instruction breakdown: 10% sequential selection vs TPC-D."""
    data: Dict[str, Dict[str, Dict[str, float]]] = {"SRS": {}, "TPC-D": {}}
    for system in systems:
        srs = runner.micro_result(system, "SRS", layout=layout)
        assert srs is not None
        tpcd = _tpcd_for_figure(runner, system, layout)
        data["SRS"][system] = cpi_breakdown(srs.breakdown, srs.counters.get("INST_RETIRED"))
        data["TPC-D"][system] = cpi_breakdown(tpcd.breakdown, tpcd.counters.get("INST_RETIRED"))
    rows = ["computation", "memory", "branch", "resource", "total"]
    name, tag = _layout_naming("figure_5_6", layout)
    sections = [
        format_table(f"Figure 5.6 (left){tag}: CPI breakdown, 10% sequential selection",
                     rows, list(data["SRS"].keys()), data["SRS"],
                     formatter=lambda v: f"{v:.2f}"),
        format_table(f"Figure 5.6 (right){tag}: CPI breakdown, TPC-D average",
                     rows, list(data["TPC-D"].keys()), data["TPC-D"],
                     formatter=lambda v: f"{v:.2f}"),
    ]
    return FigureResult(name=name, title="CPI breakdown, micro vs TPC-D",
                        data=data, text="\n\n".join(sections))


def figure_5_7(runner: ExperimentRunner,
               systems: Sequence[str] = TPCD_SYSTEMS,
               layout: Optional[str] = None) -> FigureResult:
    """Cache-related stall breakdown: 10% sequential selection vs TPC-D."""
    cache_components = ("TL1D", "TL1I", "TL2D", "TL2I")
    labels = dict(zip(cache_components, ("L1 D-stalls", "L1 I-stalls",
                                         "L2 D-stalls", "L2 I-stalls")))
    data: Dict[str, Dict[str, Dict[str, float]]] = {"SRS": {}, "TPC-D": {}}
    for system in systems:
        for workload_name, result in (
                ("SRS", runner.micro_result(system, "SRS", layout=layout)),
                ("TPC-D", _tpcd_for_figure(runner, system, layout))):
            assert result is not None
            components = result.breakdown.components
            total = sum(components[name] for name in cache_components)
            data[workload_name][system] = {
                labels[name]: (components[name] / total if total else 0.0)
                for name in cache_components}
    name, tag = _layout_naming("figure_5_7", layout)
    sections = [
        format_table(f"Figure 5.7 (left){tag}: cache-related stalls, 10% sequential selection",
                     list(labels.values()), list(data["SRS"].keys()), data["SRS"]),
        format_table(f"Figure 5.7 (right){tag}: cache-related stalls, TPC-D average",
                     list(labels.values()), list(data["TPC-D"].keys()), data["TPC-D"]),
    ]
    return FigureResult(name=name, title="Cache stalls, micro vs TPC-D",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Section 5.5 text: TPC-C observations
# ---------------------------------------------------------------------------
def tpcc_summary(runner: ExperimentRunner,
                 systems: Optional[Sequence[str]] = None,
                 layout: Optional[str] = None) -> FigureResult:
    """Section 5.5's TPC-C observations: CPI, memory-stall share, L2 dominance.

    ``layout`` pins the page layout and measures through the warmed TPC-C
    grid (tuple engine, both checkpoints restored per arm); ``None`` keeps
    the historical fresh-NSM-build measurement bit-identical.
    """
    systems = [p.key for p in runner.systems()] if systems is None else list(systems)
    data: Dict[str, Dict[str, float]] = {}
    for system in systems:
        if layout is None:
            result = runner.tpcc_result(system)
        else:
            result = runner.tpcc_grid_result(layout, system_key=system,
                                             engine="tuple")
        shares = result.breakdown.shares()
        memory_shares = result.breakdown.memory_shares()
        data[system] = {
            "CPI": result.metrics.cpi,
            "memory stall share": shares["memory"],
            "L2 share of memory stalls": memory_shares["TL2D"] + memory_shares["TL2I"],
            "resource stall share": shares["resource"],
        }
    name, tag = _layout_naming("tpcc_summary", layout)
    text = format_table(f"Section 5.5{tag}: TPC-C workload characteristics",
                        ["CPI", "memory stall share", "L2 share of memory stalls",
                         "resource stall share"],
                        list(data.keys()), data, formatter=lambda v: f"{v:6.2f}")
    return FigureResult(name=name, title="TPC-C observations", data=data, text=text)


# ---------------------------------------------------------------------------
# Section 5.2 text: record size sweep
# ---------------------------------------------------------------------------
def record_size_sweep(runner: ExperimentRunner,
                      layout: Optional[str] = None) -> FigureResult:
    """TL2D, L1I misses and cycles per record as the record size grows."""
    series = runner.record_size_series(layout=layout)
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for (system, size), result in sorted(series.items()):
        records = max(result.counters.get("RECORDS_PROCESSED"), 1)
        per_record = result.breakdown.per_record(records)
        data.setdefault(system, {})[f"{size}B"] = {
            "TL2D cycles/record": per_record["TL2D"],
            "L1I misses/record": result.counters.get("IFU_IFETCH_MISS") / records,
            "cycles/record": per_record["total"],
        }
    name, tag = _layout_naming("record_size_sweep", layout)
    sections = []
    for system, columns in data.items():
        sections.append(format_table(
            f"Section 5.2{tag}: record-size sweep, System {system} sequential selection",
            ["TL2D cycles/record", "L1I misses/record", "cycles/record"],
            list(columns.keys()), columns, formatter=lambda v: f"{v:,.1f}"))
    return FigureResult(name=name, title="Record size sweep",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# TPC workloads under the modern engine matrix (layouts x engines x workers)
# ---------------------------------------------------------------------------
def tpcd_matrix(runner: ExperimentRunner,
                layouts: Sequence[str] = ("nsm", "pax"),
                engines: Sequence[str] = ("tuple", "vectorized"),
                system_key: str = "B",
                workers: Sequence[int] = (1,)) -> FigureResult:
    """TPC-D suite across the modern engine matrix, on the warmed grid.

    Every arm shares one warmed build per layout (checkpoint-restored), so
    the matrix isolates exactly the engine/layout/parallelism axes: the
    paper's NSM + tuple arm is the baseline, PAX moves the data stalls,
    vectorization moves the instruction/branch stalls, and ``workers`` is
    count-identical by design (the charge-tape replay wall).
    """
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    metric_rows = ["cycles", "CPI", "memory stall share",
                   "instructions", "routine invocations"]
    for layout in layouts:
        per_arm: Dict[str, Dict[str, float]] = {}
        for engine in engines:
            for n in workers:
                result = runner.tpcd_grid_result(layout, system_key=system_key,
                                                 engine=engine, workers=n)
                arm = engine if n == 1 else f"{engine}/w{n}"
                per_arm[arm] = {
                    "cycles": float(result.breakdown.total_cycles),
                    "CPI": result.metrics.cpi,
                    "memory stall share": result.breakdown.shares()["memory"],
                    "instructions": float(result.counters.get("INST_RETIRED")),
                    "routine invocations": float(result.total_routine_invocations),
                }
        data[layout] = per_arm
        sections.append(format_table(
            f"TPC-D matrix ({layout.upper()}): 17-query average, System {system_key}",
            metric_rows, list(per_arm.keys()), per_arm,
            formatter=lambda v: f"{v:,.2f}"))
    return FigureResult(name="tpcd_matrix",
                        title="TPC-D under the modern engine matrix",
                        data=data, text="\n\n".join(sections))


def tpcc_matrix(runner: ExperimentRunner,
                layouts: Sequence[str] = ("nsm", "pax"),
                engines: Sequence[str] = ("tuple", "vectorized"),
                system_key: str = "B",
                workers: Sequence[int] = (1,)) -> FigureResult:
    """TPC-C mix across the modern engine matrix, on the warmed grid.

    The update-heavy mix runs against one warmed build per layout with
    *both* the address-space checkpoint and the data checkpoint restored
    before every arm, so arms are fresh-build-identical despite the
    in-place record updates.
    """
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    metric_rows = ["cycles", "CPI", "memory stall share",
                   "L2 share of memory stalls", "transactions"]
    for layout in layouts:
        per_arm: Dict[str, Dict[str, float]] = {}
        for engine in engines:
            for n in workers:
                result = runner.tpcc_grid_result(layout, system_key=system_key,
                                                 engine=engine, workers=n)
                shares = result.breakdown.shares()
                memory_shares = result.breakdown.memory_shares()
                arm = engine if n == 1 else f"{engine}/w{n}"
                per_arm[arm] = {
                    "cycles": float(result.breakdown.total_cycles),
                    "CPI": result.metrics.cpi,
                    "memory stall share": shares["memory"],
                    "L2 share of memory stalls":
                        memory_shares["TL2D"] + memory_shares["TL2I"],
                    "transactions": float(result.transactions),
                }
        data[layout] = per_arm
        sections.append(format_table(
            f"TPC-C matrix ({layout.upper()}): transaction mix, System {system_key}",
            metric_rows, list(per_arm.keys()), per_arm,
            formatter=lambda v: f"{v:,.2f}"))
    return FigureResult(name="tpcc_matrix",
                        title="TPC-C under the modern engine matrix",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Engine ablation: tuple-at-a-time vs vectorized batch execution
# ---------------------------------------------------------------------------
def engine_ablation(runner: ExperimentRunner,
                    systems: Sequence[str] = ("B", "D"),
                    kinds: Sequence[str] = ("SRS", "SJ")) -> FigureResult:
    """Stall breakdown of the same queries under both execution engines.

    The paper attributes the dominant stall components (L1 I-cache misses,
    branch mispredictions, part of the computation itself) to per-tuple
    interpretation overhead.  Re-running the Figure 5.1 queries with the
    vectorized engine quantifies that attribution: the batch engine invokes
    each executor routine once per batch instead of once per record, so its
    routine-invocation count, computation time and instruction-stall time
    all drop while the data-stall components (a property of the data
    layout, not the iteration model) remain.
    """
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    for kind in kinds:
        per_case: Dict[str, Dict[str, float]] = {}
        for system in systems:
            for engine in ("tuple", "vectorized"):
                result = runner.micro_result(system, kind, engine=engine)
                if result is None:
                    continue
                components = result.breakdown.components
                per_case[f"{system}/{engine}"] = {
                    "routine invocations": float(result.total_routine_invocations),
                    "computation cycles": components["TC"],
                    "L1 I-stall cycles": components["TL1I"],
                    "branch stall cycles": components["TB"],
                    "L2 D-stall cycles": components["TL2D"],
                    "total cycles": result.breakdown.total_cycles,
                }
        data[kind] = per_case
        sections.append(format_table(
            f"Engine ablation ({QUERY_TITLES[kind]}): tuple vs vectorized",
            ["routine invocations", "computation cycles", "L1 I-stall cycles",
             "branch stall cycles", "L2 D-stall cycles", "total cycles"],
            list(per_case.keys()), per_case, formatter=lambda v: f"{v:,.0f}"))
    return FigureResult(name="engine_ablation",
                        title="Tuple vs vectorized execution",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Adaptivity: runtime conjunct reordering measured on the branch unit
# ---------------------------------------------------------------------------
def figure_adaptivity(runner: ExperimentRunner,
                      layouts: Sequence[str] = ("nsm", "pax"),
                      modes: Sequence[str] = ("off", "static", "greedy",
                                              "epsilon")) -> FigureResult:
    """Branch-misprediction and cycle effect of adaptive conjunct ordering.

    Runs the skewed-conjunct selection (a 3-conjunct filter written in the
    worst static order: ~90% pass, then a 50/50 coin flip, then the ~5%
    selective conjunct) on the vectorized engine under every adaptivity
    mode and both page layouts.  ``static`` vs ``greedy`` isolates the
    ordering effect under identical charging: the greedy policy learns
    within the first batches to evaluate the selective conjunct first, so
    the unpredictable 50/50 branch executes over ~5% of the rows instead of
    ~90% -- the misprediction reduction the paper's branch analysis
    (Section 5.3) predicts, plus the short-circuit cycle saving.
    """
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    metrics_rows = ["total cycles", "branch mispredictions",
                    "branch stall cycles", "branches retired",
                    "predicate invocations", "result rows"]
    for layout in layouts:
        per_mode: Dict[str, Dict[str, float]] = {}
        for mode in modes:
            result = runner.adaptive_cell(layout, mode)
            components = result.breakdown.components
            per_mode[mode] = {
                "total cycles": float(result.breakdown.total_cycles),
                "branch mispredictions":
                    float(result.counters.get("BR_MISS_PRED_RETIRED")),
                "branch stall cycles": components["TB"],
                "branches retired":
                    float(result.counters.get("BR_INST_RETIRED")),
                "predicate invocations":
                    float(result.routine_invocations.get("predicate", 0)),
                "result rows": float(len(result.rows)),
            }
        data[layout] = per_mode
        sections.append(format_table(
            f"Adaptivity ({layout.upper()}): skewed 3-conjunct selection, "
            f"vectorized engine",
            metrics_rows, list(per_mode.keys()), per_mode,
            formatter=lambda v: f"{v:,.0f}"))
        if "static" in per_mode and "greedy" in per_mode:
            static, greedy = per_mode["static"], per_mode["greedy"]
            reductions = {
                "misprediction reduction":
                    1.0 - greedy["branch mispredictions"]
                    / max(static["branch mispredictions"], 1.0),
                "cycle reduction":
                    1.0 - greedy["total cycles"] / max(static["total cycles"], 1.0),
            }
            data.setdefault("greedy_vs_static", {})[layout] = reductions
            sections.append(format_key_values(
                f"Adaptivity ({layout.upper()}): greedy vs static", reductions))
    return FigureResult(name="figure_adaptivity",
                        title="Adaptive conjunct reordering",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Adaptivity: runtime join-side selection measured on the memory hierarchy
# ---------------------------------------------------------------------------
def figure_adaptive_joins(runner: ExperimentRunner,
                          layouts: Sequence[str] = ("nsm", "pax"),
                          modes: Sequence[str] = ("off", "static", "greedy")
                          ) -> FigureResult:
    """Cycle and memory-stall effect of adaptive hash-join side selection.

    Runs the skewed join -- the plan pins the hash build side to R, the 30x
    larger relation, simulating a stale-statistics misestimate -- under
    every adaptivity mode and both page layouts.  ``static`` is the
    cycle-identical control arm (adaptive charging, but the policy never
    flips), so ``static`` vs ``greedy`` isolates the side-selection effect:
    the greedy policy observes the warm-up run's cardinalities and builds
    on S instead, shrinking the hash table from the R working set to the S
    working set.  The win shows up exactly where the paper's memory
    analysis (Section 5.2) says table size matters: L1/L2 data stalls from
    the build's random-probe traffic, not instruction or branch behaviour.
    """
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    sections = []
    metrics_rows = ["total cycles", "L1 D-stall cycles", "L2 D-stall cycles",
                    "data memory refs", "branch stall cycles", "result rows"]
    for layout in layouts:
        per_mode: Dict[str, Dict[str, float]] = {}
        for mode in modes:
            result = runner.adaptive_join_cell(layout, mode)
            components = result.breakdown.components
            per_mode[mode] = {
                "total cycles": float(result.breakdown.total_cycles),
                "L1 D-stall cycles": components["TL1D"],
                "L2 D-stall cycles": components["TL2D"],
                "data memory refs":
                    float(result.counters.get("DATA_MEM_REFS")),
                "branch stall cycles": components["TB"],
                "result rows": float(len(result.rows)),
            }
        data[layout] = per_mode
        sections.append(format_table(
            f"Adaptive joins ({layout.upper()}): skewed build-side "
            f"misestimate, vectorized engine",
            metrics_rows, list(per_mode.keys()), per_mode,
            formatter=lambda v: f"{v:,.0f}"))
        if "static" in per_mode and "greedy" in per_mode:
            static, greedy = per_mode["static"], per_mode["greedy"]
            reductions = {
                "cycle reduction":
                    1.0 - greedy["total cycles"] / max(static["total cycles"], 1.0),
                "data-stall reduction":
                    1.0 - ((greedy["L1 D-stall cycles"]
                            + greedy["L2 D-stall cycles"])
                           / max(static["L1 D-stall cycles"]
                                 + static["L2 D-stall cycles"], 1.0)),
            }
            data.setdefault("greedy_vs_static", {})[layout] = reductions
            sections.append(format_key_values(
                f"Adaptive joins ({layout.upper()}): greedy vs static",
                reductions))
    return FigureResult(name="figure_adaptive_joins",
                        title="Adaptive join-side selection",
                        data=data, text="\n\n".join(sections))


# ---------------------------------------------------------------------------
# Headline claims (Section 1 bullets)
# ---------------------------------------------------------------------------
def headline_claims(runner: ExperimentRunner) -> FigureResult:
    """The paper's introduction bullets, recomputed from the measurements."""
    stall_shares: List[float] = []
    l1i_l2d_shares: List[float] = []
    branch_resource_shares: List[float] = []
    for profile in runner.systems():
        for kind in QUERY_KINDS:
            result = runner.micro_result(profile.key, kind)
            if result is None:
                continue
            shares = result.breakdown.shares()
            stall_shares.append(1.0 - shares["computation"])
            memory = result.breakdown.memory_shares()
            l1i_l2d_shares.append(memory["TL1I"] + memory["TL2D"])
            branch_resource_shares.append(shares["branch"])
    data = {
        "average stall share of execution time": sum(stall_shares) / len(stall_shares),
        "minimum stall share": min(stall_shares),
        "average (TL1I+TL2D) share of memory stalls": sum(l1i_l2d_shares) / len(l1i_l2d_shares),
        "minimum (TL1I+TL2D) share of memory stalls": min(l1i_l2d_shares),
        "average branch misprediction share": sum(branch_resource_shares) / len(branch_resource_shares),
    }
    text = format_key_values("Section 1: headline claims recomputed", data)
    return FigureResult(name="headline_claims", title="Headline claims", data=data, text=text)


# ---------------------------------------------------------------------------
# Convenience: run everything (used by the examples and EXPERIMENTS.md script)
# ---------------------------------------------------------------------------
def all_figures(runner: ExperimentRunner) -> List[FigureResult]:
    """Generate every reproduced table and figure, in paper order."""
    return [
        table_4_1(runner.config.spec),
        table_4_2(),
        figure_5_1(runner),
        figure_5_2(runner),
        figure_5_3(runner),
        figure_5_4_left(runner),
        figure_5_4_right(runner),
        figure_5_5(runner),
        figure_5_6(runner),
        figure_5_7(runner),
        tpcc_summary(runner),
        record_size_sweep(runner),
        engine_ablation(runner),
        figure_adaptivity(runner),
        figure_adaptive_joins(runner),
        headline_claims(runner),
    ]
