"""Runtime-adaptation policies: conjunct order, join sides, batch size.

All policies implement one interface per *decision* -- given the relevant
stable keys, the static (planner-time) inputs and the current
:class:`~repro.adaptive.stats.RuntimeStatsCollector`, return the decision --
so the execution layer is policy-agnostic and new strategies slot in
without touching an operator.  The three decisions:

* :meth:`AdaptivePolicy.order` -- the evaluation order of a multi-conjunct
  filter (PR 4's original decision);
* :meth:`AdaptivePolicy.flip_join` -- whether a vectorized hash join should
  abandon the planner's build side and build on the probe side instead,
  consulted between build-side batches;
* :meth:`AdaptivePolicy.batch_size` -- the next vector size of a scan,
  stepped through the bounded :data:`BATCH_SIZE_LADDER` from observed L1D
  miss pressure, consulted between batches (serial) or between morsel waves
  (parallel);
* :meth:`AdaptivePolicy.partition_count` -- how many spill partitions a
  memory-budgeted hash join should fan its inputs into, consulted once
  before build ingest.  The static arm sizes from the planner's cardinality
  estimate; greedy substitutes the observed build cardinality when earlier
  executions (or merged morsel waves) have measured it, which is the
  standard cure for the underestimated-build spiral of grace joins
  (arXiv:2112.02480).

``StaticPolicy`` answers every decision with the planner's choice, which
makes it the control arm of every adaptivity experiment: static vs greedy
isolates exactly the effect of the runtime decision under identical
charging.

>>> stats = RuntimeStatsCollector()
>>> policy = GreedyRankPolicy()
>>> policy.flip_join("card:R", "card:S", probe_estimate=200,
...                  seen_build_rows=0, stats=stats)
False
>>> policy.flip_join("card:R", "card:S", probe_estimate=200,
...                  seen_build_rows=300, stats=stats)
True

``GreedyRankPolicy`` implements the classical optimal ordering for
independent selection predicates (Hellerstein's predicate migration rank):
sort ascending by ``(selectivity - 1) / cost``.  A conjunct that filters
hard and costs little runs first; the expected total evaluation cost is
minimised.  The selectivities come from *observed* runtime statistics, which
is the whole point -- the planner wrote the conjuncts in source order
because it had no estimates, and runtime-stat-driven re-decisions are the
standard cure for planner misestimation (cf. the robust dynamic hash-join
line of work, arXiv:2112.02480).

``EpsilonGreedyPolicy`` keeps exploring: observed selectivities are
conditional on the short-circuit order that produced them (a conjunct
evaluated second only sees rows the first one passed), so a pure greedy
policy can lock onto a stale ordering when the data drifts.  With
probability epsilon it rotates the greedy order, refreshing the downstream
conjuncts' statistics.  Exploration is driven by a deterministic
counter-hash -- the same Knuth multiplicative hash the execution context
uses for pseudo-random branch outcomes -- so runs are reproducible.

Determinism contract: every policy's decision is a pure function of its
inputs plus (for epsilon-greedy) an internal decision counter that is part
of the policy's snapshot state.  Replaying the same batches through the
same snapshot yields the same orders.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .stats import RuntimeStatsCollector

#: Knuth multiplicative-hash constant (deterministic exploration).
_HASH_CONSTANT = 2654435761

#: Selectivity assumed for a conjunct with no observations yet.
DEFAULT_SELECTIVITY = 0.5

#: The bounded batch-size ladder.  Rungs double so the search space stays
#: tiny; the bounds keep an adaptive scan from degenerating into
#: tuple-at-a-time execution (below 32 the per-batch routine invocation
#: dominates) or unbounded vectors (above 1024 a single column vector of a
#: hot scan exceeds the whole 16 KB L1 D-cache many times over, so there is
#: nothing left to learn -- the working set cannot re-fit by growing).
BATCH_SIZE_LADDER = (32, 64, 128, 256, 512, 1024)

#: A join side flip requires the evidence (observed build rows) to exceed
#: the probe-side expectation by this factor -- hysteresis against flipping
#: on near-balanced inputs, where the flip's rebuild cost outweighs it.
JOIN_FLIP_HYSTERESIS = 1.25

#: Batch-size rungs whose observed misses-per-row are within this slack of
#: the best rung count as "fitting L1D"; the largest fitting rung wins (it
#: amortises the per-batch routine invocation hardest).
PRESSURE_SLACK = 0.15

#: Headroom factor applied to the estimated build-side footprint when
#: choosing a spill partition count: hash tables carry bucket/entry overhead
#: beyond the raw record bytes, and partition skew means the largest
#: partition exceeds the average.  Cf. the fudge factor of the classic
#: grace/hybrid sizing rule.
PARTITION_FUDGE = 1.2

#: Upper bound on the spill fan-out.  Beyond this, per-partition output
#: buffers thrash the budgeted pool harder than recursion costs; overflowing
#: partitions are re-partitioned recursively instead.
MAX_PARTITIONS = 64


def plan_partition_count(build_rows: float, row_bytes: int,
                         budget_bytes: Optional[int]) -> int:
    """Spill partition count for an expected build side of ``build_rows``.

    Returns 1 when the (fudged) footprint fits the budget -- the hybrid
    join's optimistic fully-resident plan -- and otherwise the classic
    ``ceil(footprint / budget)`` grace fan-out, clamped to
    [2, :data:`MAX_PARTITIONS`].
    """
    if budget_bytes is None or budget_bytes <= 0:
        return 1
    footprint = max(float(build_rows), 0.0) * max(row_bytes, 1) * PARTITION_FUDGE
    if footprint <= budget_bytes:
        return 1
    count = -(-int(footprint) // budget_bytes)  # ceiling division
    return max(2, min(count, MAX_PARTITIONS))


class AdaptivePolicy:
    """Interface: one method per runtime decision (order / flip / size).

    The base class answers the join-side and batch-size decisions with the
    planner's choice (never flip, keep the size), so a policy only overrides
    the decisions it actually adapts.
    """

    #: Name threaded through ``ExecutionConfig.adaptivity``.
    name = "abstract"

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        """Return the conjunct indices in evaluation order."""
        raise NotImplementedError

    def flip_join(self, build_key: str, probe_key: str, probe_estimate: int,
                  seen_build_rows: int, stats: RuntimeStatsCollector) -> bool:
        """Should the hash join flip its build/probe sides *now*?

        Consulted before each build-side batch is ingested.
        ``seen_build_rows`` is the build cardinality observed so far in this
        execution; historical cardinalities (earlier executions, merged
        worker stats) live in ``stats``.  Default: trust the planner.
        """
        return False

    def batch_size(self, key: str, current: int,
                   stats: RuntimeStatsCollector,
                   ladder: Sequence[int] = BATCH_SIZE_LADDER) -> int:
        """The next vector size for the scan ``key`` (bounded by ``ladder``).

        Consulted after each batch's L1D pressure has been observed (serial
        scans) or between morsel waves (the exchange, from merged worker
        stats).  Default: keep the configured size.
        """
        return current

    def partition_count(self, build_key: str, build_estimate: int,
                        row_bytes: int, budget_bytes: Optional[int],
                        stats: RuntimeStatsCollector) -> int:
        """How many spill partitions the memory-budgeted hash join fans into.

        Consulted once, before build ingest.  Default (and ``static``):
        trust the planner's ``build_estimate``.
        """
        return plan_partition_count(build_estimate, row_bytes, budget_bytes)

    # ---------------------------------------------------- snapshot plumbing
    def state(self) -> Dict[str, int]:
        """Picklable policy state (rides morsel specs; default: stateless)."""
        return {}

    def restore(self, state: Optional[Dict[str, int]]) -> "AdaptivePolicy":
        return self

    def advance(self, decisions: int) -> None:
        """Account ``decisions`` ordering decisions taken on this policy's
        behalf elsewhere (morsel workers).  The parent exchange calls this
        after replaying each wave, so the snapshot dispatched to the next
        wave continues any internal decision sequence instead of restarting
        it.  Default: stateless, nothing to advance."""


class StaticPolicy(AdaptivePolicy):
    """Planner order, unchanged -- the adaptive framework's control arm.

    Charging is identical to the adaptive policies (per-conjunct batched
    visits, per-row data branches), so measuring ``static`` against
    ``greedy`` isolates exactly the effect of the *ordering*.
    """

    name = "static"

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        return tuple(range(len(keys)))


def greedy_rank_order(keys: Sequence[str], costs: Sequence[int],
                      stats: RuntimeStatsCollector) -> Tuple[int, ...]:
    """Ascending ``(selectivity - 1) / cost`` with stable tie-breaking."""
    def rank(index: int) -> float:
        selectivity = stats.selectivity(keys[index], DEFAULT_SELECTIVITY)
        return (selectivity - 1.0) / max(costs[index], 1)

    return tuple(sorted(range(len(keys)), key=lambda i: (rank(i), i)))


def greedy_flip_join(build_key: str, probe_key: str, probe_estimate: int,
                     seen_build_rows: int,
                     stats: RuntimeStatsCollector) -> bool:
    """Flip when *observed* build cardinality contradicts the planner.

    The planner chose the build side because it believed it the smaller
    input.  The decision deliberately weighs only **observations** against
    the probe-side expectation -- the engine does not re-litigate the
    planner's estimates, it reacts to evidence: either this execution has
    already streamed more build rows than the probe side is expected to
    hold (``seen_build_rows``, the cold-run trigger), or earlier executions
    / merged morsel waves measured the build input's cardinality
    (``stats.cardinality(build_key)``, the warm-run trigger that flips
    before any build work is wasted).  The probe expectation prefers the
    observed probe cardinality and falls back to the planner's estimate.
    """
    expected_probe = stats.cardinality(probe_key)
    if expected_probe is None:
        expected_probe = float(probe_estimate)
    if expected_probe <= 0:
        return False
    expected_build = stats.cardinality(build_key) or 0.0
    evidence = max(float(seen_build_rows), expected_build)
    return evidence > JOIN_FLIP_HYSTERESIS * expected_probe


def greedy_partition_count(build_key: str, build_estimate: int, row_bytes: int,
                           budget_bytes: Optional[int],
                           stats: RuntimeStatsCollector) -> int:
    """Prefer the *observed* build cardinality over the planner's estimate.

    Warm executions (and merged morsel waves) have measured the build
    input's cardinality via ``stats.cardinality``; sizing the fan-out from
    that observation avoids both the underestimated-build spiral (too few
    partitions, every one overflows and recurses) and the overestimated
    fan-out (too many partitions, output buffers thrash the budgeted pool).
    Cold executions fall back to the estimate, exactly like ``static``.
    """
    observed = stats.cardinality(build_key)
    evidence = observed if observed is not None else float(build_estimate)
    return plan_partition_count(evidence, row_bytes, budget_bytes)


def greedy_batch_size(key: str, current: int, stats: RuntimeStatsCollector,
                      ladder: Sequence[int] = BATCH_SIZE_LADDER) -> int:
    """One ladder step per decision: explore untried neighbours, then settle.

    The rule is deterministic and needs no absolute miss-rate threshold:

    1. if the rung below ``current`` is unobserved, try it (explore down);
    2. else if the rung above is unobserved, try it (explore up);
    3. else settle on the **largest** observed rung whose misses-per-row is
       within :data:`PRESSURE_SLACK` of the best observed rung.

    Exploration walks each rung at most once (observations are cumulative,
    so a rung that thrashed L1D stays disqualified), after which the scan
    sits on the largest vector size whose working set still fits -- growing
    amortises the per-batch routine invocation, shrinking restores L1D
    reuse between a batch's column passes.

    >>> stats = RuntimeStatsCollector()
    >>> stats.observe_pressure("scan:R", 128, rows=128, l1d_misses=40)
    >>> greedy_batch_size("scan:R", 128, stats, ladder=(64, 128, 256))
    64
    >>> stats.observe_pressure("scan:R", 64, rows=64, l1d_misses=20)
    >>> greedy_batch_size("scan:R", 64, stats, ladder=(64, 128, 256))
    128
    >>> greedy_batch_size("scan:R", 128, stats, ladder=(64, 128, 256))
    256
    >>> stats.observe_pressure("scan:R", 256, rows=256, l1d_misses=900)
    >>> greedy_batch_size("scan:R", 256, stats, ladder=(64, 128, 256))
    128
    """
    rungs = sorted(set(ladder) | {current})
    profile = stats.pressure_profile(key)
    observed = {size: pressure.misses_per_row
                for size, pressure in profile.items()
                if size in rungs and pressure.misses_per_row is not None}
    position = rungs.index(current)
    if position > 0 and rungs[position - 1] not in observed:
        return rungs[position - 1]
    if position + 1 < len(rungs) and rungs[position + 1] not in observed:
        return rungs[position + 1]
    if not observed:
        return current
    best = min(observed.values())
    budget = best * (1.0 + PRESSURE_SLACK) + 1e-9
    fitting = [size for size, rate in observed.items() if rate <= budget]
    return max(fitting) if fitting else current


class GreedyRankPolicy(AdaptivePolicy):
    """Greedy on every decision: rank conjuncts by observed
    selectivity-per-cost, flip join sides on contradicting cardinality
    evidence, climb the batch-size ladder from observed L1D pressure."""

    name = "greedy"

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        return greedy_rank_order(keys, costs, stats)

    def flip_join(self, build_key: str, probe_key: str, probe_estimate: int,
                  seen_build_rows: int, stats: RuntimeStatsCollector) -> bool:
        return greedy_flip_join(build_key, probe_key, probe_estimate,
                                seen_build_rows, stats)

    def batch_size(self, key: str, current: int,
                   stats: RuntimeStatsCollector,
                   ladder: Sequence[int] = BATCH_SIZE_LADDER) -> int:
        return greedy_batch_size(key, current, stats, ladder)

    def partition_count(self, build_key: str, build_estimate: int,
                        row_bytes: int, budget_bytes: Optional[int],
                        stats: RuntimeStatsCollector) -> int:
        return greedy_partition_count(build_key, build_estimate, row_bytes,
                                      budget_bytes, stats)


class EpsilonGreedyPolicy(AdaptivePolicy):
    """Greedy ordering with an epsilon fraction of exploratory rotations."""

    name = "epsilon"

    def __init__(self, epsilon: float = 0.1) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be within [0, 1]")
        self.epsilon = epsilon
        #: Decisions taken so far -- the seed of the deterministic
        #: exploration hash, carried in the policy snapshot so workers
        #: continue the sequence instead of restarting it.
        self.decisions = 0

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        self.decisions += 1
        greedy = greedy_rank_order(keys, costs, stats)
        count = len(greedy)
        if count < 2 or self.epsilon <= 0.0:
            return greedy
        draw = ((self.decisions * _HASH_CONSTANT) & 0xFFFFFFFF) >> 8
        if (draw % 10_000) >= int(self.epsilon * 10_000):
            return greedy
        # Explore: rotate the greedy order by a hash-derived non-zero step,
        # so every conjunct periodically gets evaluated over unfiltered rows
        # and its unconditional selectivity stays current.
        rotation = 1 + (draw // 10_000) % (count - 1)
        return greedy[rotation:] + greedy[:rotation]

    def flip_join(self, build_key: str, probe_key: str, probe_estimate: int,
                  seen_build_rows: int, stats: RuntimeStatsCollector) -> bool:
        # Exploration buys nothing for a one-shot side decision (the flip's
        # evidence is direct cardinality observation, not conditional on a
        # prior decision), so epsilon matches greedy here.
        return greedy_flip_join(build_key, probe_key, probe_estimate,
                                seen_build_rows, stats)

    def batch_size(self, key: str, current: int,
                   stats: RuntimeStatsCollector,
                   ladder: Sequence[int] = BATCH_SIZE_LADDER) -> int:
        # The ladder rule already explores every rung once (optimism about
        # unobserved neighbours), so epsilon matches greedy here too.
        return greedy_batch_size(key, current, stats, ladder)

    def partition_count(self, build_key: str, build_estimate: int,
                        row_bytes: int, budget_bytes: Optional[int],
                        stats: RuntimeStatsCollector) -> int:
        # One-shot sizing decision from direct observation; nothing for
        # epsilon exploration to refresh.
        return greedy_partition_count(build_key, build_estimate, row_bytes,
                                      budget_bytes, stats)

    def state(self) -> Dict[str, int]:
        return {"decisions": self.decisions}

    def restore(self, state: Optional[Dict[str, int]]) -> "EpsilonGreedyPolicy":
        if state:
            self.decisions = int(state.get("decisions", 0))
        return self

    def advance(self, decisions: int) -> None:
        self.decisions += decisions


#: ``ExecutionConfig.adaptivity`` value -> policy factory.  ``"off"`` is not
#: a policy: it bypasses the adaptive evaluation path entirely (the engine
#: behaves bit-identically to previous releases).
POLICIES = {
    StaticPolicy.name: StaticPolicy,
    GreedyRankPolicy.name: GreedyRankPolicy,
    EpsilonGreedyPolicy.name: EpsilonGreedyPolicy,
}


def make_policy(name: str) -> AdaptivePolicy:
    """Instantiate the policy for one ``adaptivity`` mode."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown adaptivity policy {name!r}; "
                         f"expected one of {tuple(POLICIES)}") from None
