"""Conjunct-ordering policies for micro-adaptive execution.

All policies implement one interface -- given the conjuncts' stable keys,
their static per-row costs and the current
:class:`~repro.adaptive.stats.RuntimeStatsCollector`, return the order in
which to evaluate them -- so the execution layer is policy-agnostic and new
strategies slot in without touching an operator.

``GreedyRankPolicy`` implements the classical optimal ordering for
independent selection predicates (Hellerstein's predicate migration rank):
sort ascending by ``(selectivity - 1) / cost``.  A conjunct that filters
hard and costs little runs first; the expected total evaluation cost is
minimised.  The selectivities come from *observed* runtime statistics, which
is the whole point -- the planner wrote the conjuncts in source order
because it had no estimates, and runtime-stat-driven re-decisions are the
standard cure for planner misestimation (cf. the robust dynamic hash-join
line of work, arXiv:2112.02480).

``EpsilonGreedyPolicy`` keeps exploring: observed selectivities are
conditional on the short-circuit order that produced them (a conjunct
evaluated second only sees rows the first one passed), so a pure greedy
policy can lock onto a stale ordering when the data drifts.  With
probability epsilon it rotates the greedy order, refreshing the downstream
conjuncts' statistics.  Exploration is driven by a deterministic
counter-hash -- the same Knuth multiplicative hash the execution context
uses for pseudo-random branch outcomes -- so runs are reproducible.

Determinism contract: every policy's decision is a pure function of its
inputs plus (for epsilon-greedy) an internal decision counter that is part
of the policy's snapshot state.  Replaying the same batches through the
same snapshot yields the same orders.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .stats import RuntimeStatsCollector

#: Knuth multiplicative-hash constant (deterministic exploration).
_HASH_CONSTANT = 2654435761

#: Selectivity assumed for a conjunct with no observations yet.
DEFAULT_SELECTIVITY = 0.5


class AdaptivePolicy:
    """Interface: choose the evaluation order for a batch of conjuncts."""

    #: Name threaded through ``ExecutionConfig.adaptivity``.
    name = "abstract"

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        """Return the conjunct indices in evaluation order."""
        raise NotImplementedError

    # ---------------------------------------------------- snapshot plumbing
    def state(self) -> Dict[str, int]:
        """Picklable policy state (rides morsel specs; default: stateless)."""
        return {}

    def restore(self, state: Optional[Dict[str, int]]) -> "AdaptivePolicy":
        return self

    def advance(self, decisions: int) -> None:
        """Account ``decisions`` ordering decisions taken on this policy's
        behalf elsewhere (morsel workers).  The parent exchange calls this
        after replaying each wave, so the snapshot dispatched to the next
        wave continues any internal decision sequence instead of restarting
        it.  Default: stateless, nothing to advance."""


class StaticPolicy(AdaptivePolicy):
    """Planner order, unchanged -- the adaptive framework's control arm.

    Charging is identical to the adaptive policies (per-conjunct batched
    visits, per-row data branches), so measuring ``static`` against
    ``greedy`` isolates exactly the effect of the *ordering*.
    """

    name = "static"

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        return tuple(range(len(keys)))


def greedy_rank_order(keys: Sequence[str], costs: Sequence[int],
                      stats: RuntimeStatsCollector) -> Tuple[int, ...]:
    """Ascending ``(selectivity - 1) / cost`` with stable tie-breaking."""
    def rank(index: int) -> float:
        selectivity = stats.selectivity(keys[index], DEFAULT_SELECTIVITY)
        return (selectivity - 1.0) / max(costs[index], 1)

    return tuple(sorted(range(len(keys)), key=lambda i: (rank(i), i)))


class GreedyRankPolicy(AdaptivePolicy):
    """Order conjuncts by observed selectivity-per-cost (best rank first)."""

    name = "greedy"

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        return greedy_rank_order(keys, costs, stats)


class EpsilonGreedyPolicy(AdaptivePolicy):
    """Greedy ordering with an epsilon fraction of exploratory rotations."""

    name = "epsilon"

    def __init__(self, epsilon: float = 0.1) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be within [0, 1]")
        self.epsilon = epsilon
        #: Decisions taken so far -- the seed of the deterministic
        #: exploration hash, carried in the policy snapshot so workers
        #: continue the sequence instead of restarting it.
        self.decisions = 0

    def order(self, keys: Sequence[str], costs: Sequence[int],
              stats: RuntimeStatsCollector) -> Tuple[int, ...]:
        self.decisions += 1
        greedy = greedy_rank_order(keys, costs, stats)
        count = len(greedy)
        if count < 2 or self.epsilon <= 0.0:
            return greedy
        draw = ((self.decisions * _HASH_CONSTANT) & 0xFFFFFFFF) >> 8
        if (draw % 10_000) >= int(self.epsilon * 10_000):
            return greedy
        # Explore: rotate the greedy order by a hash-derived non-zero step,
        # so every conjunct periodically gets evaluated over unfiltered rows
        # and its unconditional selectivity stays current.
        rotation = 1 + (draw // 10_000) % (count - 1)
        return greedy[rotation:] + greedy[:rotation]

    def state(self) -> Dict[str, int]:
        return {"decisions": self.decisions}

    def restore(self, state: Optional[Dict[str, int]]) -> "EpsilonGreedyPolicy":
        if state:
            self.decisions = int(state.get("decisions", 0))
        return self

    def advance(self, decisions: int) -> None:
        self.decisions += decisions


#: ``ExecutionConfig.adaptivity`` value -> policy factory.  ``"off"`` is not
#: a policy: it bypasses the adaptive evaluation path entirely (the engine
#: behaves bit-identically to previous releases).
POLICIES = {
    StaticPolicy.name: StaticPolicy,
    GreedyRankPolicy.name: GreedyRankPolicy,
    EpsilonGreedyPolicy.name: EpsilonGreedyPolicy,
}


def make_policy(name: str) -> AdaptivePolicy:
    """Instantiate the policy for one ``adaptivity`` mode."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown adaptivity policy {name!r}; "
                         f"expected one of {tuple(POLICIES)}") from None
