"""Runtime statistics for micro-adaptive execution.

The paper's result -- branch mispredictions and instruction stalls, not
computation, dominate query time -- makes multi-conjunct filters the
cheapest place to recover cycles at run time: evaluating a poorly-selective
conjunct first pays a ~50/50 data branch per record *and* forwards most
records to the remaining conjuncts.  The optimiser cannot fix this without
estimates it does not have; the engine can, because per-batch selectivity is
directly observable.

:class:`RuntimeStatsCollector` is the observation half of that loop.  It
records three families of observations, all keyed by stable strings:

* **per-conjunct** (:class:`ConjunctStats`, keyed by the conjunct's textual
  identity): rows in / rows passed / batches -- pure functions of the stored
  data, so morsel workers can observe them too (they ride the charge tapes
  back to the parent) -- plus simulated branch outcomes, which only the real
  :class:`~repro.execution.context.ExecutionContext` can produce because
  only it drives a branch predictor;
* **per-operator cardinalities** (:class:`CardinalityStats`, keyed by a
  plan-side identity such as the source table of a join input): how many
  rows an operator input actually produced per execution.  Cardinalities
  are *not* additive across executions, so the collector keeps a running
  total plus an observation count and exposes the mean -- the runtime
  estimate the adaptive join-side decision weighs against the planner's
  guess; and
* **per-scan L1D pressure** (:class:`BatchPressureStats`, keyed by scan and
  bucketed by the vector size that produced them): rows processed and
  simulated L1 data-cache misses per batch-size rung, the signal the
  adaptive batch-size ladder climbs.

Everything is plain integer counters: collectors pickle compactly across
the morsel process boundary and :meth:`merge` is commutative (sums only),
exactly like the PR 3 worker-telemetry types (``EventCounters``,
``CacheStats``, ``TLBStats``, ``BranchStats``), so tape replay order cannot
change what a policy eventually sees.

>>> collector = RuntimeStatsCollector()
>>> collector.observe_batch("a2 < 10", rows_in=256, rows_passed=16)
>>> round(collector.selectivity("a2 < 10"), 3)
0.062
>>> collector.observe_cardinality("card:S", 200)
>>> collector.cardinality("card:S")
200.0
>>> collector.observe_pressure("scan:R", size=256, rows=256, l1d_misses=310)
>>> clone = RuntimeStatsCollector.from_snapshot(collector.snapshot())
>>> clone.pressure["scan:R"][256].l1d_misses
310
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


def conjunct_key(expression) -> str:
    """Stable identity of a conjunct across operators, batches and workers.

    Expressions are frozen dataclasses, so ``repr`` is a deterministic,
    picklable rendering of the conjunct's structure -- the same predicate
    text maps to the same statistics no matter which scan (or which morsel
    worker) evaluated it.
    """
    return repr(expression)


@dataclass
class ConjunctStats:
    """Counters for one conjunct (all commutative sums)."""

    rows_in: int = 0
    rows_passed: int = 0
    batches: int = 0
    branches: int = 0
    branches_taken: int = 0
    mispredictions: int = 0

    @property
    def selectivity(self) -> Optional[float]:
        """Observed pass fraction, or ``None`` before any observation."""
        if self.rows_in <= 0:
            return None
        return self.rows_passed / self.rows_in

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def merge(self, other: "ConjunctStats") -> "ConjunctStats":
        self.rows_in += other.rows_in
        self.rows_passed += other.rows_passed
        self.batches += other.batches
        self.branches += other.branches
        self.branches_taken += other.branches_taken
        self.mispredictions += other.mispredictions
        return self

    def as_dict(self) -> Dict[str, int]:
        return {
            "rows_in": self.rows_in,
            "rows_passed": self.rows_passed,
            "batches": self.batches,
            "branches": self.branches,
            "branches_taken": self.branches_taken,
            "mispredictions": self.mispredictions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ConjunctStats":
        return cls(**{field: int(data.get(field, 0)) for field in
                      ("rows_in", "rows_passed", "batches", "branches",
                       "branches_taken", "mispredictions")})


@dataclass
class CardinalityStats:
    """Observed output cardinality of one operator input (per execution).

    A cardinality is a per-execution quantity, so summing across executions
    would be meaningless; the pair (total rows, observation count) *is*
    commutatively mergeable, and the mean is the runtime estimate policies
    consume.
    """

    rows: int = 0
    observations: int = 0

    @property
    def mean(self) -> Optional[float]:
        if self.observations <= 0:
            return None
        return self.rows / self.observations

    def merge(self, other: "CardinalityStats") -> "CardinalityStats":
        self.rows += other.rows
        self.observations += other.observations
        return self

    def as_dict(self) -> Dict[str, int]:
        return {"rows": self.rows, "observations": self.observations}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CardinalityStats":
        return cls(rows=int(data.get("rows", 0)),
                   observations=int(data.get("observations", 0)))


@dataclass
class BatchPressureStats:
    """Rows and simulated L1D misses charged at one batch-size rung."""

    rows: int = 0
    l1d_misses: int = 0
    batches: int = 0

    @property
    def misses_per_row(self) -> Optional[float]:
        if self.rows <= 0:
            return None
        return self.l1d_misses / self.rows

    def merge(self, other: "BatchPressureStats") -> "BatchPressureStats":
        self.rows += other.rows
        self.l1d_misses += other.l1d_misses
        self.batches += other.batches
        return self

    def as_dict(self) -> Dict[str, int]:
        return {"rows": self.rows, "l1d_misses": self.l1d_misses,
                "batches": self.batches}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "BatchPressureStats":
        return cls(rows=int(data.get("rows", 0)),
                   l1d_misses=int(data.get("l1d_misses", 0)),
                   batches=int(data.get("batches", 0)))


class RuntimeStatsCollector:
    """Runtime observations (conjuncts, cardinalities, L1D pressure),
    mergeable in any order."""

    __slots__ = ("conjuncts", "cardinalities", "pressure")

    def __init__(self) -> None:
        self.conjuncts: Dict[str, ConjunctStats] = {}
        #: Per-operator-input observed cardinalities (join-side decision).
        self.cardinalities: Dict[str, CardinalityStats] = {}
        #: Per-scan, per-batch-size-rung L1D pressure (batch-size decision).
        self.pressure: Dict[str, Dict[int, BatchPressureStats]] = {}

    def stats_for(self, key: str) -> ConjunctStats:
        stats = self.conjuncts.get(key)
        if stats is None:
            stats = ConjunctStats()
            self.conjuncts[key] = stats
        return stats

    # -------------------------------------------------------- observations
    def observe_batch(self, key: str, rows_in: int, rows_passed: int) -> None:
        """Record one conjunct evaluation over ``rows_in`` surviving rows."""
        stats = self.stats_for(key)
        stats.rows_in += rows_in
        stats.rows_passed += rows_passed
        stats.batches += 1

    def observe_branches(self, key: str, branches: int, taken: int,
                         mispredictions: int) -> None:
        """Record the simulated branch outcomes of one conjunct evaluation."""
        stats = self.stats_for(key)
        stats.branches += branches
        stats.branches_taken += taken
        stats.mispredictions += mispredictions

    def observe_cardinality(self, key: str, rows: int) -> None:
        """Record that the operator input ``key`` produced ``rows`` rows in
        one complete execution (not additive across executions -- the mean
        over observations is the estimate)."""
        stats = self.cardinalities.get(key)
        if stats is None:
            stats = self.cardinalities[key] = CardinalityStats()
        stats.rows += rows
        stats.observations += 1

    def observe_pressure(self, key: str, size: int, rows: int,
                         l1d_misses: int) -> None:
        """Record one batch's simulated L1D misses at batch-size rung
        ``size`` for the scan identified by ``key``."""
        rungs = self.pressure.get(key)
        if rungs is None:
            rungs = self.pressure[key] = {}
        stats = rungs.get(size)
        if stats is None:
            stats = rungs[size] = BatchPressureStats()
        stats.rows += rows
        stats.l1d_misses += l1d_misses
        stats.batches += 1

    # ------------------------------------------------------------- queries
    def selectivity(self, key: str, default: float = 0.5) -> float:
        """Observed selectivity of a conjunct (``default`` until observed)."""
        stats = self.conjuncts.get(key)
        if stats is None:
            return default
        value = stats.selectivity
        return default if value is None else value

    def observed(self, key: str) -> bool:
        stats = self.conjuncts.get(key)
        return stats is not None and stats.rows_in > 0

    def total_rows_in(self) -> int:
        return sum(stats.rows_in for stats in self.conjuncts.values())

    def cardinality(self, key: str) -> Optional[float]:
        """Mean observed cardinality of an operator input (``None`` until
        observed at least once)."""
        stats = self.cardinalities.get(key)
        if stats is None:
            return None
        return stats.mean

    def pressure_profile(self, key: str) -> Dict[int, BatchPressureStats]:
        """Observed L1D pressure per batch-size rung for one scan key."""
        return self.pressure.get(key, {})

    # ------------------------------------------------------ merge/snapshot
    def merge(self, other: "RuntimeStatsCollector") -> "RuntimeStatsCollector":
        """Commutatively fold ``other`` into this collector (sums only)."""
        for key, stats in other.conjuncts.items():
            self.stats_for(key).merge(stats)
        for key, cardinality in other.cardinalities.items():
            mine = self.cardinalities.get(key)
            if mine is None:
                mine = self.cardinalities[key] = CardinalityStats()
            mine.merge(cardinality)
        for key, rungs in other.pressure.items():
            my_rungs = self.pressure.get(key)
            if my_rungs is None:
                my_rungs = self.pressure[key] = {}
            for size, stats in rungs.items():
                mine = my_rungs.get(size)
                if mine is None:
                    mine = my_rungs[size] = BatchPressureStats()
                mine.merge(stats)
        return self

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict rendering (picklable; rides morsel specs and tapes)."""
        return {
            "conjuncts": {key: stats.as_dict()
                          for key, stats in self.conjuncts.items()},
            "cardinalities": {key: stats.as_dict()
                              for key, stats in self.cardinalities.items()},
            "pressure": {key: {size: stats.as_dict()
                               for size, stats in rungs.items()}
                         for key, rungs in self.pressure.items()},
        }

    @classmethod
    def from_snapshot(cls, snapshot: Optional[Dict[str, Dict]]
                      ) -> "RuntimeStatsCollector":
        collector = cls()
        snapshot = snapshot or {}
        for key, data in (snapshot.get("conjuncts") or {}).items():
            collector.conjuncts[key] = ConjunctStats.from_dict(data)
        for key, data in (snapshot.get("cardinalities") or {}).items():
            collector.cardinalities[key] = CardinalityStats.from_dict(data)
        for key, rungs in (snapshot.get("pressure") or {}).items():
            collector.pressure[key] = {int(size): BatchPressureStats.from_dict(data)
                                       for size, data in rungs.items()}
        return collector
