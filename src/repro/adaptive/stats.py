"""Runtime statistics for micro-adaptive execution.

The paper's result -- branch mispredictions and instruction stalls, not
computation, dominate query time -- makes multi-conjunct filters the
cheapest place to recover cycles at run time: evaluating a poorly-selective
conjunct first pays a ~50/50 data branch per record *and* forwards most
records to the remaining conjuncts.  The optimiser cannot fix this without
estimates it does not have; the engine can, because per-batch selectivity is
directly observable.

:class:`RuntimeStatsCollector` is the observation half of that loop.  It
keeps one :class:`ConjunctStats` per conjunct (keyed by the conjunct's
stable textual identity) recording

* data-side observations -- rows in, rows passed, batches seen -- which are
  pure functions of the stored data and therefore also observable inside
  morsel workers (they ride the charge tapes back to the parent), and
* hardware-side observations -- simulated branch outcomes and
  mispredictions -- which only the real
  :class:`~repro.execution.context.ExecutionContext` can produce, because
  only it drives a branch predictor.

Everything is plain integer counters: collectors pickle compactly across
the morsel process boundary and :meth:`merge` is commutative (sums only),
exactly like the PR 3 worker-telemetry types (``EventCounters``,
``CacheStats``, ``TLBStats``, ``BranchStats``), so tape replay order cannot
change what a policy eventually sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


def conjunct_key(expression) -> str:
    """Stable identity of a conjunct across operators, batches and workers.

    Expressions are frozen dataclasses, so ``repr`` is a deterministic,
    picklable rendering of the conjunct's structure -- the same predicate
    text maps to the same statistics no matter which scan (or which morsel
    worker) evaluated it.
    """
    return repr(expression)


@dataclass
class ConjunctStats:
    """Counters for one conjunct (all commutative sums)."""

    rows_in: int = 0
    rows_passed: int = 0
    batches: int = 0
    branches: int = 0
    branches_taken: int = 0
    mispredictions: int = 0

    @property
    def selectivity(self) -> Optional[float]:
        """Observed pass fraction, or ``None`` before any observation."""
        if self.rows_in <= 0:
            return None
        return self.rows_passed / self.rows_in

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def merge(self, other: "ConjunctStats") -> "ConjunctStats":
        self.rows_in += other.rows_in
        self.rows_passed += other.rows_passed
        self.batches += other.batches
        self.branches += other.branches
        self.branches_taken += other.branches_taken
        self.mispredictions += other.mispredictions
        return self

    def as_dict(self) -> Dict[str, int]:
        return {
            "rows_in": self.rows_in,
            "rows_passed": self.rows_passed,
            "batches": self.batches,
            "branches": self.branches,
            "branches_taken": self.branches_taken,
            "mispredictions": self.mispredictions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ConjunctStats":
        return cls(**{field: int(data.get(field, 0)) for field in
                      ("rows_in", "rows_passed", "batches", "branches",
                       "branches_taken", "mispredictions")})


class RuntimeStatsCollector:
    """Per-conjunct runtime observations, mergeable in any order."""

    __slots__ = ("conjuncts",)

    def __init__(self) -> None:
        self.conjuncts: Dict[str, ConjunctStats] = {}

    def stats_for(self, key: str) -> ConjunctStats:
        stats = self.conjuncts.get(key)
        if stats is None:
            stats = ConjunctStats()
            self.conjuncts[key] = stats
        return stats

    # -------------------------------------------------------- observations
    def observe_batch(self, key: str, rows_in: int, rows_passed: int) -> None:
        """Record one conjunct evaluation over ``rows_in`` surviving rows."""
        stats = self.stats_for(key)
        stats.rows_in += rows_in
        stats.rows_passed += rows_passed
        stats.batches += 1

    def observe_branches(self, key: str, branches: int, taken: int,
                         mispredictions: int) -> None:
        """Record the simulated branch outcomes of one conjunct evaluation."""
        stats = self.stats_for(key)
        stats.branches += branches
        stats.branches_taken += taken
        stats.mispredictions += mispredictions

    # ------------------------------------------------------------- queries
    def selectivity(self, key: str, default: float = 0.5) -> float:
        """Observed selectivity of a conjunct (``default`` until observed)."""
        stats = self.conjuncts.get(key)
        if stats is None:
            return default
        value = stats.selectivity
        return default if value is None else value

    def observed(self, key: str) -> bool:
        stats = self.conjuncts.get(key)
        return stats is not None and stats.rows_in > 0

    def total_rows_in(self) -> int:
        return sum(stats.rows_in for stats in self.conjuncts.values())

    # ------------------------------------------------------ merge/snapshot
    def merge(self, other: "RuntimeStatsCollector") -> "RuntimeStatsCollector":
        """Commutatively fold ``other`` into this collector (sums only)."""
        for key, stats in other.conjuncts.items():
            self.stats_for(key).merge(stats)
        return self

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict rendering (picklable; rides morsel specs and tapes)."""
        return {key: stats.as_dict() for key, stats in self.conjuncts.items()}

    @classmethod
    def from_snapshot(cls, snapshot: Optional[Dict[str, Dict[str, int]]]
                      ) -> "RuntimeStatsCollector":
        collector = cls()
        for key, data in (snapshot or {}).items():
            collector.conjuncts[key] = ConjunctStats.from_dict(data)
        return collector
