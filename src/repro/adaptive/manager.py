"""The adaptive execution manager: decompose, reorder, short-circuit, decide.

:class:`AdaptiveExecution` is the object the execution layer talks to.  It
owns one decision policy and one
:class:`~repro.adaptive.stats.RuntimeStatsCollector`, carries the opt-in
``join_sides`` / ``batch_sizing`` decision switches the vectorized hash
join and sequential scans consult, and replaces the single
``predicate.evaluate_batch`` call of a vectorized filter with a
per-conjunct short-circuit pipeline:

1. the ``And`` tree is flattened into conjuncts (nested ``And`` s too;
   anything that is not a conjunction of two or more operands is left to
   the static path untouched),
2. the policy picks an evaluation order from the observed statistics --
   re-decided *per batch*, so a selectivity shift mid-scan changes the
   order mid-scan,
3. conjuncts are evaluated over the *surviving* row positions only
   (selection-vector short-circuiting: a row rejected by an earlier
   conjunct never reaches a later one), and
4. the surviving positions are recombined into a boolean mask that is
   positionally identical to evaluating the original predicate row by row.

Ordering safety: every expression in :mod:`repro.query.expressions` is a
pure total function of its row (comparisons involving ``None`` evaluate to
``False`` rather than raising, SQL-style), so conjunction is commutative
and any evaluation order yields the same mask -- the hypothesis harness in
``tests/test_adaptive.py`` drives random conjunct sets (including ``Not``,
``Between`` and ``None``-valued columns) through every policy to pin this.

Charging: each conjunct evaluation is charged through
:meth:`~repro.execution.context.ExecutionContext.visit_conjunct_batch` --
one batched ``predicate`` routine visit over the surviving rows *plus one
data-dependent branch per row* whose outcome is that row's pass/fail.  The
tuple engine models the selection branch per record
(``visit("predicate", data_taken=...)``); the vectorized engine amortised
it away into bulk loop branches.  The adaptive path restores it at conjunct
granularity, which is exactly the penalty surface the paper describes: a
50%-selective conjunct is a hardware coin-flip the predictor cannot learn,
while a well-skewed conjunct trains the 2-bit counters almost perfectly.
That is what makes ordering measurable on the simulated branch unit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..query.expressions import And, Expression, _column_vector
from .policy import AdaptivePolicy, make_policy
from .stats import RuntimeStatsCollector, conjunct_key

#: Routine whose code segment conjunct evaluations are charged against.
PREDICATE_OPERATION = "predicate"


def flatten_conjuncts(predicate: Expression) -> Tuple[Expression, ...]:
    """Flatten (nested) ``And`` trees into a tuple of conjuncts."""
    if isinstance(predicate, And):
        out: List[Expression] = []
        for operand in predicate.operands:
            out.extend(flatten_conjuncts(operand))
        return tuple(out)
    return (predicate,)


class _ConjunctPlan:
    """Pre-resolved decomposition of one predicate (cached per manager)."""

    __slots__ = ("predicate", "conjuncts", "keys", "costs", "column_names")

    def __init__(self, predicate: Expression) -> None:
        self.predicate = predicate
        self.conjuncts = flatten_conjuncts(predicate)
        self.keys = tuple(conjunct_key(c) for c in self.conjuncts)
        # Static per-row cost proxy: the number of data-dependent
        # comparisons the conjunct evaluates (>= 1).
        self.costs = tuple(max(c.comparison_count(), 1) for c in self.conjuncts)
        self.column_names = tuple(tuple(c.columns()) for c in self.conjuncts)

    @property
    def applies(self) -> bool:
        return len(self.conjuncts) >= 2


def _resolve_vector(columns: Mapping[str, Sequence], name: str) -> Sequence:
    """Find a column vector by qualified or unqualified name (the expression
    layer's resolution rule, so the adaptive path cannot diverge from it)."""
    vector = _column_vector(columns, name)
    if vector is None:
        raise KeyError(f"batch {sorted(columns)} has no column {name!r}")
    return vector


class AdaptiveExecution:
    """Policy + statistics + the runtime decisions the engine consults.

    One instance lives on an :class:`~repro.execution.context.
    ExecutionContext` (attached by the session when
    ``adaptivity != "off"``); morsel workers build a private instance from
    the spec's snapshot and their data-side observations ride the charge
    tapes back into the parent's instance.

    Beyond the PR 4 conjunct-reordering decision (always active when the
    manager exists and the predicate is a multi-conjunct conjunction), the
    manager carries two opt-in decision switches, threaded from
    ``ExecutionConfig``:

    * ``join_sides`` -- the vectorized hash join consults
      :meth:`~repro.adaptive.policy.AdaptivePolicy.flip_join` between
      build-side batches and may build on the probe side instead
      (rows and column order stay identical to the static plan);
    * ``batch_sizing`` -- vectorized sequential scans accumulate vectors
      across page boundaries and consult
      :meth:`~repro.adaptive.policy.AdaptivePolicy.batch_size` from the
      observed L1D miss pressure.

    >>> manager = AdaptiveExecution("greedy", join_sides=True)
    >>> clone = AdaptiveExecution.from_snapshot(manager.snapshot())
    >>> (clone.mode, clone.join_sides, clone.batch_sizing)
    ('greedy', True, False)
    """

    def __init__(self, mode: str,
                 policy: Optional[AdaptivePolicy] = None,
                 collector: Optional[RuntimeStatsCollector] = None,
                 join_sides: bool = False,
                 batch_sizing: bool = False) -> None:
        self.mode = mode
        self.policy = policy or make_policy(mode)
        self.collector = collector or RuntimeStatsCollector()
        self.join_sides = join_sides
        self.batch_sizing = batch_sizing
        self._plans: Dict[int, _ConjunctPlan] = {}

    # ------------------------------------------------------------ plumbing
    def plan_for(self, predicate: Expression) -> _ConjunctPlan:
        plan = self._plans.get(id(predicate))
        if plan is None or plan.predicate is not predicate:
            plan = _ConjunctPlan(predicate)
            self._plans[id(predicate)] = plan
        return plan

    def applies(self, predicate: Optional[Expression]) -> bool:
        """True when the predicate is a >= 2-conjunct conjunction."""
        return predicate is not None and self.plan_for(predicate).applies

    def snapshot(self) -> dict:
        """Picklable state a morsel worker resumes from."""
        return {"mode": self.mode,
                "collector": self.collector.snapshot(),
                "policy": self.policy.state(),
                "join_sides": self.join_sides,
                "batch_sizing": self.batch_sizing}

    @classmethod
    def from_snapshot(cls, snapshot: Optional[dict]) -> "AdaptiveExecution":
        snapshot = snapshot or {}
        mode = snapshot.get("mode", "static")
        manager = cls(mode,
                      join_sides=bool(snapshot.get("join_sides", False)),
                      batch_sizing=bool(snapshot.get("batch_sizing", False)))
        manager.collector = RuntimeStatsCollector.from_snapshot(
            snapshot.get("collector"))
        manager.policy.restore(snapshot.get("policy"))
        return manager

    # ----------------------------------------------------------- the point
    def evaluate_batch(self, ctx, predicate: Expression,
                       columns: Mapping[str, Sequence], count: int) -> List[bool]:
        """Policy-ordered, short-circuiting replacement for
        ``predicate.evaluate_batch`` -- identical mask, adaptive charging.

        ``ctx`` is an execution context *or* a morsel worker's
        :class:`~repro.execution.parallel.TapeRecorder`; both expose
        ``visit_conjunct_batch`` and ``observe_conjuncts``.
        """
        plan = self.plan_for(predicate)
        order = self.policy.order(plan.keys, plan.costs, self.collector)
        kernels = getattr(ctx, "kernels", None)
        gather = kernels.gather if kernels is not None else None
        positions: List[int] = list(range(count))
        for conjunct_index in order:
            if not positions:
                break
            conjunct = plan.conjuncts[conjunct_index]
            key = plan.keys[conjunct_index]
            survivors_count = len(positions)
            sub_columns: Dict[str, Sequence] = {}
            for name in plan.column_names[conjunct_index]:
                vector = _resolve_vector(columns, name)
                # While every row survives (the first conjunct in the
                # order), the original vectors can be read directly --
                # evaluate_batch never mutates them.
                if survivors_count == count:
                    sub_columns[name] = vector
                elif gather is not None:
                    sub_columns[name] = gather(vector, positions)
                else:
                    sub_columns[name] = [vector[i] for i in positions]
            outcomes = conjunct.evaluate_batch(sub_columns, survivors_count,
                                               kernels)
            # One batched routine visit plus one data branch per surviving
            # row, at a site that identifies the *conjunct* (not its current
            # position), so predictor state follows the conjunct across
            # reorderings.
            ctx.visit_conjunct_batch(PREDICATE_OPERATION, outcomes,
                                     site=conjunct_index, key=key)
            if kernels is not None:
                survivors = kernels.select(positions, outcomes)
            else:
                survivors = [position for position, passed
                             in zip(positions, outcomes) if passed]
            ctx.observe_conjuncts(key, len(positions), len(survivors))
            positions = survivors
        mask = [False] * count
        for position in positions:
            mask[position] = True
        return mask
