"""Micro-adaptive execution: runtime statistics + per-morsel conjunct reordering.

The subsystem has three layers (see the module docstrings for the design
rationale):

* :mod:`.stats` -- :class:`RuntimeStatsCollector`, cheap picklable counters
  of per-conjunct selectivities and simulated branch outcomes that merge
  commutatively (they ride the morsel charge tapes back to the parent);
* :mod:`.policy` -- the :class:`AdaptivePolicy` interface with
  :class:`StaticPolicy` (planner order, the control arm),
  :class:`GreedyRankPolicy` (ascending ``(selectivity-1)/cost`` rank) and
  :class:`EpsilonGreedyPolicy` (greedy with deterministic exploration);
* :mod:`.manager` -- :class:`AdaptiveExecution`, which decomposes ``And``
  trees, evaluates conjuncts in policy order with short-circuit selection
  vectors, recombines a mask identical to the static engine's, and charges
  per-row data-dependent branches so orderings are measurable on the
  simulated branch unit.

``ExecutionConfig.adaptivity`` / ``Session(adaptivity=...)`` select the mode:
``"off"`` (bit-identical to previous releases), ``"static"``, ``"greedy"``
or ``"epsilon"``.
"""

from .manager import AdaptiveExecution, flatten_conjuncts
from .policy import (AdaptivePolicy, EpsilonGreedyPolicy, GreedyRankPolicy,
                     POLICIES, StaticPolicy, make_policy)
from .stats import ConjunctStats, RuntimeStatsCollector, conjunct_key

__all__ = [
    "AdaptiveExecution", "flatten_conjuncts",
    "AdaptivePolicy", "StaticPolicy", "GreedyRankPolicy", "EpsilonGreedyPolicy",
    "POLICIES", "make_policy",
    "ConjunctStats", "RuntimeStatsCollector", "conjunct_key",
]
