"""Runtime-adaptation framework: observed statistics driving engine decisions.

The subsystem has three layers (see the module docstrings for the design
rationale):

* :mod:`.stats` -- :class:`RuntimeStatsCollector`, cheap picklable counters
  (per-conjunct selectivities and simulated branch outcomes, per-operator
  cardinalities, per-scan L1D miss pressure) that merge commutatively --
  they ride the morsel charge tapes back to the parent;
* :mod:`.policy` -- the :class:`AdaptivePolicy` interface with one method
  per runtime decision (conjunct :meth:`~AdaptivePolicy.order`, join-side
  :meth:`~AdaptivePolicy.flip_join`, vector
  :meth:`~AdaptivePolicy.batch_size`), implemented by
  :class:`StaticPolicy` (the planner's choices, the control arm),
  :class:`GreedyRankPolicy` (adapt every decision from observations) and
  :class:`EpsilonGreedyPolicy` (greedy with deterministic exploration of
  conjunct orders);
* :mod:`.manager` -- :class:`AdaptiveExecution`, the object the execution
  layer consults: it decomposes ``And`` trees and evaluates conjuncts in
  policy order with short-circuit selection vectors (recombining a mask
  identical to the static engine's), and carries the opt-in ``join_sides``
  / ``batch_sizing`` decision switches for the vectorized hash join and
  sequential scans.

``ExecutionConfig.adaptivity`` / ``Session(adaptivity=...)`` select the mode:
``"off"`` (bit-identical to previous releases), ``"static"``, ``"greedy"``
or ``"epsilon"``; ``adaptive_joins=True`` / ``adaptive_batching=True``
enable the per-decision switches under any non-``off`` mode.  Result rows
are identical in every combination; only the charged work differs.
"""

from .manager import AdaptiveExecution, flatten_conjuncts
from .policy import (AdaptivePolicy, BATCH_SIZE_LADDER, EpsilonGreedyPolicy,
                     GreedyRankPolicy, JOIN_FLIP_HYSTERESIS, POLICIES,
                     PRESSURE_SLACK, StaticPolicy, greedy_batch_size,
                     greedy_flip_join, make_policy)
from .stats import (BatchPressureStats, CardinalityStats, ConjunctStats,
                    RuntimeStatsCollector, conjunct_key)

__all__ = [
    "AdaptiveExecution", "flatten_conjuncts",
    "AdaptivePolicy", "StaticPolicy", "GreedyRankPolicy", "EpsilonGreedyPolicy",
    "POLICIES", "make_policy",
    "BATCH_SIZE_LADDER", "JOIN_FLIP_HYSTERESIS", "PRESSURE_SLACK",
    "greedy_batch_size", "greedy_flip_join",
    "ConjunctStats", "CardinalityStats", "BatchPressureStats",
    "RuntimeStatsCollector", "conjunct_key",
]
