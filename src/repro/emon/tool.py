"""An ``emon``-style counter measurement tool.

The paper measured its 74 event types with Intel's ``emon`` utility, which can
program the Pentium II's *two* hardware counters, run a command, and report
the counts.  Because only two events can be measured at a time, the paper's
methodology (Section 4.3) multiplexes event pairs across repeated executions
of a measurement unit (ten queries back to back), repeats each measurement
several times, and keeps the standard deviation below 5%.

:class:`Emon` reproduces that workflow against the simulated processor:

* events are requested with the same ``EVENT:MODE`` syntax
  (``INST_RETIRED:USER``, ``INST_RETIRED:SUP``), two at a time;
* each measurement invokes a caller-supplied *unit* callable (typically "run
  this query ten times" through a :class:`~repro.engine.session.Session`);
* measurements are repeated and summarised with mean, standard deviation and
  relative standard deviation;
* :meth:`Emon.collect` walks a whole event list pairwise, exactly like
  driving the real tool from a script.

The simulated platform can of course observe every event in a single run --
the full-counter path is what the experiment harness uses -- so the emon layer
exists to reproduce (and test) the measurement *methodology*: the pairwise
multiplexed results must agree with the directly observed counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..hardware.counters import EVENT_DESCRIPTIONS, EventCounters, MODE_SUP, MODE_USER


class EmonError(RuntimeError):
    """Raised for malformed event specifications or missing measurements."""


#: A measurement unit: a callable that executes the workload once and returns
#: the counter snapshot that covers it.
UnitRunner = Callable[[], EventCounters]


@dataclass(frozen=True)
class EventSpec:
    """One ``EVENT:MODE`` specification."""

    event: str
    mode: str = MODE_USER

    @classmethod
    def parse(cls, text: str) -> "EventSpec":
        """Parse ``"INST_RETIRED:USER"`` (mode defaults to USER)."""
        parts = text.strip().split(":")
        event = parts[0].strip().upper()
        if event not in EVENT_DESCRIPTIONS:
            raise EmonError(f"unknown event {event!r}")
        mode = MODE_USER
        if len(parts) > 1 and parts[1].strip():
            mode = parts[1].strip().upper()
            if mode not in (MODE_USER, MODE_SUP):
                raise EmonError(f"unknown mode {parts[1]!r} (expected USER or SUP)")
        if len(parts) > 2:
            raise EmonError(f"malformed event specification {text!r}")
        return cls(event=event, mode=mode)

    def read(self, counters: EventCounters) -> int:
        return counters.get(self.event, self.mode)

    def __str__(self) -> str:
        return f"{self.event}:{self.mode}"


@dataclass
class Measurement:
    """Repeated observations of one event specification."""

    spec: EventSpec
    samples: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def std_dev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((value - mean) ** 2 for value in self.samples) / (len(self.samples) - 1)
        return math.sqrt(variance)

    @property
    def relative_std_dev(self) -> float:
        """Coefficient of variation, hardened for zero-mean samples.

        A zero mean with scattered samples (e.g. a counter oscillating
        around 0) must *fail* the confidence check, not silently pass it:
        report infinite relative deviation instead of dividing by zero.
        Negative means (derived counter expressions can go negative)
        normalise by the magnitude.
        """
        mean = self.mean
        if mean == 0.0:
            return float("inf") if self.std_dev > 0.0 else 0.0
        return self.std_dev / abs(mean)

    def as_dict(self) -> Dict[str, float]:
        return {"mean": self.mean, "std_dev": self.std_dev,
                "relative_std_dev": self.relative_std_dev,
                "samples": float(len(self.samples))}


class Emon:
    """Pairwise, repeated event-counter measurement driver."""

    #: The real tool exposes two programmable counters.
    COUNTERS_AVAILABLE = 2

    def __init__(self, unit_runner: UnitRunner, repetitions: int = 3,
                 max_relative_std_dev: float = 0.05) -> None:
        if repetitions < 1:
            raise EmonError("repetitions must be at least 1")
        self.unit_runner = unit_runner
        self.repetitions = repetitions
        self.max_relative_std_dev = max_relative_std_dev

    # ------------------------------------------------------------------ run
    def measure_pair(self, first: str, second: Optional[str] = None) -> Dict[str, Measurement]:
        """Measure one (or two) event specifications over repeated unit runs.

        Mirrors ``emon -C ( EVENT_A, EVENT_B ) unit``: both events are read
        from the same executions.
        """
        specs = [EventSpec.parse(first)]
        if second is not None:
            specs.append(EventSpec.parse(second))
        if len(specs) > self.COUNTERS_AVAILABLE:
            raise EmonError("the Pentium II exposes only two programmable counters")
        measurements = {str(spec): Measurement(spec) for spec in specs}
        for _ in range(self.repetitions):
            counters = self.unit_runner()
            for spec in specs:
                measurements[str(spec)].samples.append(float(spec.read(counters)))
        return measurements

    def collect(self, events: Sequence[str]) -> Dict[str, Measurement]:
        """Measure an arbitrary list of event specs, two at a time."""
        results: Dict[str, Measurement] = {}
        for start in range(0, len(events), self.COUNTERS_AVAILABLE):
            pair = events[start:start + self.COUNTERS_AVAILABLE]
            first = pair[0]
            second = pair[1] if len(pair) > 1 else None
            results.update(self.measure_pair(first, second))
        return results

    # -------------------------------------------------------------- quality
    def check_confidence(self, measurements: Mapping[str, Measurement]) -> List[str]:
        """Event specs whose relative standard deviation exceeds the target.

        The paper repeats experiments until the standard deviation is below
        5%; callers can re-run :meth:`collect` with more repetitions for the
        returned events.
        """
        return [name for name, measurement in measurements.items()
                if measurement.relative_std_dev > self.max_relative_std_dev]

    @staticmethod
    def means(measurements: Mapping[str, Measurement]) -> Dict[str, float]:
        return {name: measurement.mean for name, measurement in measurements.items()}


def default_event_list() -> List[str]:
    """The event specifications the breakdown formulae need, in user mode.

    A subset of the 74 events the paper measured: the ones that feed the
    Table 4.2 formulae plus the rate metrics of Section 5.
    """
    events = [
        "CPU_CLK_UNHALTED", "INST_RETIRED", "UOPS_RETIRED", "DATA_MEM_REFS",
        "DCU_LINES_IN", "IFU_IFETCH", "IFU_IFETCH_MISS", "IFU_MEM_STALL",
        "ILD_STALL", "L2_DATA_RQSTS", "L2_DATA_MISS", "L2_IFETCH", "L2_IFETCH_MISS",
        "ITLB_MISS", "BR_INST_RETIRED", "BR_MISS_PRED_RETIRED", "BTB_MISSES",
        "RESOURCE_STALLS", "PARTIAL_RAT_STALLS", "FU_CONTENTION_STALLS",
        "BUS_TRAN_MEM", "RECORDS_PROCESSED",
    ]
    return [f"{event}:USER" for event in events]
