"""Emon-style hardware-counter measurement methodology."""

from .tool import Emon, EmonError, EventSpec, Measurement, UnitRunner, default_event_list

__all__ = ["Emon", "EmonError", "EventSpec", "Measurement", "UnitRunner",
           "default_event_list"]
