"""System profiles for the four commercial DBMSs of the study."""

from .profile import (ACCESS_FIELDS_ONLY, ACCESS_FULL_RECORD, BRANCH_KINDS,
                      BranchSiteSpec, OperationCost, OPERATION_NAMES, ProfileError,
                      SystemProfile)
from .vendors import (ALL_SYSTEMS, BASE_COSTS, SYSTEM_A, SYSTEM_B, SYSTEM_C, SYSTEM_D,
                      all_systems, system_a, system_b, system_c, system_d, system_by_key)

__all__ = [
    "ACCESS_FIELDS_ONLY", "ACCESS_FULL_RECORD", "BRANCH_KINDS", "BranchSiteSpec",
    "OperationCost", "OPERATION_NAMES", "ProfileError", "SystemProfile",
    "ALL_SYSTEMS", "BASE_COSTS", "SYSTEM_A", "SYSTEM_B", "SYSTEM_C", "SYSTEM_D",
    "all_systems", "system_a", "system_b", "system_c", "system_d", "system_by_key",
]
