"""System profiles: the implementation idioms of the four commercial DBMSs.

The paper could not disclose the identities of the four systems and had no
access to their source code; it characterises them purely through externally
observable implementation properties (instructions retired per record, cache
footprints and miss rates, optimiser choices, branch behaviour, resource
stalls).  A :class:`SystemProfile` encodes exactly those properties, and the
execution engine consults the profile while running *real* operators over
*real* pages, so the hardware-level differences between "System A" and
"System D" emerge from the simulation rather than being pasted into the
results.

The profile has three groups of knobs:

Planner policy
    ``uses_index_for_range_selection``, ``index_selectivity_threshold`` and
    ``join_algorithm`` -- the observable optimiser differences (System A
    refuses the non-clustered index for the 10% selection).

Per-operation costs (:class:`OperationCost`)
    For each executor routine (fetch next record from a page, evaluate the
    predicate, probe the hash table, fetch a record by rid, ...) the profile
    states how many instructions the routine retires, how many unique bytes
    of code it touches (its instruction-cache footprint), how many of its
    loads/stores stay in hot private structures, how many touches it makes to
    the system's private working set, which dynamic branch sites it contains
    and how many dependency / functional-unit stall cycles its instruction
    mix incurs on the out-of-order core.

Data-access style and working set
    ``record_access_style`` distinguishes engines that touch only the
    referenced fields of a record from engines that sweep the whole record
    (slot parsing, column extraction), which is what separates System B's 2%
    L2 data miss rate from the 40--90% of the others; ``workspace_bytes``
    sizes the private working set whose residence in L1D/L2 shapes the L1
    D-cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple


class ProfileError(ValueError):
    """Raised for malformed system profiles."""


#: Branch-site behaviour classes used by the execution engine.
BRANCH_KIND_LOOP = "loop"            # loop-closing branch, almost always taken
BRANCH_KIND_DATA = "data"            # outcome supplied by the operator (predicate, match test)
BRANCH_KIND_ALTERNATING = "alternating"  # flips every visit (poorly predicted by 2-bit counters)
BRANCH_KIND_RARE = "rare"            # taken rarely (error paths); almost perfectly predicted
BRANCH_KIND_COLD = "cold"            # site address varies per visit; always misses the BTB

BRANCH_KINDS = (BRANCH_KIND_LOOP, BRANCH_KIND_DATA, BRANCH_KIND_ALTERNATING,
                BRANCH_KIND_RARE, BRANCH_KIND_COLD)


@dataclass(frozen=True)
class BranchSiteSpec:
    """One dynamic branch site inside an executor routine."""

    name: str
    kind: str
    #: How many dynamic branch instructions this simulated site stands for per
    #: visit (sites representing small internal loops use weight > 1).
    weight: int = 1

    def __post_init__(self) -> None:
        if self.kind not in BRANCH_KINDS:
            raise ProfileError(f"unknown branch kind {self.kind!r}")
        if self.weight < 1:
            raise ProfileError("branch site weight must be >= 1")


@dataclass(frozen=True)
class OperationCost:
    """Cost and footprint of one invocation of an executor routine.

    ``code_bytes`` is the routine's *hot* footprint: the tight inner code that
    is re-executed on every invocation and therefore normally stays resident
    in the 16 KB L1 I-cache.  ``cold_code_bytes`` is the per-invocation slice
    of *low-locality* code -- dispatch targets, per-type specialisations,
    utility routines, error handling interleaved with the hot path -- drawn
    from a large rotating pool so that it is rarely still L1I-resident when
    re-executed (but normally still L2-resident).  The cold slice is what
    produces the sustained L1 instruction miss rates the paper measures;
    systems differ primarily in how much of it they drag in per record.
    """

    instructions: int
    code_bytes: int
    cold_code_bytes: int = 0
    data_refs: int = 0
    workspace_touches: int = 0
    dependency_stall_cycles: float = 0.0
    fu_stall_cycles: float = 0.0
    branch_sites: Tuple[BranchSiteSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.code_bytes < 0 or self.data_refs < 0:
            raise ProfileError("operation costs must be non-negative")
        if self.cold_code_bytes < 0:
            raise ProfileError("cold_code_bytes must be non-negative")
        if self.workspace_touches < 0:
            raise ProfileError("workspace_touches must be non-negative")

    def scaled(self, path_factor: float = 1.0, footprint_factor: float = 1.0,
               stall_factor: float = 1.0, cold_factor: Optional[float] = None) -> "OperationCost":
        """Scale path length / footprint / stalls (used to derive system variants)."""
        if cold_factor is None:
            cold_factor = footprint_factor
        return replace(
            self,
            instructions=max(int(round(self.instructions * path_factor)), 1),
            code_bytes=max(int(round(self.code_bytes * footprint_factor)), 64),
            cold_code_bytes=int(round(self.cold_code_bytes * cold_factor)),
            data_refs=int(round(self.data_refs * path_factor)),
            workspace_touches=int(round(self.workspace_touches * path_factor)),
            dependency_stall_cycles=self.dependency_stall_cycles * stall_factor,
            fu_stall_cycles=self.fu_stall_cycles * stall_factor,
        )


#: Executor routine names the execution engine charges.  Every profile must
#: provide a cost for each of these.
OPERATION_NAMES: Tuple[str, ...] = (
    "query_setup",        # per query: parse/optimise/open cursors
    "scan_next",          # per record delivered by a sequential scan
    "page_boundary",      # per heap page crossing (buffer manager code)
    "predicate",          # per predicate evaluation
    "agg_update",         # per qualifying record folded into the aggregate
    "index_descend_node", # per B+-tree node visited while descending
    "leaf_advance",       # per leaf entry scanned during an index range scan
    "rid_fetch",          # per record fetched from the heap by record id
    "hash_build",         # per build-side record inserted into the hash table
    "hash_probe",         # per probe-side record hashed and matched
    "join_output",        # per joined pair delivered upward
    "inner_scan_next",    # per inner-side record in a nested-loop join rescans
    "sort_merge_step",    # per record passed through a sort/merge phase
    "update_record",      # per in-place record update (OLTP path)
    "txn_overhead",       # per OLTP transaction (begin/commit, locking, logging)
)

#: Record field access styles.
ACCESS_FIELDS_ONLY = "fields_only"
ACCESS_FULL_RECORD = "full_record"


@dataclass(frozen=True)
class SystemProfile:
    """The complete behavioural description of one 'commercial DBMS'."""

    key: str
    name: str
    description: str

    # --- planner policy (satisfies repro.query.planner.PlannerPolicy) -----
    uses_index_for_range_selection: bool
    index_selectivity_threshold: float
    join_algorithm: str

    # --- data access behaviour --------------------------------------------
    record_access_style: str
    workspace_bytes: int
    workspace_touch_stride: int = 64
    cold_code_pool_bytes: int = 96 * 1024
    """Size of the rotating low-locality code pool.

    Sized well above the 16 KB L1 I-cache (so cold fetches keep missing
    there) but comfortably inside the 512 KB L2 even with relation data
    streaming through it (so they rarely miss in L2) -- matching the paper's
    observation that L2 instruction misses are two to three orders of
    magnitude rarer than L1 instruction misses."""

    # --- instruction stream behaviour --------------------------------------
    uops_per_instruction: float = 1.35
    branch_fraction: float = 0.20
    bulk_branch_misprediction_rate: float = 0.02
    bulk_branch_btb_miss_rate: float = 0.55
    """BTB miss rate of the bulk (non-simulated) branch population.

    The commercial systems' instruction footprints contain far more static
    branch sites than the 512-entry BTB can hold, so the paper measures a BTB
    miss ratio of roughly 50% on average; the dynamically simulated branch
    sites (hot loops and predicates) mostly hit, and this rate covers the
    long tail that does not."""
    ild_stall_per_instruction: float = 0.03
    vector_body_fraction: float = 0.25
    """Per-iteration share of a routine's cost that survives vectorization.

    When the executor runs a routine over a batch instead of invoking it per
    tuple, the interpretation overhead (dispatch, per-call setup, cold-code
    excursions) is paid once per batch and only the tight loop body remains
    per record.  This fraction scales the routine's instruction path,
    workspace churn and resource stalls for those loop-body iterations; the
    remaining ~1 - fraction is exactly the amortised overhead the paper
    attributes to tuple-at-a-time interpretation."""
    code_layout_gap_bytes: int = 0
    """Padding inserted between code segments when laying them out.

    A non-zero gap spreads the executor's routines over a larger span of the
    instruction address space, which is how poor static code layout (the
    thing the paper says DBMS vendors should fix) is expressed physically.
    """

    # --- per-operation costs ------------------------------------------------
    costs: Mapping[str, OperationCost] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.record_access_style not in (ACCESS_FIELDS_ONLY, ACCESS_FULL_RECORD):
            raise ProfileError(f"unknown record access style {self.record_access_style!r}")
        if not 0.0 <= self.index_selectivity_threshold <= 1.0:
            raise ProfileError("index_selectivity_threshold must be in [0, 1]")
        if self.join_algorithm not in ("hash", "nested_loop", "index_nested_loop", "sort_merge"):
            raise ProfileError(f"unknown join algorithm {self.join_algorithm!r}")
        if not 0.0 < self.branch_fraction < 1.0:
            raise ProfileError("branch_fraction must be in (0, 1)")
        if not 0.0 <= self.bulk_branch_misprediction_rate <= 1.0:
            raise ProfileError("bulk_branch_misprediction_rate must be in [0, 1]")
        if not 0.0 <= self.bulk_branch_btb_miss_rate <= 1.0:
            raise ProfileError("bulk_branch_btb_miss_rate must be in [0, 1]")
        if self.workspace_bytes <= 0:
            raise ProfileError("workspace_bytes must be positive")
        if not 0.0 < self.vector_body_fraction <= 1.0:
            raise ProfileError("vector_body_fraction must be in (0, 1]")
        missing = [op for op in OPERATION_NAMES if op not in self.costs]
        if missing:
            raise ProfileError(f"profile {self.key!r} is missing operation costs: {missing}")

    def cost(self, operation: str) -> OperationCost:
        try:
            return self.costs[operation]
        except KeyError:
            raise ProfileError(f"profile {self.key!r} has no cost for {operation!r}") from None

    def with_overrides(self, **kwargs) -> "SystemProfile":
        """Copy of this profile with selected fields replaced (ablations)."""
        return replace(self, **kwargs)

    def path_instructions(self, operations: Mapping[str, float]) -> float:
        """Expected instructions for a path: sum(count * instructions(op)).

        Used by the analytical tests that cross-check the simulated
        instructions-per-record counts (Figure 5.3) against the profile.
        """
        return sum(self.cost(op).instructions * count for op, count in operations.items())

    def path_code_bytes(self, operations: Tuple[str, ...]) -> int:
        """Unique instruction footprint of a path (each routine counted once)."""
        return sum(self.cost(op).code_bytes for op in set(operations))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SystemProfile({self.key}: {self.name})"
