"""The four commercial DBMSs of the study, expressed as system profiles.

The paper withholds the vendors' identities and characterises each system only
through its measured behaviour.  The profiles below are calibrated to
regenerate those qualitative observations (Section 5 of the paper; Section 5
of DESIGN.md lists them as the reproduction targets):

System A
    Retires the fewest instructions per record on the sequential selection,
    has the smallest memory-stall and branch-stall shares, but the highest
    resource-stall share (20--40%), dominated by functional-unit contention on
    the range selections.  Its optimiser does not use the non-clustered index
    for the range selection.

System B
    Exhibits "optimized data access performance at the second cache level":
    its scan touches only the fields the query references, so it incurs far
    fewer L2 data misses per record (2% L2 data miss rate on the sequential
    selection), at the price of a private working set that spills out of the
    L1 D-cache (kept in L2).  Memory stalls for B are dominated by L1
    instruction misses.

System C
    The largest instruction footprint per record: first-level instruction
    stalls and branch mispredictions dominate its stall time.

System D
    A heavyweight path for joins and a mid-size footprint elsewhere; shows
    the clearest coupling between branch-misprediction stalls and L1
    instruction stalls as selectivity grows (Figure 5.4, right).

The absolute instruction counts are order-of-magnitude estimates for late-90s
commercial engines (hundreds to a few thousand instructions per record per
operator); what the reproduction relies on is their *relative* ordering across
systems and operators, which is taken directly from the paper's figures.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .profile import (ACCESS_FIELDS_ONLY, ACCESS_FULL_RECORD, BRANCH_KIND_ALTERNATING,
                      BRANCH_KIND_COLD, BRANCH_KIND_DATA, BRANCH_KIND_LOOP,
                      BRANCH_KIND_RARE, BranchSiteSpec, OperationCost,
                      OPERATION_NAMES, SystemProfile)


def _sites(*specs: Tuple[str, str, int]) -> Tuple[BranchSiteSpec, ...]:
    return tuple(BranchSiteSpec(name=name, kind=kind, weight=weight)
                 for name, kind, weight in specs)


#: Baseline operation costs for a "generic" commercial executor.  Each system
#: is derived from this table through per-operation scale factors plus a few
#: explicit overrides, so the relative shape of the four systems stays easy to
#: audit in one place.
BASE_COSTS: Dict[str, OperationCost] = {
    "query_setup": OperationCost(
        instructions=40_000, code_bytes=6_144, cold_code_bytes=20_000, data_refs=16_000,
        workspace_touches=220, dependency_stall_cycles=3_200.0, fu_stall_cycles=1_500.0,
        branch_sites=_sites(("setup_loop", BRANCH_KIND_LOOP, 6),
                            ("setup_dispatch", BRANCH_KIND_COLD, 4))),
    "scan_next": OperationCost(
        instructions=700, code_bytes=2_048, cold_code_bytes=700, data_refs=280,
        workspace_touches=6, dependency_stall_cycles=95.0, fu_stall_cycles=42.0,
        branch_sites=_sites(("scan_loop", BRANCH_KIND_LOOP, 2),
                            ("scan_slot_check", BRANCH_KIND_RARE, 1),
                            ("scan_dispatch", BRANCH_KIND_COLD, 1))),
    "page_boundary": OperationCost(
        instructions=3_000, code_bytes=2_560, cold_code_bytes=2_200, data_refs=1_250,
        workspace_touches=32, dependency_stall_cycles=380.0, fu_stall_cycles=160.0,
        branch_sites=_sites(("page_loop", BRANCH_KIND_LOOP, 2),
                            ("page_latch", BRANCH_KIND_ALTERNATING, 1),
                            ("page_dispatch", BRANCH_KIND_COLD, 1))),
    "predicate": OperationCost(
        instructions=180, code_bytes=640, cold_code_bytes=96, data_refs=70,
        workspace_touches=2, dependency_stall_cycles=26.0, fu_stall_cycles=11.0,
        branch_sites=_sites(("qualify", BRANCH_KIND_DATA, 8),
                            ("null_check", BRANCH_KIND_RARE, 1))),
    "agg_update": OperationCost(
        instructions=260, code_bytes=960, cold_code_bytes=260, data_refs=105,
        workspace_touches=4, dependency_stall_cycles=40.0, fu_stall_cycles=18.0,
        branch_sites=_sites(("agg_loop", BRANCH_KIND_LOOP, 1),
                            ("agg_overflow", BRANCH_KIND_RARE, 1),
                            ("agg_dispatch", BRANCH_KIND_COLD, 1))),
    "index_descend_node": OperationCost(
        instructions=380, code_bytes=1_536, cold_code_bytes=320, data_refs=150,
        workspace_touches=3, dependency_stall_cycles=52.0, fu_stall_cycles=20.0,
        branch_sites=_sites(("search_loop", BRANCH_KIND_LOOP, 3),
                            ("compare", BRANCH_KIND_DATA, 2))),
    "leaf_advance": OperationCost(
        instructions=210, code_bytes=896, cold_code_bytes=190, data_refs=82,
        workspace_touches=2, dependency_stall_cycles=30.0, fu_stall_cycles=12.0,
        branch_sites=_sites(("leaf_loop", BRANCH_KIND_LOOP, 1),
                            ("bound_check", BRANCH_KIND_DATA, 1))),
    "rid_fetch": OperationCost(
        instructions=900, code_bytes=2_304, cold_code_bytes=900, data_refs=360,
        workspace_touches=9, dependency_stall_cycles=125.0, fu_stall_cycles=52.0,
        branch_sites=_sites(("fetch_loop", BRANCH_KIND_LOOP, 1),
                            ("pin_check", BRANCH_KIND_RARE, 1),
                            ("fetch_dispatch", BRANCH_KIND_COLD, 1))),
    "hash_build": OperationCost(
        instructions=520, code_bytes=1_792, cold_code_bytes=420, data_refs=210,
        workspace_touches=11, dependency_stall_cycles=72.0, fu_stall_cycles=30.0,
        branch_sites=_sites(("build_loop", BRANCH_KIND_LOOP, 1),
                            ("bucket_collision", BRANCH_KIND_ALTERNATING, 1),
                            ("build_dispatch", BRANCH_KIND_COLD, 1))),
    "hash_probe": OperationCost(
        instructions=470, code_bytes=1_664, cold_code_bytes=380, data_refs=190,
        workspace_touches=9, dependency_stall_cycles=64.0, fu_stall_cycles=27.0,
        branch_sites=_sites(("probe_loop", BRANCH_KIND_LOOP, 1),
                            ("probe_match", BRANCH_KIND_DATA, 2),
                            ("probe_dispatch", BRANCH_KIND_COLD, 1))),
    "join_output": OperationCost(
        instructions=310, code_bytes=1_152, cold_code_bytes=280, data_refs=125,
        workspace_touches=4, dependency_stall_cycles=42.0, fu_stall_cycles=20.0,
        branch_sites=_sites(("emit_check", BRANCH_KIND_RARE, 1),
                            ("emit_dispatch", BRANCH_KIND_COLD, 1))),
    "inner_scan_next": OperationCost(
        instructions=260, code_bytes=896, cold_code_bytes=130, data_refs=100,
        workspace_touches=2, dependency_stall_cycles=32.0, fu_stall_cycles=15.0,
        branch_sites=_sites(("inner_loop", BRANCH_KIND_LOOP, 1),
                            ("inner_match", BRANCH_KIND_DATA, 1))),
    "sort_merge_step": OperationCost(
        instructions=420, code_bytes=1_536, cold_code_bytes=360, data_refs=165,
        workspace_touches=7, dependency_stall_cycles=58.0, fu_stall_cycles=26.0,
        branch_sites=_sites(("merge_compare", BRANCH_KIND_DATA, 2),
                            ("merge_loop", BRANCH_KIND_LOOP, 1))),
    "update_record": OperationCost(
        instructions=1_250, code_bytes=2_816, cold_code_bytes=1_100, data_refs=520,
        workspace_touches=16, dependency_stall_cycles=170.0, fu_stall_cycles=72.0,
        branch_sites=_sites(("update_loop", BRANCH_KIND_LOOP, 1),
                            ("lock_check", BRANCH_KIND_ALTERNATING, 1),
                            ("update_dispatch", BRANCH_KIND_COLD, 1))),
    "txn_overhead": OperationCost(
        instructions=8_200, code_bytes=5_120, cold_code_bytes=6_200, data_refs=3_300,
        workspace_touches=85, dependency_stall_cycles=1_050.0, fu_stall_cycles=470.0,
        branch_sites=_sites(("txn_loop", BRANCH_KIND_LOOP, 3),
                            ("txn_latch", BRANCH_KIND_ALTERNATING, 2),
                            ("txn_dispatch", BRANCH_KIND_COLD, 3))),
}


def _derive_costs(path_factor: float, footprint_factor: float, stall_factor: float,
                  cold_factor: float,
                  overrides: Dict[str, OperationCost] | None = None) -> Dict[str, OperationCost]:
    costs = {name: cost.scaled(path_factor=path_factor, footprint_factor=footprint_factor,
                               stall_factor=stall_factor, cold_factor=cold_factor)
             for name, cost in BASE_COSTS.items()}
    if overrides:
        costs.update(overrides)
    return costs


def system_a() -> SystemProfile:
    """System A: lean instruction paths, index-averse optimiser, resource-bound."""
    costs = _derive_costs(path_factor=0.80, footprint_factor=0.75, stall_factor=1.35,
                          cold_factor=0.18)
    # A's range-selection path is dominated by functional-unit contention
    # rather than dependency stalls (the Figure 5.5 exception).
    for op in ("scan_next", "predicate", "agg_update", "page_boundary"):
        base = costs[op]
        costs[op] = OperationCost(
            instructions=base.instructions, code_bytes=base.code_bytes,
            cold_code_bytes=base.cold_code_bytes, data_refs=base.data_refs,
            workspace_touches=base.workspace_touches,
            dependency_stall_cycles=base.dependency_stall_cycles * 0.55,
            fu_stall_cycles=base.fu_stall_cycles * 2.8,
            branch_sites=base.branch_sites)
    return SystemProfile(
        key="A", name="System A",
        description=("Lean per-record paths and small instruction footprint; does not "
                     "use the non-clustered index for range selections; highest "
                     "resource-stall share, dominated by functional-unit contention."),
        uses_index_for_range_selection=False,
        index_selectivity_threshold=0.0,
        join_algorithm="hash",
        record_access_style=ACCESS_FULL_RECORD,
        workspace_bytes=10 * 1024,
        uops_per_instruction=1.45,
        branch_fraction=0.20,
        bulk_branch_misprediction_rate=0.012,
        ild_stall_per_instruction=0.055,
        cold_code_pool_bytes=48 * 1024,
        costs=costs,
    )


def system_b() -> SystemProfile:
    """System B: field-at-a-time data access optimised for the L2 cache."""
    costs = _derive_costs(path_factor=1.25, footprint_factor=1.00, stall_factor=1.0,
                          cold_factor=0.95)
    return SystemProfile(
        key="B", name="System B",
        description=("Touches only the referenced fields of each record, so L2 data "
                     "misses per record are far lower than the other systems (2% L2 "
                     "data miss rate on the sequential selection); pays for it with a "
                     "private working set that spills out of the L1 D-cache."),
        uses_index_for_range_selection=True,
        index_selectivity_threshold=0.25,
        join_algorithm="hash",
        record_access_style=ACCESS_FIELDS_ONLY,
        workspace_bytes=56 * 1024,
        uops_per_instruction=1.30,
        branch_fraction=0.20,
        bulk_branch_misprediction_rate=0.036,
        ild_stall_per_instruction=0.030,
        cold_code_pool_bytes=96 * 1024,
        costs=costs,
    )


def system_c() -> SystemProfile:
    """System C: largest instruction footprint; instruction stalls dominate."""
    costs = _derive_costs(path_factor=1.55, footprint_factor=1.25, stall_factor=1.15,
                          cold_factor=1.70)
    return SystemProfile(
        key="C", name="System C",
        description=("The heaviest per-record code paths of the four systems: first "
                     "level instruction cache misses and branch mispredictions are "
                     "the dominant stall sources."),
        uses_index_for_range_selection=True,
        index_selectivity_threshold=0.25,
        join_algorithm="hash",
        record_access_style=ACCESS_FULL_RECORD,
        workspace_bytes=14 * 1024,
        uops_per_instruction=1.40,
        branch_fraction=0.21,
        bulk_branch_misprediction_rate=0.046,
        ild_stall_per_instruction=0.040,
        cold_code_pool_bytes=128 * 1024,
        costs=costs,
    )


def system_d() -> SystemProfile:
    """System D: mid-size selection paths, heavyweight join machinery."""
    join_heavy = {
        "hash_build": BASE_COSTS["hash_build"].scaled(path_factor=2.6, footprint_factor=1.4,
                                                      stall_factor=1.3, cold_factor=2.3),
        "hash_probe": BASE_COSTS["hash_probe"].scaled(path_factor=2.6, footprint_factor=1.4,
                                                      stall_factor=1.3, cold_factor=2.3),
        "join_output": BASE_COSTS["join_output"].scaled(path_factor=2.2, footprint_factor=1.3,
                                                        stall_factor=1.2, cold_factor=2.0),
    }
    costs = _derive_costs(path_factor=1.35, footprint_factor=1.10, stall_factor=1.05,
                          cold_factor=1.25, overrides=join_heavy)
    return SystemProfile(
        key="D", name="System D",
        description=("Mid-size selection paths with a heavyweight join pipeline; shows "
                     "the tight coupling between branch-misprediction stalls and L1 "
                     "instruction stalls as selectivity increases."),
        uses_index_for_range_selection=True,
        index_selectivity_threshold=0.25,
        join_algorithm="hash",
        record_access_style=ACCESS_FULL_RECORD,
        workspace_bytes=18 * 1024,
        uops_per_instruction=1.38,
        branch_fraction=0.20,
        bulk_branch_misprediction_rate=0.040,
        ild_stall_per_instruction=0.035,
        cold_code_pool_bytes=112 * 1024,
        costs=costs,
    )


def all_systems() -> Tuple[SystemProfile, ...]:
    """The four systems in the paper's A--D order."""
    return (system_a(), system_b(), system_c(), system_d())


def system_by_key(key: str) -> SystemProfile:
    """Look up a profile by its single-letter key (case-insensitive)."""
    for profile in all_systems():
        if profile.key == key.upper():
            return profile
    raise KeyError(f"unknown system key {key!r}; expected one of A, B, C, D")


#: Convenience constants.
SYSTEM_A = system_a()
SYSTEM_B = system_b()
SYSTEM_C = system_c()
SYSTEM_D = system_d()
ALL_SYSTEMS = (SYSTEM_A, SYSTEM_B, SYSTEM_C, SYSTEM_D)


def oltp_variant(profile: SystemProfile) -> SystemProfile:
    """Derive the OLTP-mode behaviour of a system from its DSS profile.

    Section 5.5 observes that TPC-C behaves very differently from the
    microbenchmark and TPC-D: CPI between 2.5 and 4.5, 60--80% of execution
    time in memory stalls, and second-level cache (data *and* instruction)
    misses dominating.  The cause is well understood -- transaction
    processing exercises a much larger code base (transaction management,
    locking, logging, constraint maintenance) and a much larger, randomly
    accessed data working set (lock tables, log buffers, many relations) than
    a single-query DSS executor -- and is expressed here the same way:

    * the low-locality code pool grows well past the 512 KB L2 so a good part
      of the instruction stream misses both cache levels, and
    * the private working set grows to several megabytes so the per-statement
      scratch accesses routinely miss the L2 as well.

    Everything else (path lengths, planner policy, branch behaviour) is
    inherited from the base profile, so the four systems remain
    distinguishable under OLTP exactly as they are under DSS.
    """
    oltp_costs = {name: cost.scaled(path_factor=1.0, footprint_factor=1.0,
                                    stall_factor=2.5, cold_factor=1.0)
                  for name, cost in profile.costs.items()}
    return profile.with_overrides(
        name=f"{profile.name} (OLTP)",
        cold_code_pool_bytes=1_536 * 1024,
        workspace_bytes=4 * 1024 * 1024,
        workspace_touch_stride=192,
        costs=oltp_costs,
    )
