"""Main-memory latency and bandwidth accounting.

Section 5.2.1 of the paper argues that the workload is *latency bound*: the
measured memory latency is 60--70 cycles, and "most of the time the overall
execution uses less than one third of the available memory bandwidth".  The
paper therefore estimates ``TL2D`` as the number of L2 data misses multiplied
by the memory latency, and argues the estimate cannot be far off because
there is little queuing.

This module keeps the book-keeping needed to make (and verify) that argument
in the simulation: every L2 miss and every write-back is an occupancy event on
the memory bus, and :meth:`MainMemory.bandwidth_utilisation` reports the
fraction of peak bandwidth consumed over the measured execution window.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import MemorySpec


@dataclass
class MemoryStats:
    """Raw main-memory traffic counters."""

    reads: int = 0
    writebacks: int = 0
    bytes_transferred: int = 0
    latency_cycles_accumulated: int = 0

    def as_dict(self) -> dict:
        return {
            "reads": self.reads,
            "writebacks": self.writebacks,
            "bytes_transferred": self.bytes_transferred,
            "latency_cycles_accumulated": self.latency_cycles_accumulated,
        }


class MainMemory:
    """Latency/bandwidth model for the DRAM behind the L2 cache."""

    __slots__ = ("spec", "line_bytes", "stats")

    def __init__(self, spec: MemorySpec, line_bytes: int = 32) -> None:
        self.spec = spec
        self.line_bytes = line_bytes
        self.stats = MemoryStats()

    # ------------------------------------------------------------------ API
    def fill(self, count: int = 1) -> int:
        """Record ``count`` cache-line fills from memory; returns latency cycles."""
        latency = count * self.spec.latency_cycles
        stats = self.stats
        stats.reads += count
        stats.bytes_transferred += count * self.line_bytes
        stats.latency_cycles_accumulated += latency
        return latency

    def writeback(self, count: int = 1) -> None:
        """Record ``count`` dirty-line write-backs (bandwidth only, no stall)."""
        stats = self.stats
        stats.writebacks += count
        stats.bytes_transferred += count * self.line_bytes

    # ------------------------------------------------------------- analysis
    def bandwidth_utilisation(self, elapsed_cycles: float) -> float:
        """Fraction of peak bus bandwidth used over ``elapsed_cycles``.

        The paper's latency-bound claim corresponds to this value staying
        below roughly one third for the micro-benchmark queries.
        """
        if elapsed_cycles <= 0:
            return 0.0
        peak_bytes = self.spec.peak_bandwidth_bytes_per_cycle * elapsed_cycles
        if peak_bytes <= 0:
            return 0.0
        return min(self.stats.bytes_transferred / peak_bytes, 1.0)

    def is_latency_bound(self, elapsed_cycles: float, threshold: float = 1.0 / 3.0) -> bool:
        """True when bandwidth utilisation is below ``threshold`` (default 1/3)."""
        return self.bandwidth_utilisation(elapsed_cycles) < threshold

    def reset_stats(self) -> None:
        self.stats = MemoryStats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"MainMemory(latency={self.spec.latency_cycles} cycles, "
                f"peak={self.spec.peak_bandwidth_bytes_per_cycle:.2f} B/cycle)")
