"""Set-associative cache model.

The caches are *trace driven*: the execution engine presents the addresses it
touches (relation data, index nodes, private working structures, instruction
cache lines) and the cache records hits and misses.  Timing is not simulated
cycle-by-cycle; instead the breakdown layer multiplies miss counts by the
penalty constants of the paper's Table 4.2, exactly as the paper does for the
components it could not measure directly.

The model implements:

* configurable size / line size / associativity (Table 4.1 geometries),
* true LRU replacement within a set,
* split statistics per *port* (data read, data write, instruction fetch) so
  that the unified L2 can report data misses and instruction misses
  separately (``TL2D`` vs ``TL2I``),
* write-back dirty-line accounting (write-backs contribute to bandwidth, not
  latency, matching the latency-bound observation of Section 5.2.1),
* selective invalidation, used by the OS-interference model to evict
  instruction lines on simulated context switches,
* a *span-charging fast path* for the vectorized engine's columnar
  dataflow: :meth:`Cache.access_strided` / :meth:`Cache.access_lines` charge
  a whole column-vector (or code-path) touch as one bulk operation -- the
  per-set LRU updates still happen line by line, in ascending address
  order, but the hit bookkeeping and the :class:`CacheStats` counters are
  applied once per call (:meth:`CacheStats.add_bulk`) instead of once per
  address.  The bulk paths are *count-identical* to issuing the element
  accesses one at a time (the differential harness in
  ``tests/test_vectorized_equivalence.py`` asserts this on every plan
  shape); they only remove simulator overhead, never modelled events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .native import load_native
from .specs import CacheSpec

#: Compiled cache-automaton fast path (``_cachesim.c``) or ``None``.  The
#: native module manipulates the same per-set lists and dirty sets as the
#: pure-Python loops below -- state transitions are identical by
#: construction and asserted by ``tests/test_native_cache.py`` -- so with
#: or without it every hit/miss count, LRU ordering and write-back is the
#: same; only the simulator's wall-clock changes.  Set ``REPRO_NATIVE=0``
#: to force the pure-Python oracle.
_NATIVE = load_native()

#: Access port identifiers.  They index the statistics arrays.
PORT_DATA_READ = 0
PORT_DATA_WRITE = 1
PORT_INSTRUCTION = 2

PORT_NAMES = ("data_read", "data_write", "instruction")


@dataclass
class CacheStats:
    """Aggregate statistics for one cache instance."""

    accesses: List[int] = field(default_factory=lambda: [0, 0, 0])
    misses: List[int] = field(default_factory=lambda: [0, 0, 0])
    writebacks: int = 0
    invalidations: int = 0

    # -- convenience views -------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)

    @property
    def total_misses(self) -> int:
        return sum(self.misses)

    @property
    def data_accesses(self) -> int:
        return self.accesses[PORT_DATA_READ] + self.accesses[PORT_DATA_WRITE]

    @property
    def data_misses(self) -> int:
        return self.misses[PORT_DATA_READ] + self.misses[PORT_DATA_WRITE]

    @property
    def instruction_accesses(self) -> int:
        return self.accesses[PORT_INSTRUCTION]

    @property
    def instruction_misses(self) -> int:
        return self.misses[PORT_INSTRUCTION]

    def add_bulk(self, port: int, accesses: int, misses: int = 0) -> None:
        """Fold a batch of accesses/misses into one counter update.

        The span-charging fast path accumulates its per-line outcomes in
        local variables and applies them here once per bulk call, which is
        where most of the simulator-side win over per-address probing comes
        from.
        """
        self.accesses[port] += accesses
        if misses:
            self.misses[port] += misses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Commutatively fold ``other``'s counts into this instance.

        Every field is a sum, so merging worker-local statistics in any
        order yields the same totals -- the property the morsel-parallel
        subsystem relies on when it combines per-worker hardware state
        (``tests/test_parallel_execution.py`` asserts it under random
        permutations).  Returns ``self`` for chaining.
        """
        for port in range(len(self.accesses)):
            self.accesses[port] += other.accesses[port]
            self.misses[port] += other.misses[port]
        self.writebacks += other.writebacks
        self.invalidations += other.invalidations
        return self

    def miss_rate(self, port: Optional[int] = None) -> float:
        """Miss ratio overall or for a specific port (0.0 when unused)."""
        if port is None:
            acc, mis = self.total_accesses, self.total_misses
        else:
            acc, mis = self.accesses[port], self.misses[port]
        return mis / acc if acc else 0.0

    def data_miss_rate(self) -> float:
        return self.data_misses / self.data_accesses if self.data_accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "accesses": self.total_accesses,
            "misses": self.total_misses,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "miss_rate": self.miss_rate(),
        }
        for port, name in enumerate(PORT_NAMES):
            out[f"{name}_accesses"] = self.accesses[port]
            out[f"{name}_misses"] = self.misses[port]
        return out


class Cache:
    """A single level of set-associative, LRU, optionally write-back cache.

    The implementation favours simulation throughput: each set is a small
    Python list of tags ordered from most- to least-recently used, and dirty
    bits live in a parallel per-set dictionary.  For the geometries in this
    study (4-way) the per-access work is a handful of list operations.
    """

    __slots__ = ("spec", "name", "_sets", "_dirty", "_line_shift", "_set_mask", "stats",
                 "next_level", "_assoc", "_write_back", "_nargs")

    def __init__(self, spec: CacheSpec, next_level: Optional["Cache"] = None) -> None:
        self.spec = spec
        self.name = spec.name
        self.next_level = next_level
        self._line_shift = spec.line_bytes.bit_length() - 1
        self._set_mask = spec.num_sets - 1
        self._assoc = spec.associativity
        self._write_back = spec.write_back
        # Each set: list of tags, index 0 == MRU.
        self._sets: List[List[int]] = [[] for _ in range(spec.num_sets)]
        # Dirty tags per set (write-back bookkeeping).
        self._dirty: List[set] = [set() for _ in range(spec.num_sets)]
        self.stats = CacheStats()
        # Prebuilt argument block for the native automaton: the lists are
        # mutated in place everywhere (never rebound), so this stays valid
        # for the cache's lifetime.
        self._nargs = (self._sets, self._dirty, self._set_mask, self._assoc,
                       1 if self._write_back else 0)

    # ------------------------------------------------------------------ API
    def line_address(self, addr: int) -> int:
        """Return the line-aligned address containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def lines_spanned(self, addr: int, size: int) -> range:
        """Return the line numbers touched by an access of ``size`` bytes."""
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        return range(first, last + 1)

    def access(self, addr: int, port: int, size: int = 1, write: bool = False) -> int:
        """Access ``size`` bytes at ``addr`` through ``port``.

        Returns the number of misses incurred *at this level* (an access can
        straddle a line boundary and therefore miss more than once).  Misses
        are automatically forwarded to :attr:`next_level` when one is
        attached, so a single call on the L1 drives the whole hierarchy.
        """
        if _NATIVE is not None:
            next_level = self.next_level
            deltas = _NATIVE.strided(
                self._nargs, next_level._nargs if next_level is not None else None,
                self._line_shift, addr, 0, 1, size, port, 1 if write else 0)
            return self._apply_native(deltas, port, next_level)
        misses = 0
        for line in self.lines_spanned(addr, size):
            misses += self._access_line(line, port, write)
        return misses

    def access_line(self, line_addr: int, port: int, write: bool = False) -> int:
        """Access a single, already line-aligned address (fast path)."""
        return self._access_line(line_addr >> self._line_shift, port, write)

    def access_span(self, addr: int, size: int, port: int,
                    refs: Optional[int] = None, write: bool = False) -> int:
        """Streaming access to a contiguous ``size``-byte span (batch path).

        A vectorized executor reads a column batch as one tight loop of
        element loads over a contiguous buffer.  ``refs`` is the number of
        element accesses the loop issues (defaults to one per cache line);
        the accesses land sequentially, so each line is looked up once and
        the remaining ``refs - lines`` accesses are line hits by
        construction.  When the element geometry is known, prefer
        :meth:`access_strided` (with ``stride == size_per_element``), which
        is additionally *count-identical* to the per-address loop even for
        elements that straddle line boundaries.
        """
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        n_lines = last - first + 1
        misses = self._walk_lines(first, last, port, write)
        self.stats.add_bulk(port, max(refs or 0, n_lines), misses)
        return misses

    def access_strided(self, addr: int, stride: int, count: int, size: int,
                       port: int, write: bool = False) -> int:
        """Bulk access to ``count`` elements of ``size`` bytes, ``stride``
        bytes apart, starting at ``addr`` (the span-charging fast path).

        Produces exactly the hit/miss counts, LRU evolution, write-back and
        next-level traffic of calling :meth:`access` once per element in
        ascending order -- contiguous column vectors are the ``stride ==
        size`` special case, NSM field strides and workspace churn use wider
        strides -- while updating the statistics once per call.
        """
        if count <= 0:
            return 0
        if _NATIVE is not None:
            next_level = self.next_level
            deltas = _NATIVE.strided(
                self._nargs, next_level._nargs if next_level is not None else None,
                self._line_shift, addr, stride, count, size, port,
                1 if write else 0)
            return self._apply_native(deltas, port, next_level)
        shift = self._line_shift
        set_mask = self._set_mask
        sets = self._sets
        dirty = self._dirty
        assoc = self._assoc
        next_level = self.next_level
        next_port = PORT_INSTRUCTION if port == PORT_INSTRUCTION else PORT_DATA_READ
        next_sets = next_level._sets if next_level is not None else None
        next_mask = next_level._set_mask if next_level is not None else 0
        next_forwarded = 0
        span = max(size, 1) - 1
        accesses = 0
        misses = 0
        element = addr
        for _ in range(count):
            first = element >> shift
            last = (element + span) >> shift
            element += stride
            if first == last:
                # Common case: the element lives in one line.
                accesses += 1
                set_index = first & set_mask
                ways = sets[set_index]
                if first in ways:
                    if ways[0] != first:
                        ways.remove(first)
                        ways.insert(0, first)
                    if write:
                        dirty[set_index].add(first)
                    continue
                misses += 1
                # Dominant miss outcome inlined: clean read miss that hits
                # the next level; everything else (writes, next-level
                # misses, dirty victims' write-backs) falls back to the
                # shared state machine.  This body is deliberately
                # duplicated in :meth:`access_lines` (a shared helper would
                # reintroduce the per-line call the fast path removes) --
                # any change here must be mirrored there and in
                # :meth:`_miss_line`, and is guarded by the charge-mode
                # differential tests.
                if next_level is not None and not write:
                    next_ways = next_sets[first & next_mask]
                    if first in next_ways:
                        if next_ways[0] != first:
                            next_ways.remove(first)
                            next_ways.insert(0, first)
                        next_forwarded += 1
                        if len(ways) >= assoc:
                            victim = ways.pop()
                            dirty_set = dirty[set_index]
                            if victim in dirty_set:
                                dirty_set.discard(victim)
                                self.stats.writebacks += 1
                                next_level._access_line(victim, PORT_DATA_WRITE, True)
                        ways.insert(0, first)
                        continue
                self._miss_line(first, port, write)
            else:
                accesses += last - first + 1
                misses += self._walk_lines(first, last, port, write)
        if next_forwarded and next_level is not None:
            next_level.stats.add_bulk(next_port, next_forwarded)
        self.stats.add_bulk(port, accesses, misses)
        return misses

    def access_lines(self, line_addresses: Iterable[int], port: int,
                     write: bool = False) -> int:
        """Bulk access to already line-aligned addresses (code-path fetches).

        Equivalent to calling :meth:`access_line` per address in order, with
        the statistics applied once -- the instruction side of the fast
        path.
        """
        if _NATIVE is not None and type(line_addresses) is range:
            count = len(line_addresses)
            if count == 0:
                return 0
            next_level = self.next_level
            deltas = _NATIVE.lines(
                self._nargs, next_level._nargs if next_level is not None else None,
                self._line_shift, line_addresses.start, line_addresses.step,
                count, port, 1 if write else 0)
            return self._apply_native(deltas, port, next_level)
        shift = self._line_shift
        set_mask = self._set_mask
        sets = self._sets
        dirty = self._dirty
        assoc = self._assoc
        next_level = self.next_level
        next_port = PORT_INSTRUCTION if port == PORT_INSTRUCTION else PORT_DATA_READ
        next_sets = next_level._sets if next_level is not None else None
        next_mask = next_level._set_mask if next_level is not None else 0
        next_forwarded = 0
        accesses = 0
        misses = 0
        for line_addr in line_addresses:
            line = line_addr >> shift
            accesses += 1
            set_index = line & set_mask
            ways = sets[set_index]
            if line in ways:
                if ways[0] != line:
                    ways.remove(line)
                    ways.insert(0, line)
                if write:
                    dirty[set_index].add(line)
                continue
            misses += 1
            # Same inlined clean-miss/next-level-hit fast path as
            # :meth:`access_strided` (cold-code fetches miss the L1I and hit
            # the L2 on nearly every visit).
            if next_level is not None and not write:
                next_ways = next_sets[line & next_mask]
                if line in next_ways:
                    if next_ways[0] != line:
                        next_ways.remove(line)
                        next_ways.insert(0, line)
                    next_forwarded += 1
                    if len(ways) >= assoc:
                        victim = ways.pop()
                        dirty_set = dirty[set_index]
                        if victim in dirty_set:
                            dirty_set.discard(victim)
                            self.stats.writebacks += 1
                            next_level._access_line(victim, PORT_DATA_WRITE, True)
                    ways.insert(0, line)
                    continue
            self._miss_line(line, port, write)
        if next_forwarded and next_level is not None:
            next_level.stats.add_bulk(next_port, next_forwarded)
        self.stats.add_bulk(port, accesses, misses)
        return misses

    def _walk_lines(self, first: int, last: int, port: int, write: bool) -> int:
        """Touch lines ``first..last`` in order without counting statistics."""
        set_mask = self._set_mask
        sets = self._sets
        misses = 0
        for line in range(first, last + 1):
            ways = sets[line & set_mask]
            if line in ways:
                if ways[0] != line:
                    ways.remove(line)
                    ways.insert(0, line)
                if write:
                    self._dirty[line & set_mask].add(line)
            else:
                misses += 1
                self._miss_line(line, port, write)
        return misses

    def _miss_line(self, line_number: int, port: int, write: bool) -> None:
        """Statistics-free miss handling shared by every access path.

        This is the per-miss state machine (next-level fill request, victim
        selection, write-back bookkeeping) with the next level's *hit* case
        inlined -- an L1 miss that hits the L2 is by far the most common
        miss outcome, and this is the simulator's hottest path.
        """
        next_level = self.next_level
        if next_level is not None:
            # Fill request: a read regardless of the original direction
            # (write-allocate); instruction fills keep the instruction port
            # so the unified L2 separates TL2D from TL2I.
            next_port = PORT_INSTRUCTION if port == PORT_INSTRUCTION else PORT_DATA_READ
            next_stats = next_level.stats
            next_stats.accesses[next_port] += 1
            next_ways = next_level._sets[line_number & next_level._set_mask]
            if line_number in next_ways:
                if next_ways[0] != line_number:
                    next_ways.remove(line_number)
                    next_ways.insert(0, line_number)
            else:
                next_stats.misses[next_port] += 1
                next_level._miss_line(line_number, next_port, False)
        # Victim selection and fill (the former ``_fill``).
        set_index = line_number & self._set_mask
        ways = self._sets[set_index]
        if len(ways) >= self._assoc:
            victim = ways.pop()
            dirty_set = self._dirty[set_index]
            if victim in dirty_set:
                dirty_set.discard(victim)
                self.stats.writebacks += 1
                if next_level is not None:
                    # The write-back installs the line in the next level.
                    next_level._access_line(victim, PORT_DATA_WRITE, True)
        ways.insert(0, line_number)
        if write:
            if self._write_back:
                self._dirty[set_index].add(line_number)
            elif next_level is not None:
                # Write-through: the write is also forwarded (counted as
                # traffic only; latency is hidden by the write buffer).
                next_level._access_line(line_number, PORT_DATA_WRITE, True)

    def _apply_native(self, deltas: Tuple[int, ...], port: int,
                      next_level: Optional["Cache"]) -> int:
        """Fold a native call's counter deltas into the statistics.

        The native automaton performed every state transition in place; the
        counter adds it reports all commute, so applying them here once per
        call yields the same totals as the per-event updates of the
        pure-Python loops.
        """
        (accesses, misses, self_wb, fill_acc, fill_miss,
         write_acc, write_miss, next_wb) = deltas
        stats = self.stats
        stats.accesses[port] += accesses
        if misses:
            stats.misses[port] += misses
        if self_wb:
            stats.writebacks += self_wb
        if next_level is not None:
            next_stats = next_level.stats
            fill_port = PORT_INSTRUCTION if port == PORT_INSTRUCTION else PORT_DATA_READ
            if fill_acc:
                next_stats.accesses[fill_port] += fill_acc
            if fill_miss:
                next_stats.misses[fill_port] += fill_miss
            if write_acc:
                next_stats.accesses[PORT_DATA_WRITE] += write_acc
            if write_miss:
                next_stats.misses[PORT_DATA_WRITE] += write_miss
            if next_wb:
                next_stats.writebacks += next_wb
        return misses

    # ----------------------------------------------------------- internals
    def _access_line(self, line_number: int, port: int, write: bool) -> int:
        stats = self.stats
        stats.accesses[port] += 1
        set_index = line_number & self._set_mask
        tag = line_number >> 0  # keep full line number as tag; set bits are redundant but harmless
        ways = self._sets[set_index]
        if tag in ways:
            # Hit: move to MRU position.
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            if write:
                self._dirty[set_index].add(tag)
            return 0

        # Miss.  The fill request to the next level is a read regardless of
        # the original port's direction (write-allocate), but instruction
        # fills keep the instruction port so the unified L2 can separate
        # TL2D from TL2I; write-through caches additionally forward the
        # write itself (counted as traffic only; latency is hidden by the
        # write buffer).
        stats.misses[port] += 1
        self._miss_line(line_number, port, write)
        return 1

    # ------------------------------------------------------------ contents
    def contains(self, addr: int) -> bool:
        """True when the line containing ``addr`` is resident."""
        line_number = addr >> self._line_shift
        return line_number in self._sets[line_number & self._set_mask]

    def resident_lines(self) -> int:
        """Number of lines currently resident (useful in tests)."""
        return sum(len(ways) for ways in self._sets)

    def invalidate_all(self) -> int:
        """Invalidate every line; returns the number of lines dropped."""
        dropped = self.resident_lines()
        for ways in self._sets:
            ways.clear()
        for dirty in self._dirty:
            dirty.clear()
        self.stats.invalidations += dropped
        return dropped

    def invalidate_fraction(self, fraction: float, stride: int = 1) -> int:
        """Invalidate roughly ``fraction`` of resident lines.

        Used by the OS-interference model to approximate the instruction
        cache pollution caused by a context switch: the interrupt handler and
        the scheduler evict a portion of the DBMS's instruction lines, which
        must then be re-fetched (Section 5.2.2).
        """
        if fraction <= 0.0:
            return 0
        if fraction >= 1.0:
            return self.invalidate_all()
        dropped = 0
        for set_index, ways in enumerate(self._sets):
            if not ways:
                continue
            if (set_index // max(stride, 1)) % 1 == 0:
                keep = int(round(len(ways) * (1.0 - fraction)))
                victims = ways[keep:]
                del ways[keep:]
                dirty = self._dirty[set_index]
                for victim in victims:
                    dirty.discard(victim)
                dropped += len(victims)
        self.stats.invalidations += dropped
        return dropped

    def warm(self, addresses: Iterable[int], port: int = PORT_DATA_READ) -> None:
        """Pre-load lines without counting statistics (cache warm-up).

        The paper warms the caches with multiple runs of each query before
        measuring; warm-up through this method (or by discarding the counters
        of a priming run) reproduces that methodology.
        """
        saved_acc = list(self.stats.accesses)
        saved_miss = list(self.stats.misses)
        saved_wb = self.stats.writebacks
        next_saved = None
        if self.next_level is not None:
            next_saved = (list(self.next_level.stats.accesses),
                          list(self.next_level.stats.misses),
                          self.next_level.stats.writebacks)
        for addr in addresses:
            self.access(addr, port)
        self.stats.accesses = saved_acc
        self.stats.misses = saved_miss
        self.stats.writebacks = saved_wb
        if self.next_level is not None and next_saved is not None:
            self.next_level.stats.accesses, self.next_level.stats.misses, \
                self.next_level.stats.writebacks = next_saved

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Cache({self.name}, {self.spec.size_bytes // 1024}KB, "
                f"{self.spec.associativity}-way, {self.spec.line_bytes}B lines)")


@dataclass
class HierarchyStats:
    """Snapshot of the statistics of every level plus derived quantities."""

    l1d: Dict[str, float]
    l1i: Dict[str, float]
    l2: Dict[str, float]

    @property
    def l1d_misses(self) -> int:
        return int(self.l1d["misses"])

    @property
    def l1i_misses(self) -> int:
        return int(self.l1i["misses"])

    @property
    def l2_data_misses(self) -> int:
        return int(self.l2["data_read_misses"] + self.l2["data_write_misses"])

    @property
    def l2_instruction_misses(self) -> int:
        return int(self.l2["instruction_misses"])


class CacheHierarchy:
    """The split-L1 / unified-L2 hierarchy of Table 4.1.

    Data accesses go through the L1 D-cache, instruction fetches through the
    L1 I-cache, and misses from either are forwarded to the shared L2 which
    keeps per-port statistics so that data and instruction misses can be
    reported separately (they carry different stall components in the
    paper's framework).
    """

    def __init__(self, l1d_spec: CacheSpec, l1i_spec: CacheSpec, l2_spec: CacheSpec) -> None:
        self.l2 = Cache(l2_spec)
        self.l1d = Cache(l1d_spec, next_level=self.l2)
        self.l1i = Cache(l1i_spec, next_level=self.l2)

    # Data side -----------------------------------------------------------
    def read(self, addr: int, size: int = 4) -> int:
        """Data read; returns number of L1D misses incurred."""
        return self.l1d.access(addr, PORT_DATA_READ, size=size, write=False)

    def write(self, addr: int, size: int = 4) -> int:
        """Data write; returns number of L1D misses incurred."""
        return self.l1d.access(addr, PORT_DATA_WRITE, size=size, write=True)

    def read_span(self, addr: int, size: int, refs: Optional[int] = None) -> int:
        """Streaming data read of a contiguous span (vectorized column batch)."""
        return self.l1d.access_span(addr, size, PORT_DATA_READ, refs=refs)

    def read_strided(self, addr: int, stride: int, count: int, size: int) -> int:
        """Bulk data read of ``count`` ``size``-byte elements ``stride`` apart.

        Count-identical to ``count`` individual :meth:`read` calls in
        ascending order; this is the data side of the span-charging fast
        path (contiguous column vectors use ``stride == size``).
        """
        return self.l1d.access_strided(addr, stride, count, size, PORT_DATA_READ)

    def write_strided(self, addr: int, stride: int, count: int, size: int) -> int:
        """Bulk data write of ``count`` ``size``-byte elements ``stride`` apart.

        Count-identical to ``count`` individual :meth:`write` calls in
        ascending order; the store-side twin of :meth:`read_strided` (page
        flushes write whole line runs through this).
        """
        return self.l1d.access_strided(addr, stride, count, size, PORT_DATA_WRITE,
                                       write=True)

    # Instruction side ------------------------------------------------------
    def fetch(self, line_addr: int) -> int:
        """Instruction fetch of one line; returns 1 on an L1I miss else 0."""
        return self.l1i.access_line(line_addr, PORT_INSTRUCTION)

    def fetch_lines(self, line_addresses: Iterable[int]) -> int:
        """Bulk instruction fetch; count-identical to per-line :meth:`fetch`."""
        return self.l1i.access_lines(line_addresses, PORT_INSTRUCTION)

    # Statistics ------------------------------------------------------------
    def snapshot(self) -> HierarchyStats:
        return HierarchyStats(
            l1d=self.l1d.stats.as_dict(),
            l1i=self.l1i.stats.as_dict(),
            l2=self.l2.stats.as_dict(),
        )

    def reset_stats(self) -> None:
        self.l1d.reset_stats()
        self.l1i.reset_stats()
        self.l2.reset_stats()
