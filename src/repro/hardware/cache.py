"""Set-associative cache model.

The caches are *trace driven*: the execution engine presents the addresses it
touches (relation data, index nodes, private working structures, instruction
cache lines) and the cache records hits and misses.  Timing is not simulated
cycle-by-cycle; instead the breakdown layer multiplies miss counts by the
penalty constants of the paper's Table 4.2, exactly as the paper does for the
components it could not measure directly.

The model implements:

* configurable size / line size / associativity (Table 4.1 geometries),
* true LRU replacement within a set,
* split statistics per *port* (data read, data write, instruction fetch) so
  that the unified L2 can report data misses and instruction misses
  separately (``TL2D`` vs ``TL2I``),
* write-back dirty-line accounting (write-backs contribute to bandwidth, not
  latency, matching the latency-bound observation of Section 5.2.1),
* selective invalidation, used by the OS-interference model to evict
  instruction lines on simulated context switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .specs import CacheSpec

#: Access port identifiers.  They index the statistics arrays.
PORT_DATA_READ = 0
PORT_DATA_WRITE = 1
PORT_INSTRUCTION = 2

PORT_NAMES = ("data_read", "data_write", "instruction")


@dataclass
class CacheStats:
    """Aggregate statistics for one cache instance."""

    accesses: List[int] = field(default_factory=lambda: [0, 0, 0])
    misses: List[int] = field(default_factory=lambda: [0, 0, 0])
    writebacks: int = 0
    invalidations: int = 0

    # -- convenience views -------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)

    @property
    def total_misses(self) -> int:
        return sum(self.misses)

    @property
    def data_accesses(self) -> int:
        return self.accesses[PORT_DATA_READ] + self.accesses[PORT_DATA_WRITE]

    @property
    def data_misses(self) -> int:
        return self.misses[PORT_DATA_READ] + self.misses[PORT_DATA_WRITE]

    @property
    def instruction_accesses(self) -> int:
        return self.accesses[PORT_INSTRUCTION]

    @property
    def instruction_misses(self) -> int:
        return self.misses[PORT_INSTRUCTION]

    def miss_rate(self, port: Optional[int] = None) -> float:
        """Miss ratio overall or for a specific port (0.0 when unused)."""
        if port is None:
            acc, mis = self.total_accesses, self.total_misses
        else:
            acc, mis = self.accesses[port], self.misses[port]
        return mis / acc if acc else 0.0

    def data_miss_rate(self) -> float:
        return self.data_misses / self.data_accesses if self.data_accesses else 0.0

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "accesses": self.total_accesses,
            "misses": self.total_misses,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "miss_rate": self.miss_rate(),
        }
        for port, name in enumerate(PORT_NAMES):
            out[f"{name}_accesses"] = self.accesses[port]
            out[f"{name}_misses"] = self.misses[port]
        return out


class Cache:
    """A single level of set-associative, LRU, optionally write-back cache.

    The implementation favours simulation throughput: each set is a small
    Python list of tags ordered from most- to least-recently used, and dirty
    bits live in a parallel per-set dictionary.  For the geometries in this
    study (4-way) the per-access work is a handful of list operations.
    """

    __slots__ = ("spec", "name", "_sets", "_dirty", "_line_shift", "_set_mask", "stats",
                 "next_level")

    def __init__(self, spec: CacheSpec, next_level: Optional["Cache"] = None) -> None:
        self.spec = spec
        self.name = spec.name
        self.next_level = next_level
        self._line_shift = spec.line_bytes.bit_length() - 1
        self._set_mask = spec.num_sets - 1
        # Each set: list of tags, index 0 == MRU.
        self._sets: List[List[int]] = [[] for _ in range(spec.num_sets)]
        # Dirty tags per set (write-back bookkeeping).
        self._dirty: List[set] = [set() for _ in range(spec.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ API
    def line_address(self, addr: int) -> int:
        """Return the line-aligned address containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def lines_spanned(self, addr: int, size: int) -> range:
        """Return the line numbers touched by an access of ``size`` bytes."""
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        return range(first, last + 1)

    def access(self, addr: int, port: int, size: int = 1, write: bool = False) -> int:
        """Access ``size`` bytes at ``addr`` through ``port``.

        Returns the number of misses incurred *at this level* (an access can
        straddle a line boundary and therefore miss more than once).  Misses
        are automatically forwarded to :attr:`next_level` when one is
        attached, so a single call on the L1 drives the whole hierarchy.
        """
        misses = 0
        for line in self.lines_spanned(addr, size):
            misses += self._access_line(line, port, write)
        return misses

    def access_line(self, line_addr: int, port: int, write: bool = False) -> int:
        """Access a single, already line-aligned address (fast path)."""
        return self._access_line(line_addr >> self._line_shift, port, write)

    def access_span(self, addr: int, size: int, port: int,
                    refs: Optional[int] = None, write: bool = False) -> int:
        """Streaming access to a contiguous ``size``-byte span (batch path).

        A vectorized executor reads a column batch as one tight loop of
        element loads over a contiguous buffer.  ``refs`` is the number of
        element accesses the loop issues (defaults to one per cache line);
        the accesses land sequentially, so each line is looked up once and
        the remaining ``refs - lines`` accesses are line hits by
        construction.  Misses are still counted (and forwarded) per line,
        which keeps the miss counters identical to issuing the element loads
        one by one while recording the true access count.
        """
        lines = self.lines_spanned(addr, size)
        misses = 0
        for line in lines:
            misses += self._access_line(line, port, write)
        if refs is not None and refs > len(lines):
            self.stats.accesses[port] += refs - len(lines)
        return misses

    # ----------------------------------------------------------- internals
    def _access_line(self, line_number: int, port: int, write: bool) -> int:
        stats = self.stats
        stats.accesses[port] += 1
        set_index = line_number & self._set_mask
        tag = line_number >> 0  # keep full line number as tag; set bits are redundant but harmless
        ways = self._sets[set_index]
        if tag in ways:
            # Hit: move to MRU position.
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            if write:
                self._dirty[set_index].add(tag)
            return 0

        # Miss.
        stats.misses[port] += 1
        if self.next_level is not None:
            # A fill request to the next level is a read regardless of the
            # original port's direction (write-allocate), but instruction
            # fills keep the instruction port so the unified L2 can separate
            # TL2D from TL2I.
            next_port = PORT_INSTRUCTION if port == PORT_INSTRUCTION else PORT_DATA_READ
            self.next_level._access_line(line_number, next_port, False)
        self._fill(set_index, tag, dirty=write and self.spec.write_back)
        if write and not self.spec.write_back:
            # Write-through: the write is also forwarded (counted as traffic
            # only; latency is hidden by the write buffer).
            if self.next_level is not None:
                self.next_level._access_line(line_number, PORT_DATA_WRITE, True)
        return 1

    def _fill(self, set_index: int, tag: int, dirty: bool) -> None:
        ways = self._sets[set_index]
        if len(ways) >= self.spec.associativity:
            victim = ways.pop()
            dirty_set = self._dirty[set_index]
            if victim in dirty_set:
                dirty_set.discard(victim)
                self.stats.writebacks += 1
                if self.next_level is not None:
                    # The write-back installs the line in the next level.
                    self.next_level._access_line(victim, PORT_DATA_WRITE, True)
        ways.insert(0, tag)
        if dirty:
            self._dirty[set_index].add(tag)

    # ------------------------------------------------------------ contents
    def contains(self, addr: int) -> bool:
        """True when the line containing ``addr`` is resident."""
        line_number = addr >> self._line_shift
        return line_number in self._sets[line_number & self._set_mask]

    def resident_lines(self) -> int:
        """Number of lines currently resident (useful in tests)."""
        return sum(len(ways) for ways in self._sets)

    def invalidate_all(self) -> int:
        """Invalidate every line; returns the number of lines dropped."""
        dropped = self.resident_lines()
        for ways in self._sets:
            ways.clear()
        for dirty in self._dirty:
            dirty.clear()
        self.stats.invalidations += dropped
        return dropped

    def invalidate_fraction(self, fraction: float, stride: int = 1) -> int:
        """Invalidate roughly ``fraction`` of resident lines.

        Used by the OS-interference model to approximate the instruction
        cache pollution caused by a context switch: the interrupt handler and
        the scheduler evict a portion of the DBMS's instruction lines, which
        must then be re-fetched (Section 5.2.2).
        """
        if fraction <= 0.0:
            return 0
        if fraction >= 1.0:
            return self.invalidate_all()
        dropped = 0
        for set_index, ways in enumerate(self._sets):
            if not ways:
                continue
            if (set_index // max(stride, 1)) % 1 == 0:
                keep = int(round(len(ways) * (1.0 - fraction)))
                victims = ways[keep:]
                del ways[keep:]
                dirty = self._dirty[set_index]
                for victim in victims:
                    dirty.discard(victim)
                dropped += len(victims)
        self.stats.invalidations += dropped
        return dropped

    def warm(self, addresses: Iterable[int], port: int = PORT_DATA_READ) -> None:
        """Pre-load lines without counting statistics (cache warm-up).

        The paper warms the caches with multiple runs of each query before
        measuring; warm-up through this method (or by discarding the counters
        of a priming run) reproduces that methodology.
        """
        saved_acc = list(self.stats.accesses)
        saved_miss = list(self.stats.misses)
        saved_wb = self.stats.writebacks
        next_saved = None
        if self.next_level is not None:
            next_saved = (list(self.next_level.stats.accesses),
                          list(self.next_level.stats.misses),
                          self.next_level.stats.writebacks)
        for addr in addresses:
            self.access(addr, port)
        self.stats.accesses = saved_acc
        self.stats.misses = saved_miss
        self.stats.writebacks = saved_wb
        if self.next_level is not None and next_saved is not None:
            self.next_level.stats.accesses, self.next_level.stats.misses, \
                self.next_level.stats.writebacks = next_saved

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Cache({self.name}, {self.spec.size_bytes // 1024}KB, "
                f"{self.spec.associativity}-way, {self.spec.line_bytes}B lines)")


@dataclass
class HierarchyStats:
    """Snapshot of the statistics of every level plus derived quantities."""

    l1d: Dict[str, float]
    l1i: Dict[str, float]
    l2: Dict[str, float]

    @property
    def l1d_misses(self) -> int:
        return int(self.l1d["misses"])

    @property
    def l1i_misses(self) -> int:
        return int(self.l1i["misses"])

    @property
    def l2_data_misses(self) -> int:
        return int(self.l2["data_read_misses"] + self.l2["data_write_misses"])

    @property
    def l2_instruction_misses(self) -> int:
        return int(self.l2["instruction_misses"])


class CacheHierarchy:
    """The split-L1 / unified-L2 hierarchy of Table 4.1.

    Data accesses go through the L1 D-cache, instruction fetches through the
    L1 I-cache, and misses from either are forwarded to the shared L2 which
    keeps per-port statistics so that data and instruction misses can be
    reported separately (they carry different stall components in the
    paper's framework).
    """

    def __init__(self, l1d_spec: CacheSpec, l1i_spec: CacheSpec, l2_spec: CacheSpec) -> None:
        self.l2 = Cache(l2_spec)
        self.l1d = Cache(l1d_spec, next_level=self.l2)
        self.l1i = Cache(l1i_spec, next_level=self.l2)

    # Data side -----------------------------------------------------------
    def read(self, addr: int, size: int = 4) -> int:
        """Data read; returns number of L1D misses incurred."""
        return self.l1d.access(addr, PORT_DATA_READ, size=size, write=False)

    def write(self, addr: int, size: int = 4) -> int:
        """Data write; returns number of L1D misses incurred."""
        return self.l1d.access(addr, PORT_DATA_WRITE, size=size, write=True)

    def read_span(self, addr: int, size: int, refs: Optional[int] = None) -> int:
        """Streaming data read of a contiguous span (vectorized column batch)."""
        return self.l1d.access_span(addr, size, PORT_DATA_READ, refs=refs)

    # Instruction side ------------------------------------------------------
    def fetch(self, line_addr: int) -> int:
        """Instruction fetch of one line; returns 1 on an L1I miss else 0."""
        return self.l1i.access_line(line_addr, PORT_INSTRUCTION)

    # Statistics ------------------------------------------------------------
    def snapshot(self) -> HierarchyStats:
        return HierarchyStats(
            l1d=self.l1d.stats.as_dict(),
            l1i=self.l1i.stats.as_dict(),
            l2=self.l2.stats.as_dict(),
        )

    def reset_stats(self) -> None:
        self.l1d.reset_stats()
        self.l1i.reset_stats()
        self.l2.reset_stats()
