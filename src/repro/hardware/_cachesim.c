/* Native fast path for the set-associative cache automaton.
 *
 * This module accelerates the inner loops of ``repro.hardware.cache.Cache``
 * (``access_strided`` / ``access_lines`` and the scalar ``access``) without
 * owning any state: it manipulates the *same* Python ``list``-of-lists set
 * structures and per-set dirty ``set`` objects the pure-Python automaton
 * uses, via the CPython C API.  Every state transition -- membership probe,
 * MRU move, victim pop, dirty bookkeeping, L1->L2 fill, write-back -- is a
 * line-for-line transcription of the Python reference implementation, so
 * the cache contents, LRU orderings and statistics after any call are
 * byte-identical to the pure-Python path (asserted by the differential
 * hypothesis suite in ``tests/test_native_cache.py``).  The pure-Python
 * loops remain in place as the oracle and the fallback when this module is
 * not buildable.
 *
 * Statistics are *not* updated here: each entry point returns the counter
 * deltas as a tuple and the Python caller folds them into ``CacheStats``
 * (the adds commute, so applying them once per call changes no totals --
 * the same argument the span-charging fast path already relies on).
 *
 * Return tuple layout (all non-negative integers):
 *   (accesses, misses, self_writebacks,
 *    next_fill_accesses, next_fill_misses,
 *    next_write_accesses, next_write_misses, next_writebacks)
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#ifndef CACHESIM_SOURCE_HASH
#define CACHESIM_SOURCE_HASH "dev"
#endif

typedef struct {
    PyObject *sets;   /* list of per-set MRU-ordered lists of line numbers */
    PyObject *dirty;  /* list of per-set Python sets of dirty line numbers */
    long set_mask;
    long assoc;
    int write_back;
} Level;

typedef struct {
    long accesses;
    long misses;
    long self_wb;
    long fill_acc;
    long fill_miss;
    long write_acc;
    long write_miss;
    long next_wb;
} Counts;

/* ----------------------------------------------------------- list helpers */

static Py_ssize_t
find_line(PyObject *ways, long line)
{
    Py_ssize_t n = PyList_GET_SIZE(ways);
    for (Py_ssize_t i = 0; i < n; i++) {
        long v = PyLong_AsLong(PyList_GET_ITEM(ways, i));
        if (v == line)
            return i;
    }
    return -1;
}

/* Move the item at index ``i`` to the front (MRU position). */
static int
mru_move(PyObject *ways, Py_ssize_t i)
{
    PyObject *item = PyList_GET_ITEM(ways, i);
    Py_INCREF(item);
    if (PyList_SetSlice(ways, i, i + 1, NULL) < 0) {
        Py_DECREF(item);
        return -1;
    }
    if (PyList_Insert(ways, 0, item) < 0) {
        Py_DECREF(item);
        return -1;
    }
    Py_DECREF(item);
    return 0;
}

static int
insert_front(PyObject *ways, long line)
{
    PyObject *obj = PyLong_FromLong(line);
    if (obj == NULL)
        return -1;
    int rc = PyList_Insert(ways, 0, obj);
    Py_DECREF(obj);
    return rc;
}

/* Pop the LRU (last) entry; stores its line number into *victim. */
static int
pop_last(PyObject *ways, long *victim)
{
    Py_ssize_t n = PyList_GET_SIZE(ways);
    *victim = PyLong_AsLong(PyList_GET_ITEM(ways, n - 1));
    return PyList_SetSlice(ways, n - 1, n, NULL);
}

static int
dirty_add(PyObject *dirty_list, long set_index, long line)
{
    PyObject *key = PyLong_FromLong(line);
    if (key == NULL)
        return -1;
    int rc = PySet_Add(PyList_GET_ITEM(dirty_list, set_index), key);
    Py_DECREF(key);
    return rc;
}

/* Discard ``line`` from the set; returns 1 if it was present, 0 if not,
 * -1 on error -- exactly the "if victim in dirty: discard" idiom. */
static int
dirty_discard(PyObject *dirty_list, long set_index, long line)
{
    PyObject *key = PyLong_FromLong(line);
    if (key == NULL)
        return -1;
    int rc = PySet_Discard(PyList_GET_ITEM(dirty_list, set_index), key);
    Py_DECREF(key);
    return rc;
}

/* ------------------------------------------------------- level automaton */

/* ``Cache._miss_line`` for a cache with no next level (the L2, or a
 * standalone cache): victim selection, write-back bookkeeping, fill. */
static int
last_level_miss_line(Level *lvl, Counts *counts, long line, int write, int is_next)
{
    long set_index = line & lvl->set_mask;
    PyObject *ways = PyList_GET_ITEM(lvl->sets, set_index);
    if (PyList_GET_SIZE(ways) >= lvl->assoc) {
        long victim;
        if (pop_last(ways, &victim) < 0)
            return -1;
        int was_dirty = dirty_discard(lvl->dirty, set_index, victim);
        if (was_dirty < 0)
            return -1;
        if (was_dirty) {
            if (is_next)
                counts->next_wb++;
            else
                counts->self_wb++;
        }
    }
    if (insert_front(ways, line) < 0)
        return -1;
    if (write && lvl->write_back)
        return dirty_add(lvl->dirty, set_index, line);
    return 0;
}

/* ``Cache._access_line`` on the *next* level (used for L1 victim
 * write-backs and write-through forwarding): counts on the write port. */
static int
next_level_write_access(Level *next, Counts *counts, long line)
{
    counts->write_acc++;
    long set_index = line & next->set_mask;
    PyObject *ways = PyList_GET_ITEM(next->sets, set_index);
    Py_ssize_t i = find_line(ways, line);
    if (i >= 0) {
        if (i > 0 && mru_move(ways, i) < 0)
            return -1;
        return dirty_add(next->dirty, set_index, line);
    }
    counts->write_miss++;
    return last_level_miss_line(next, counts, line, 1, 1);
}

/* ``Cache._miss_line`` on the first level, including the next-level fill
 * request and the victim write-back. */
static int
miss_line(Level *self, Level *next, Counts *counts, long line, int write)
{
    if (next != NULL) {
        /* Fill request: a read regardless of the original direction;
         * the port split (fill vs write traffic) is applied by the
         * Python caller, which knows the fill port. */
        counts->fill_acc++;
        long nset = line & next->set_mask;
        PyObject *nways = PyList_GET_ITEM(next->sets, nset);
        Py_ssize_t i = find_line(nways, line);
        if (i >= 0) {
            if (i > 0 && mru_move(nways, i) < 0)
                return -1;
        }
        else {
            counts->fill_miss++;
            if (last_level_miss_line(next, counts, line, 0, 1) < 0)
                return -1;
        }
    }
    long set_index = line & self->set_mask;
    PyObject *ways = PyList_GET_ITEM(self->sets, set_index);
    if (PyList_GET_SIZE(ways) >= self->assoc) {
        long victim;
        if (pop_last(ways, &victim) < 0)
            return -1;
        int was_dirty = dirty_discard(self->dirty, set_index, victim);
        if (was_dirty < 0)
            return -1;
        if (was_dirty) {
            counts->self_wb++;
            if (next != NULL && next_level_write_access(next, counts, victim) < 0)
                return -1;
        }
    }
    if (insert_front(ways, line) < 0)
        return -1;
    if (write) {
        if (self->write_back)
            return dirty_add(self->dirty, set_index, line);
        if (next != NULL)
            return next_level_write_access(next, counts, line);
    }
    return 0;
}

/* One line touch on the first level (hit fast path + miss machine). */
static int
touch_line(Level *self, Level *next, Counts *counts, long line, int port, int write)
{
    (void)port;
    counts->accesses++;
    long set_index = line & self->set_mask;
    PyObject *ways = PyList_GET_ITEM(self->sets, set_index);
    Py_ssize_t i = find_line(ways, line);
    if (i >= 0) {
        if (i > 0 && mru_move(ways, i) < 0)
            return -1;
        if (write)
            return dirty_add(self->dirty, set_index, line);
        return 0;
    }
    counts->misses++;
    return miss_line(self, next, counts, line, write);
}

/* ------------------------------------------------------- argument parsing */

static int
unpack_level(PyObject *obj, Level *lvl)
{
    /* ``(sets, dirty, set_mask, assoc, write_back)`` prebuilt per Cache. */
    if (!PyTuple_Check(obj) || PyTuple_GET_SIZE(obj) != 5) {
        PyErr_SetString(PyExc_TypeError, "level must be a 5-tuple");
        return -1;
    }
    lvl->sets = PyTuple_GET_ITEM(obj, 0);
    lvl->dirty = PyTuple_GET_ITEM(obj, 1);
    lvl->set_mask = PyLong_AsLong(PyTuple_GET_ITEM(obj, 2));
    lvl->assoc = PyLong_AsLong(PyTuple_GET_ITEM(obj, 3));
    lvl->write_back = (int)PyLong_AsLong(PyTuple_GET_ITEM(obj, 4));
    if (PyErr_Occurred())
        return -1;
    return 0;
}

static PyObject *
build_result(const Counts *counts)
{
    return Py_BuildValue("(llllllll)", counts->accesses, counts->misses,
                         counts->self_wb, counts->fill_acc, counts->fill_miss,
                         counts->write_acc, counts->write_miss, counts->next_wb);
}

/* --------------------------------------------------------- entry points */

/* strided(self, next_or_None, line_shift, addr, stride, count, size,
 *         port, write) -- mirrors ``Cache.access_strided``. */
static PyObject *
cachesim_strided(PyObject *module, PyObject *args)
{
    (void)module;
    PyObject *self_obj, *next_obj;
    long shift, addr, stride, count, size;
    int port, write;
    if (!PyArg_ParseTuple(args, "OOlllllii", &self_obj, &next_obj, &shift,
                          &addr, &stride, &count, &size, &port, &write))
        return NULL;
    Level self_lvl, next_lvl;
    Level *next = NULL;
    if (unpack_level(self_obj, &self_lvl) < 0)
        return NULL;
    if (next_obj != Py_None) {
        if (unpack_level(next_obj, &next_lvl) < 0)
            return NULL;
        next = &next_lvl;
    }
    Counts counts = {0, 0, 0, 0, 0, 0, 0, 0};
    long span = (size > 1 ? size : 1) - 1;
    long element = addr;
    for (long k = 0; k < count; k++) {
        long first = element >> shift;
        long last = (element + span) >> shift;
        element += stride;
        for (long line = first; line <= last; line++) {
            if (touch_line(&self_lvl, next, &counts, line, port, write) < 0)
                return NULL;
        }
    }
    return build_result(&counts);
}

/* lines(self, next_or_None, line_shift, start_addr, step, count, port,
 *       write) -- mirrors ``Cache.access_lines`` over an address range. */
static PyObject *
cachesim_lines(PyObject *module, PyObject *args)
{
    (void)module;
    PyObject *self_obj, *next_obj;
    long shift, start, step, count;
    int port, write;
    if (!PyArg_ParseTuple(args, "OOllllii", &self_obj, &next_obj, &shift,
                          &start, &step, &count, &port, &write))
        return NULL;
    Level self_lvl, next_lvl;
    Level *next = NULL;
    if (unpack_level(self_obj, &self_lvl) < 0)
        return NULL;
    if (next_obj != Py_None) {
        if (unpack_level(next_obj, &next_lvl) < 0)
            return NULL;
        next = &next_lvl;
    }
    Counts counts = {0, 0, 0, 0, 0, 0, 0, 0};
    long addr = start;
    for (long k = 0; k < count; k++) {
        if (touch_line(&self_lvl, next, &counts, addr >> shift, port, write) < 0)
            return NULL;
        addr += step;
    }
    return build_result(&counts);
}

/* ====================================================================== */
/* Charged fast paths: processor- and executor-level loops.                */
/*                                                                        */
/* The entry points below move whole *charging* operations (not just the  */
/* cache automaton) into C: an executor routine visit, a charged strided  */
/* data read/write (DTLB + caches + event counters), an instruction-run   */
/* fetch, and the per-row conjunct branch loop.  They manipulate the same */
/* Python state the pure-Python code does -- counter dicts, TLB           */
/* OrderedDicts, BTB entry lists, cache set lists -- via the C API, so    */
/* every simulated count and every piece of microarchitectural state is   */
/* identical to the pure-Python oracle (asserted by the differential      */
/* suites; the pure-Python paths remain in place as oracle and fallback). */
/* ====================================================================== */

#define HASH_CONSTANT 2654435761UL

/* Interned attribute / counter-key strings (created at module init). */
static PyObject *s_stats, *s_accesses, *s_misses, *s_writebacks;
static PyObject *s_branches, *s_taken, *s_mispredictions, *s_btb_hits, *s_btb_misses;
static PyObject *s_tag, *s_history, *s_counters;
static PyObject *s_move_to_end, *s_popitem;
static PyObject *s_visit_counter, *s_cold_cursor, *s_workspace_cursor, *s_bulk_carry;
static PyObject *s_l1i_stall, *s_last_page;
static PyObject *k_IFU_IFETCH, *k_IFU_IFETCH_MISS, *k_L2_IFETCH, *k_L2_IFETCH_MISS;
static PyObject *k_ITLB_MISS, *k_INST_RETIRED, *k_INST_DECODED, *k_UOPS_RETIRED;
static PyObject *k_DATA_MEM_REFS, *k_PARTIAL_RAT_STALLS, *k_FU_CONTENTION_STALLS;
static PyObject *k_ILD_STALL, *k_RESOURCE_STALLS, *k_DTLB_MISS, *k_DCU_LINES_IN;
static PyObject *k_L2_DATA_RQSTS, *k_L2_DATA_MISS, *k_BR_INST_RETIRED;
static PyObject *k_BR_TAKEN_RETIRED, *k_BR_MISS_PRED_RETIRED, *k_BTB_MISSES;

/* The processor-level constant block built by SimulatedProcessor (stable
 * objects only: stats objects rebind on reset_stats and are re-fetched per
 * call through GetAttr). */
typedef struct {
    PyObject *l1d_obj, *l1i_obj, *l2_obj;
    Level l1d, l1i, l2;
    long l1d_shift, l1i_shift;
    PyObject *dtlb_obj, *itlb_obj, *dtlb_entries, *itlb_entries;
    long dtlb_shift, itlb_shift, dtlb_cap, itlb_cap;
    PyObject *branch_obj, *btb_sets;
    long btb_set_mask, history_mask, history_bits, btb_assoc;
    int static_backward;
    PyObject *entry_class;
    double l1i_stall_cost, l2i_stall_cost;
    PyObject *user;       /* counters.user dict */
    PyObject *processor;  /* SimulatedProcessor (stall / last-page attrs) */
} Machine;

typedef struct {
    long branches, taken, mispred, btb_hits, btb_misses;
} BranchDeltas;

static int
unpack_machine(PyObject *state, Machine *m)
{
    if (!PyTuple_Check(state) || PyTuple_GET_SIZE(state) != 28) {
        PyErr_SetString(PyExc_TypeError, "machine state must be a 28-tuple");
        return -1;
    }
#define ITEM(i) PyTuple_GET_ITEM(state, (i))
    m->l1d_obj = ITEM(0); m->l1i_obj = ITEM(1); m->l2_obj = ITEM(2);
    if (unpack_level(ITEM(3), &m->l1d) < 0) return -1;
    if (unpack_level(ITEM(4), &m->l1i) < 0) return -1;
    if (unpack_level(ITEM(5), &m->l2) < 0) return -1;
    m->l1d_shift = PyLong_AsLong(ITEM(6));
    m->l1i_shift = PyLong_AsLong(ITEM(7));
    m->dtlb_obj = ITEM(8); m->itlb_obj = ITEM(9);
    m->dtlb_entries = ITEM(10); m->itlb_entries = ITEM(11);
    m->dtlb_shift = PyLong_AsLong(ITEM(12));
    m->itlb_shift = PyLong_AsLong(ITEM(13));
    m->dtlb_cap = PyLong_AsLong(ITEM(14));
    m->itlb_cap = PyLong_AsLong(ITEM(15));
    m->branch_obj = ITEM(16); m->btb_sets = ITEM(17);
    m->btb_set_mask = PyLong_AsLong(ITEM(18));
    m->history_mask = PyLong_AsLong(ITEM(19));
    m->static_backward = (int)PyLong_AsLong(ITEM(20));
    m->history_bits = PyLong_AsLong(ITEM(21));
    m->btb_assoc = PyLong_AsLong(ITEM(22));
    m->entry_class = ITEM(23);
    m->l1i_stall_cost = PyFloat_AsDouble(ITEM(24));
    m->l2i_stall_cost = PyFloat_AsDouble(ITEM(25));
    m->user = ITEM(26);
    m->processor = ITEM(27);
#undef ITEM
    if (PyErr_Occurred())
        return -1;
    return 0;
}

/* ----------------------------------------------------- small fold helpers */

static int
dict_add(PyObject *d, PyObject *key, long delta)
{
    if (!delta)
        return 0;
    PyObject *cur = PyDict_GetItemWithError(d, key);  /* borrowed */
    if (cur == NULL && PyErr_Occurred())
        return -1;
    long value = delta;
    if (cur != NULL) {
        value += PyLong_AsLong(cur);
        if (PyErr_Occurred())
            return -1;
    }
    PyObject *obj = PyLong_FromLong(value);
    if (obj == NULL)
        return -1;
    int rc = PyDict_SetItem(d, key, obj);
    Py_DECREF(obj);
    return rc;
}

static long
get_long_attr(PyObject *obj, PyObject *name, int *err)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) { *err = 1; return 0; }
    long out = PyLong_AsLong(v);
    Py_DECREF(v);
    if (out == -1 && PyErr_Occurred()) { *err = 1; return 0; }
    return out;
}

static int
set_long_attr(PyObject *obj, PyObject *name, long value)
{
    PyObject *v = PyLong_FromLong(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

static double
get_double_attr(PyObject *obj, PyObject *name, int *err)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) { *err = 1; return 0.0; }
    double out = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (out == -1.0 && PyErr_Occurred()) { *err = 1; return 0.0; }
    return out;
}

static int
set_double_attr(PyObject *obj, PyObject *name, double value)
{
    PyObject *v = PyFloat_FromDouble(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

static int
attr_add_long(PyObject *obj, PyObject *name, long delta)
{
    if (!delta)
        return 0;
    int err = 0;
    long cur = get_long_attr(obj, name, &err);
    if (err)
        return -1;
    return set_long_attr(obj, name, cur + delta);
}

static int
list_add_long(PyObject *list, Py_ssize_t index, long delta)
{
    if (!delta)
        return 0;
    long cur = PyLong_AsLong(PyList_GET_ITEM(list, index));
    if (cur == -1 && PyErr_Occurred())
        return -1;
    PyObject *obj = PyLong_FromLong(cur + delta);
    if (obj == NULL)
        return -1;
    PyList_SetItem(list, index, obj);  /* steals obj */
    return 0;
}

/* Fold accesses/misses/writebacks into ``cache.stats`` (re-fetched per call:
 * reset_stats rebinds the stats object). */
static int
fold_cache(PyObject *cache_obj, int port, long accesses, long misses, long wb)
{
    if (!accesses && !misses && !wb)
        return 0;
    PyObject *stats = PyObject_GetAttr(cache_obj, s_stats);
    if (stats == NULL)
        return -1;
    int rc = -1;
    PyObject *acc_list = NULL, *miss_list = NULL;
    acc_list = PyObject_GetAttr(stats, s_accesses);
    if (acc_list == NULL) goto done;
    miss_list = PyObject_GetAttr(stats, s_misses);
    if (miss_list == NULL) goto done;
    if (list_add_long(acc_list, port, accesses) < 0) goto done;
    if (list_add_long(miss_list, port, misses) < 0) goto done;
    if (attr_add_long(stats, s_writebacks, wb) < 0) goto done;
    rc = 0;
done:
    Py_XDECREF(acc_list);
    Py_XDECREF(miss_list);
    Py_DECREF(stats);
    return rc;
}

/* Fold the next-level (L2) deltas of a Counts block, exactly as
 * ``Cache._apply_native`` does on the Python side. */
static int
fold_next(PyObject *l2_obj, int fill_port, const Counts *c)
{
    if (!c->fill_acc && !c->fill_miss && !c->write_acc && !c->write_miss
            && !c->next_wb)
        return 0;
    PyObject *stats = PyObject_GetAttr(l2_obj, s_stats);
    if (stats == NULL)
        return -1;
    int rc = -1;
    PyObject *acc_list = NULL, *miss_list = NULL;
    acc_list = PyObject_GetAttr(stats, s_accesses);
    if (acc_list == NULL) goto done;
    miss_list = PyObject_GetAttr(stats, s_misses);
    if (miss_list == NULL) goto done;
    if (list_add_long(acc_list, fill_port, c->fill_acc) < 0) goto done;
    if (list_add_long(miss_list, fill_port, c->fill_miss) < 0) goto done;
    if (list_add_long(acc_list, 1, c->write_acc) < 0) goto done;
    if (list_add_long(miss_list, 1, c->write_miss) < 0) goto done;
    if (attr_add_long(stats, s_writebacks, c->next_wb) < 0) goto done;
    rc = 0;
done:
    Py_XDECREF(acc_list);
    Py_XDECREF(miss_list);
    Py_DECREF(stats);
    return rc;
}

static int
fold_tlb(PyObject *tlb_obj, long accesses, long misses)
{
    if (!accesses && !misses)
        return 0;
    PyObject *stats = PyObject_GetAttr(tlb_obj, s_stats);
    if (stats == NULL)
        return -1;
    int rc = 0;
    if (attr_add_long(stats, s_accesses, accesses) < 0)
        rc = -1;
    else if (attr_add_long(stats, s_misses, misses) < 0)
        rc = -1;
    Py_DECREF(stats);
    return rc;
}

static int
fold_branch(PyObject *branch_obj, const BranchDeltas *bd)
{
    if (!bd->branches)
        return 0;
    PyObject *stats = PyObject_GetAttr(branch_obj, s_stats);
    if (stats == NULL)
        return -1;
    int rc = -1;
    if (attr_add_long(stats, s_branches, bd->branches) < 0) goto done;
    if (attr_add_long(stats, s_taken, bd->taken) < 0) goto done;
    if (attr_add_long(stats, s_mispredictions, bd->mispred) < 0) goto done;
    if (attr_add_long(stats, s_btb_hits, bd->btb_hits) < 0) goto done;
    if (attr_add_long(stats, s_btb_misses, bd->btb_misses) < 0) goto done;
    rc = 0;
done:
    Py_DECREF(stats);
    return rc;
}

/* --------------------------------------------------------- TLB automaton */

/* One ``TLB.access``/``access_bulk`` state transition on the OrderedDict
 * (mutating method calls go through the object so the LRU linkage stays
 * consistent; membership/size use the dict fast paths).  The access count
 * is accumulated by the caller. */
static int
tlb_touch(PyObject *entries, long capacity, long page, long *miss)
{
    PyObject *key = PyLong_FromLong(page);
    if (key == NULL)
        return -1;
    int has = PyDict_Contains(entries, key);
    if (has < 0) {
        Py_DECREF(key);
        return -1;
    }
    if (has) {
        PyObject *r = PyObject_CallMethodObjArgs(entries, s_move_to_end, key, NULL);
        Py_DECREF(key);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    (*miss)++;
    int rc = PyObject_SetItem(entries, key, Py_None);
    Py_DECREF(key);
    if (rc < 0)
        return -1;
    if (PyDict_Size(entries) > capacity) {
        PyObject *r = PyObject_CallMethodObjArgs(entries, s_popitem, Py_False, NULL);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    return 0;
}

/* ---------------------------------------------------- instruction fetches */

/* ``SimulatedProcessor.fetch_code_run``: ITLB per page transition, one L1I
 * line touch per line, per-run front-end stall accumulation.  Counter
 * deltas accumulate into *ic / *itlb_*; the stall is added per run with
 * misses (the exact float-accumulation order of the Python code). */
static int
fetch_run_impl(Machine *m, long line_addr, long count, Counts *ic,
               long *itlb_acc, long *itlb_miss, long *last_page, double *stall)
{
    if (count <= 0)
        return 0;
    long line_bytes = 1L << m->l1i_shift;
    long first_page = line_addr >> m->itlb_shift;
    long last_line = line_addr + (count - 1) * line_bytes;
    long miss_before = ic->misses;
    long fill_before = ic->fill_miss;
    if (first_page != *last_page) {
        (*itlb_acc)++;
        if (tlb_touch(m->itlb_entries, m->itlb_cap, first_page, itlb_miss) < 0)
            return -1;
    }
    long end_page = last_line >> m->itlb_shift;
    for (long page = first_page + 1; page <= end_page; page++) {
        (*itlb_acc)++;
        if (tlb_touch(m->itlb_entries, m->itlb_cap, page, itlb_miss) < 0)
            return -1;
    }
    *last_page = end_page;
    for (long k = 0; k < count; k++) {
        long line = (line_addr + k * line_bytes) >> m->l1i_shift;
        if (touch_line(&m->l1i, &m->l2, ic, line, 2, 0) < 0)
            return -1;
    }
    long l1i_run = ic->misses - miss_before;
    if (l1i_run) {
        long l2i_run = ic->fill_miss - fill_before;
        *stall += (double)l1i_run * m->l1i_stall_cost
                  + (double)l2i_run * m->l2i_stall_cost;
    }
    return 0;
}

/* Fold the instruction-side counter/statistics deltas of one or more fetch
 * runs (the adds commute across runs, exactly like the per-call adds of
 * ``fetch_code_run``). */
static int
fold_fetch(Machine *m, const Counts *ic, long itlb_acc, long itlb_miss)
{
    if (dict_add(m->user, k_IFU_IFETCH, ic->accesses) < 0) return -1;
    if (dict_add(m->user, k_IFU_IFETCH_MISS, ic->misses) < 0) return -1;
    if (dict_add(m->user, k_L2_IFETCH, ic->misses) < 0) return -1;
    if (dict_add(m->user, k_L2_IFETCH_MISS, ic->fill_miss) < 0) return -1;
    if (dict_add(m->user, k_ITLB_MISS, itlb_miss) < 0) return -1;
    if (fold_cache(m->l1i_obj, 2, ic->accesses, ic->misses, ic->self_wb) < 0)
        return -1;
    if (fold_next(m->l2_obj, 2, ic) < 0) return -1;
    if (fold_tlb(m->itlb_obj, itlb_acc, itlb_miss) < 0) return -1;
    return 0;
}

/* ---------------------------------------------------------- data accesses */

/* ``SimulatedProcessor.data_read_strided``/``data_write_strided`` body:
 * DTLB once per page-run of elements, L1D automaton per line.  Degenerate
 * strides (<= 0) fall back to one DTLB consultation per element, which is
 * what the scalar ``data_read`` loop does -- same totals, same state. */
static int
data_strided_impl(Machine *m, long addr, long stride, long count, long size,
                  int write, Counts *dc, long *dtlb_acc, long *dtlb_miss)
{
    long span = (size > 1 ? size : 1) - 1;
    int port = write ? 1 : 0;
    long position = 0;
    while (position < count) {
        /* Degenerate strides (<= 0) revisit the same element, exactly like
         * the scalar fallback loop of the Python strided paths. */
        long element = stride > 0 ? addr + position * stride : addr;
        long run = 1;
        if (stride > 0) {
            long page_end = ((element >> m->dtlb_shift) + 1) << m->dtlb_shift;
            run = (page_end - element + stride - 1) / stride;
            if (run > count - position)
                run = count - position;
            if (run < 1)
                run = 1;
        }
        *dtlb_acc += run;
        if (tlb_touch(m->dtlb_entries, m->dtlb_cap,
                      element >> m->dtlb_shift, dtlb_miss) < 0)
            return -1;
        for (long r = 0; r < run; r++) {
            long e = element + r * stride;
            long first = e >> m->l1d_shift;
            long last = (e + span) >> m->l1d_shift;
            for (long line = first; line <= last; line++) {
                if (touch_line(&m->l1d, &m->l2, dc, line, port, write) < 0)
                    return -1;
            }
        }
        position += run;
    }
    return 0;
}

/* Fold the data-side counter/statistics deltas (the counter adds of
 * ``data_read``/``data_read_strided``; fills to the L2 land on the data
 * read port, exactly as ``_apply_native`` routes them). */
static int
fold_data(Machine *m, const Counts *dc, long elements, long dtlb_acc,
          long dtlb_miss, int port)
{
    if (dict_add(m->user, k_DATA_MEM_REFS, elements) < 0) return -1;
    if (dict_add(m->user, k_DTLB_MISS, dtlb_miss) < 0) return -1;
    if (dc->misses) {
        if (dict_add(m->user, k_DCU_LINES_IN, dc->misses) < 0) return -1;
        if (dict_add(m->user, k_L2_DATA_RQSTS, dc->misses) < 0) return -1;
        if (dict_add(m->user, k_L2_DATA_MISS,
                     dc->fill_miss + dc->write_miss) < 0) return -1;
    }
    if (fold_cache(m->l1d_obj, port, dc->accesses, dc->misses, dc->self_wb) < 0)
        return -1;
    if (fold_next(m->l2_obj, 0, dc) < 0) return -1;
    if (fold_tlb(m->dtlb_obj, dtlb_acc, dtlb_miss) < 0) return -1;
    return 0;
}

/* ------------------------------------------------------ branch prediction */

/* ``_BTBEntry.update``: saturate the 2-bit counter, shift the history. */
static int
entry_update(PyObject *entry, long history, long counter, int taken,
             long history_mask)
{
    long updated = counter;
    if (taken) {
        if (counter < 3)
            updated = counter + 1;
    }
    else if (counter > 0) {
        updated = counter - 1;
    }
    if (updated != counter) {
        PyObject *counters = PyObject_GetAttr(entry, s_counters);
        if (counters == NULL)
            return -1;
        PyObject *obj = PyLong_FromLong(updated);
        if (obj == NULL) {
            Py_DECREF(counters);
            return -1;
        }
        PyList_SetItem(counters, history, obj);  /* steals */
        Py_DECREF(counters);
    }
    long new_history = ((history << 1) | (taken ? 1 : 0)) & history_mask;
    return set_long_attr(entry, s_history, new_history);
}

/* ``BranchPredictor.execute``; returns 1 mispredicted / 0 predicted /
 * -1 error, with the stats deltas accumulated into *bd. */
static int
branch_exec(Machine *m, long site_addr, int taken, int backward,
            BranchDeltas *bd)
{
    bd->branches++;
    if (taken)
        bd->taken++;
    long site = site_addr >> 4;
    long set_index = site & m->btb_set_mask;
    PyObject *ways = PyList_GET_ITEM(m->btb_sets, set_index);
    Py_ssize_t n = PyList_GET_SIZE(ways);
    Py_ssize_t found = -1;
    for (Py_ssize_t i = 0; i < n; i++) {
        int err = 0;
        long tag = get_long_attr(PyList_GET_ITEM(ways, i), s_tag, &err);
        if (err)
            return -1;
        if (tag == site) {
            found = i;
            break;
        }
    }
    int prediction;
    if (found >= 0) {
        bd->btb_hits++;
        PyObject *entry = PyList_GET_ITEM(ways, found);
        Py_INCREF(entry);  /* keep alive across the MRU move */
        int err = 0;
        long history = get_long_attr(entry, s_history, &err);
        long counter = 0;
        if (!err) {
            PyObject *counters = PyObject_GetAttr(entry, s_counters);
            if (counters == NULL) {
                err = 1;
            }
            else {
                counter = PyLong_AsLong(PyList_GET_ITEM(counters, history));
                Py_DECREF(counters);
                if (counter == -1 && PyErr_Occurred())
                    err = 1;
            }
        }
        if (err || (found > 0 && mru_move(ways, found) < 0)
                || entry_update(entry, history, counter, taken,
                                m->history_mask) < 0) {
            Py_DECREF(entry);
            return -1;
        }
        Py_DECREF(entry);
        prediction = counter >= 2;
    }
    else {
        bd->btb_misses++;
        prediction = m->static_backward ? backward : 0;
        if (taken) {
            PyObject *entry = PyObject_CallFunction(m->entry_class, "ll",
                                                    site, m->history_bits);
            if (entry == NULL)
                return -1;
            /* Fresh entry: history 0, counters[0] weakly taken (2). */
            if (entry_update(entry, 0, 2, taken, m->history_mask) < 0
                    || PyList_Insert(ways, 0, entry) < 0) {
                Py_DECREF(entry);
                return -1;
            }
            Py_DECREF(entry);
            Py_ssize_t size = PyList_GET_SIZE(ways);
            if (size > m->btb_assoc
                    && PyList_SetSlice(ways, size - 1, size, NULL) < 0)
                return -1;
        }
    }
    int mispredicted = prediction != (taken ? 1 : 0);
    if (mispredicted)
        bd->mispred++;
    return mispredicted;
}

/* ``ExecutionContext._pseudo_random_bit`` (Knuth multiplicative hash). */
static int
pseudo_random_bit(long visit_counter, long salt)
{
    unsigned long value =
        ((unsigned long)(visit_counter + salt) * HASH_CONSTANT) & 0xFFFFFFFFUL;
    return (int)((value >> 17) & 1UL);
}

/* ------------------------------------------------------ workspace touches */

/* ``ExecutionContext._touch_workspace``: cyclic strided 4-byte reads with
 * DTLB page-run bulking.  Requires 0 < stride < size (the Python wrapper
 * falls back otherwise); produces the same totals and microarchitectural
 * state as both the span and the per-address charging loops. */
static int
workspace_impl(Machine *m, long base, long stride, long size, long touches,
               long *cursor, Counts *dc, long *dtlb_acc, long *dtlb_miss)
{
    long remaining = touches;
    while (remaining > 0) {
        long run = (size - *cursor + stride - 1) / stride;
        if (run > remaining)
            run = remaining;
        if (data_strided_impl(m, base + *cursor, stride, run, 4, 0,
                              dc, dtlb_acc, dtlb_miss) < 0)
            return -1;
        *cursor = (*cursor + run * stride) % size;
        remaining -= run;
    }
    return 0;
}

/* ------------------------------------------------- packed constant blocks */

/* The per-call state blocks are parsed ONCE into C structs wrapped in
 * capsules (``pack_machine``/``pack_ctx``/``pack_segment``): the hot entry
 * points then run with zero per-call unpacking.  Object pointers inside the
 * structs are borrowed from objects the processor / context keep alive for
 * at least as long as they keep the capsule; the machine box additionally
 * owns its source tuple so the borrowed pointers can never dangle. */

static const char *MACHINE_CAPSULE = "repro._cachesim.machine";
static const char *CTX_CAPSULE = "repro._cachesim.ctx";
static const char *SEG_CAPSULE = "repro._cachesim.segment";

typedef struct {
    Machine m;
    PyObject *owner;  /* the source state tuple, owned */
} MachineBox;

typedef struct {
    Machine m;            /* copied out of the machine box */
    PyObject *ctx;        /* borrowed: the context owns this capsule */
    PyObject *site_state; /* borrowed: the context's _site_state dict */
    long ws_base, ws_stride, ws_size, cold_base, cold_pool, line_bytes;
    PyObject *owner;      /* the machine capsule, owned */
} CtxBox;

typedef struct {
    long kind, addr, weight;
} SiteC;

typedef struct {
    long base, hot, cold, instructions, uops, data_refs;
    long dep, fu, ild, total_stall, touches, bulk, bulk_taken, bulk_btb;
    double bulk_expected;
    Py_ssize_t n_sites;
    SiteC sites[];
} SegBox;

static void
machine_capsule_free(PyObject *capsule)
{
    MachineBox *box = PyCapsule_GetPointer(capsule, MACHINE_CAPSULE);
    if (box != NULL) {
        Py_XDECREF(box->owner);
        PyMem_Free(box);
    }
}

static void
ctx_capsule_free(PyObject *capsule)
{
    CtxBox *box = PyCapsule_GetPointer(capsule, CTX_CAPSULE);
    if (box != NULL) {
        Py_XDECREF(box->owner);
        PyMem_Free(box);
    }
}

static void
seg_capsule_free(PyObject *capsule)
{
    SegBox *box = PyCapsule_GetPointer(capsule, SEG_CAPSULE);
    PyMem_Free(box);
}

static Machine *
machine_arg(PyObject *capsule)
{
    MachineBox *box = PyCapsule_GetPointer(capsule, MACHINE_CAPSULE);
    return box == NULL ? NULL : &box->m;
}

/* pack_machine(state_tuple) -> capsule */
static PyObject *
cachesim_pack_machine(PyObject *module, PyObject *state)
{
    (void)module;
    MachineBox *box = PyMem_Malloc(sizeof(MachineBox));
    if (box == NULL)
        return PyErr_NoMemory();
    if (unpack_machine(state, &box->m) < 0) {
        PyMem_Free(box);
        return NULL;
    }
    Py_INCREF(state);
    box->owner = state;
    PyObject *capsule = PyCapsule_New(box, MACHINE_CAPSULE, machine_capsule_free);
    if (capsule == NULL) {
        Py_DECREF(state);
        PyMem_Free(box);
    }
    return capsule;
}

/* pack_ctx(ctx, machine_capsule, ws_base, ws_stride, ws_size,
 *          cold_base, cold_pool, site_state, line_bytes) -> capsule */
static PyObject *
cachesim_pack_ctx(PyObject *module, PyObject *args)
{
    (void)module;
    PyObject *ctx, *machine_capsule, *site_state;
    long ws_base, ws_stride, ws_size, cold_base, cold_pool, line_bytes;
    if (!PyArg_ParseTuple(args, "OOlllllOl", &ctx, &machine_capsule,
                          &ws_base, &ws_stride, &ws_size, &cold_base,
                          &cold_pool, &site_state, &line_bytes))
        return NULL;
    Machine *m = machine_arg(machine_capsule);
    if (m == NULL)
        return NULL;
    CtxBox *box = PyMem_Malloc(sizeof(CtxBox));
    if (box == NULL)
        return PyErr_NoMemory();
    box->m = *m;
    box->ctx = ctx;
    box->site_state = site_state;
    box->ws_base = ws_base;
    box->ws_stride = ws_stride;
    box->ws_size = ws_size;
    box->cold_base = cold_base;
    box->cold_pool = cold_pool;
    box->line_bytes = line_bytes;
    Py_INCREF(machine_capsule);
    box->owner = machine_capsule;
    PyObject *capsule = PyCapsule_New(box, CTX_CAPSULE, ctx_capsule_free);
    if (capsule == NULL) {
        Py_DECREF(machine_capsule);
        PyMem_Free(box);
    }
    return capsule;
}

/* pack_segment(handle_tuple) -> capsule; the handle is pure scalars. */
static PyObject *
cachesim_pack_segment(PyObject *module, PyObject *seg)
{
    (void)module;
    if (!PyTuple_Check(seg) || PyTuple_GET_SIZE(seg) != 16) {
        PyErr_SetString(PyExc_TypeError, "segment handle must be a 16-tuple");
        return NULL;
    }
    PyObject *sites = PyTuple_GET_ITEM(seg, 15);
    Py_ssize_t n_sites = PyTuple_GET_SIZE(sites);
    SegBox *box = PyMem_Malloc(sizeof(SegBox) + n_sites * sizeof(SiteC));
    if (box == NULL)
        return PyErr_NoMemory();
    box->base = PyLong_AsLong(PyTuple_GET_ITEM(seg, 0));
    box->hot = PyLong_AsLong(PyTuple_GET_ITEM(seg, 1));
    box->cold = PyLong_AsLong(PyTuple_GET_ITEM(seg, 2));
    box->instructions = PyLong_AsLong(PyTuple_GET_ITEM(seg, 3));
    box->uops = PyLong_AsLong(PyTuple_GET_ITEM(seg, 4));
    box->data_refs = PyLong_AsLong(PyTuple_GET_ITEM(seg, 5));
    box->dep = PyLong_AsLong(PyTuple_GET_ITEM(seg, 6));
    box->fu = PyLong_AsLong(PyTuple_GET_ITEM(seg, 7));
    box->ild = PyLong_AsLong(PyTuple_GET_ITEM(seg, 8));
    box->total_stall = PyLong_AsLong(PyTuple_GET_ITEM(seg, 9));
    box->touches = PyLong_AsLong(PyTuple_GET_ITEM(seg, 10));
    box->bulk = PyLong_AsLong(PyTuple_GET_ITEM(seg, 11));
    box->bulk_taken = PyLong_AsLong(PyTuple_GET_ITEM(seg, 12));
    box->bulk_expected = PyFloat_AsDouble(PyTuple_GET_ITEM(seg, 13));
    box->bulk_btb = PyLong_AsLong(PyTuple_GET_ITEM(seg, 14));
    box->n_sites = n_sites;
    for (Py_ssize_t i = 0; i < n_sites; i++) {
        PyObject *site = PyTuple_GET_ITEM(sites, i);
        box->sites[i].kind = PyLong_AsLong(PyTuple_GET_ITEM(site, 0));
        box->sites[i].addr = PyLong_AsLong(PyTuple_GET_ITEM(site, 1));
        box->sites[i].weight = PyLong_AsLong(PyTuple_GET_ITEM(site, 2));
    }
    if (PyErr_Occurred()) {
        PyMem_Free(box);
        return NULL;
    }
    PyObject *capsule = PyCapsule_New(box, SEG_CAPSULE, seg_capsule_free);
    if (capsule == NULL)
        PyMem_Free(box);
    return capsule;
}

/* --------------------------------------------------------- entry points */

/* charged_strided(machine, addr, stride, count, size, write)
 * -- ``SimulatedProcessor.data_read_strided`` / ``data_write_strided``
 * (and their scalar ``data_read``/``data_write`` special case) including
 * DTLB, caches and event counters; returns the L1D miss count. */
static PyObject *
cachesim_charged_strided(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    (void)module;
    if (nargs != 6) {
        PyErr_SetString(PyExc_TypeError, "charged_strided takes 6 arguments");
        return NULL;
    }
    Machine *m = machine_arg(args[0]);
    long addr = PyLong_AsLong(args[1]);
    long stride = PyLong_AsLong(args[2]);
    long count = PyLong_AsLong(args[3]);
    long size = PyLong_AsLong(args[4]);
    long write = PyLong_AsLong(args[5]);
    if (m == NULL || PyErr_Occurred())
        return NULL;
    if (count <= 0)
        return PyLong_FromLong(0);
    Counts dc = {0, 0, 0, 0, 0, 0, 0, 0};
    long dtlb_acc = 0, dtlb_miss = 0;
    if (data_strided_impl(m, addr, stride, count, size, write ? 1 : 0,
                          &dc, &dtlb_acc, &dtlb_miss) < 0)
        return NULL;
    if (fold_data(m, &dc, count, dtlb_acc, dtlb_miss, write ? 1 : 0) < 0)
        return NULL;
    return PyLong_FromLong(dc.misses);
}

/* fetch_run(machine, line_addr, count) -- ``fetch_code_run`` including the
 * ITLB, front-end stall accumulation and counters; returns L1I misses. */
static PyObject *
cachesim_fetch_run(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    (void)module;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "fetch_run takes 3 arguments");
        return NULL;
    }
    Machine *m = machine_arg(args[0]);
    long line_addr = PyLong_AsLong(args[1]);
    long count = PyLong_AsLong(args[2]);
    if (m == NULL || PyErr_Occurred())
        return NULL;
    if (count <= 0)
        return PyLong_FromLong(0);
    int err = 0;
    double stall = get_double_attr(m->processor, s_l1i_stall, &err);
    long last_page = err ? 0 : get_long_attr(m->processor, s_last_page, &err);
    if (err)
        return NULL;
    Counts ic = {0, 0, 0, 0, 0, 0, 0, 0};
    long itlb_acc = 0, itlb_miss = 0;
    if (fetch_run_impl(m, line_addr, count, &ic, &itlb_acc, &itlb_miss,
                       &last_page, &stall) < 0)
        return NULL;
    if (set_long_attr(m->processor, s_last_page, last_page) < 0
            || set_double_attr(m->processor, s_l1i_stall, stall) < 0
            || fold_fetch(m, &ic, itlb_acc, itlb_miss) < 0)
        return NULL;
    return PyLong_FromLong(ic.misses);
}

/* conjunct(machine, address, outcomes) -- the per-row branch loop of
 * ``visit_conjunct_batch``; returns (taken, mispredictions, btb_misses). */
static PyObject *
cachesim_conjunct(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    (void)module;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "conjunct takes 3 arguments");
        return NULL;
    }
    Machine *m = machine_arg(args[0]);
    long address = PyLong_AsLong(args[1]);
    PyObject *outcomes = args[2];
    if (m == NULL || PyErr_Occurred())
        return NULL;
    PyObject *seq = PySequence_Fast(outcomes, "outcomes must be a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t count = PySequence_Fast_GET_SIZE(seq);
    BranchDeltas bd = {0, 0, 0, 0, 0};
    long taken_count = 0, mispredictions = 0;
    for (Py_ssize_t i = 0; i < count; i++) {
        int taken = PyObject_IsTrue(PySequence_Fast_GET_ITEM(seq, i));
        if (taken < 0) {
            Py_DECREF(seq);
            return NULL;
        }
        int mispredicted = branch_exec(m, address, taken, 0, &bd);
        if (mispredicted < 0) {
            Py_DECREF(seq);
            return NULL;
        }
        taken_count += taken;
        mispredictions += mispredicted;
    }
    Py_DECREF(seq);
    if (fold_branch(m->branch_obj, &bd) < 0)
        return NULL;
    return Py_BuildValue("(lll)", taken_count, mispredictions, bd.btb_misses);
}

/* visit(ctx_capsule, segment_capsule, data_taken) -- one full
 * ``ExecutionContext._visit_segment``: hot + cold instruction fetch,
 * fused routine counters, workspace touches, branch sites, bulk branches.
 * Site kinds: 0 loop, 1 data, 2 alternating, 3 rare, 4 cold.
 * data_taken: -1 none / 0 false / 1 true. */
static PyObject *
cachesim_visit(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    (void)module;
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "visit takes 3 arguments");
        return NULL;
    }
    CtxBox *cb = PyCapsule_GetPointer(args[0], CTX_CAPSULE);
    if (cb == NULL)
        return NULL;
    SegBox *sb = PyCapsule_GetPointer(args[1], SEG_CAPSULE);
    if (sb == NULL)
        return NULL;
    long data_taken = PyLong_AsLong(args[2]);
    if (data_taken == -1 && PyErr_Occurred())
        return NULL;
    Machine *m = &cb->m;
    PyObject *ctx = cb->ctx;
    PyObject *site_state = cb->site_state;
    long ws_base = cb->ws_base, ws_stride = cb->ws_stride;
    long ws_size = cb->ws_size;
    long cold_base = cb->cold_base, cold_pool = cb->cold_pool;
    long line_bytes = cb->line_bytes;
    long base = sb->base, hot_count = sb->hot, cold_count = sb->cold;
    long instructions = sb->instructions, uops = sb->uops;
    long data_refs = sb->data_refs;
    long dep = sb->dep, fu = sb->fu, ild = sb->ild;
    long total_stall = sb->total_stall, touches = sb->touches;
    long bulk = sb->bulk, bulk_taken = sb->bulk_taken, bulk_btb = sb->bulk_btb;
    double bulk_expected = sb->bulk_expected;

    int err = 0;
    long visit_counter = get_long_attr(ctx, s_visit_counter, &err) + 1;
    if (err)
        return NULL;

    /* Instruction side: hot lines, then the cold-code slice. */
    double stall = get_double_attr(m->processor, s_l1i_stall, &err);
    long last_page = err ? 0 : get_long_attr(m->processor, s_last_page, &err);
    if (err)
        return NULL;
    Counts ic = {0, 0, 0, 0, 0, 0, 0, 0};
    long itlb_acc = 0, itlb_miss = 0;
    if (fetch_run_impl(m, base, hot_count, &ic, &itlb_acc, &itlb_miss,
                       &last_page, &stall) < 0)
        return NULL;
    if (cold_count) {
        long cursor = get_long_attr(ctx, s_cold_cursor, &err);
        if (err)
            return NULL;
        long run = cold_pool - cursor;
        if (cold_count <= run) {
            if (fetch_run_impl(m, cold_base + cursor * line_bytes, cold_count,
                               &ic, &itlb_acc, &itlb_miss, &last_page,
                               &stall) < 0)
                return NULL;
        }
        else {
            if (fetch_run_impl(m, cold_base + cursor * line_bytes, run,
                               &ic, &itlb_acc, &itlb_miss, &last_page,
                               &stall) < 0
                    || fetch_run_impl(m, cold_base, cold_count - run,
                                      &ic, &itlb_acc, &itlb_miss, &last_page,
                                      &stall) < 0)
                return NULL;
        }
        if (set_long_attr(ctx, s_cold_cursor,
                          (cursor + cold_count) % cold_pool) < 0)
            return NULL;
    }
    if (set_long_attr(m->processor, s_last_page, last_page) < 0
            || set_double_attr(m->processor, s_l1i_stall, stall) < 0
            || fold_fetch(m, &ic, itlb_acc, itlb_miss) < 0)
        return NULL;

    /* Fused retirement / bulk-reference / resource-stall counters
     * (``charge_routine`` without the OS hook: the Python wrapper only
     * takes this path when no OS-interference model is attached). */
    if (dict_add(m->user, k_INST_RETIRED, instructions) < 0
            || dict_add(m->user, k_INST_DECODED, instructions) < 0
            || dict_add(m->user, k_UOPS_RETIRED, uops) < 0
            || dict_add(m->user, k_DATA_MEM_REFS, data_refs) < 0
            || dict_add(m->user, k_PARTIAL_RAT_STALLS, dep) < 0
            || dict_add(m->user, k_FU_CONTENTION_STALLS, fu) < 0
            || dict_add(m->user, k_ILD_STALL, ild) < 0
            || dict_add(m->user, k_RESOURCE_STALLS, total_stall) < 0)
        return NULL;

    /* Private working-set touches. */
    if (touches > 0) {
        long cursor = get_long_attr(ctx, s_workspace_cursor, &err);
        if (err)
            return NULL;
        Counts dc = {0, 0, 0, 0, 0, 0, 0, 0};
        long dtlb_acc = 0, dtlb_miss = 0;
        if (workspace_impl(m, ws_base, ws_stride, ws_size, touches, &cursor,
                           &dc, &dtlb_acc, &dtlb_miss) < 0)
            return NULL;
        if (set_long_attr(ctx, s_workspace_cursor, cursor) < 0
                || fold_data(m, &dc, touches, dtlb_acc, dtlb_miss, 0) < 0)
            return NULL;
    }

    /* Branch sites. */
    Py_ssize_t n_sites = sb->n_sites;
    if (n_sites) {
        BranchDeltas bd = {0, 0, 0, 0, 0};
        long weight_branches = 0, weight_taken = 0, weight_mispred = 0;
        for (Py_ssize_t i = 0; i < n_sites; i++) {
            long kind = sb->sites[i].kind;
            long site_addr = sb->sites[i].addr;
            long weight = sb->sites[i].weight;
            int taken;
            long exec_addr = site_addr;
            if (kind == 0) {  /* loop: always taken */
                taken = 1;
            }
            else if (kind == 1) {  /* data-dependent */
                taken = data_taken < 0 ? pseudo_random_bit(visit_counter,
                                                           site_addr)
                                       : (data_taken ? 1 : 0);
            }
            else if (kind == 2 || kind == 3) {  /* alternating / rare */
                PyObject *key = PyLong_FromLong(site_addr);
                if (key == NULL)
                    return NULL;
                PyObject *cur = PyDict_GetItemWithError(site_state, key);
                if (cur == NULL && PyErr_Occurred()) {
                    Py_DECREF(key);
                    return NULL;
                }
                long state_value = cur == NULL ? 0 : PyLong_AsLong(cur);
                state_value = kind == 2 ? (state_value ^ 1) : state_value + 1;
                PyObject *obj = PyLong_FromLong(state_value);
                int rc = obj == NULL ? -1
                                     : PyDict_SetItem(site_state, key, obj);
                Py_XDECREF(obj);
                Py_DECREF(key);
                if (rc < 0)
                    return NULL;
                taken = kind == 2 ? (state_value != 0)
                                  : (state_value % 64 == 0);
            }
            else {  /* cold: the site address varies per visit */
                long offset = (long)(((unsigned long)visit_counter
                                      * HASH_CONSTANT) & 0x1FFFUL);
                exec_addr = site_addr + 64 + (offset & ~0x3FL);
                taken = pseudo_random_bit(visit_counter, exec_addr);
            }
            int mispredicted = branch_exec(m, exec_addr, taken,
                                           kind == 0, &bd);
            if (mispredicted < 0)
                return NULL;
            weight_branches += weight;
            if (taken)
                weight_taken += weight;
            if (mispredicted)
                weight_mispred += weight;
        }
        if (weight_branches > 0) {
            if (dict_add(m->user, k_BR_INST_RETIRED, weight_branches) < 0
                    || dict_add(m->user, k_BR_TAKEN_RETIRED, weight_taken) < 0
                    || dict_add(m->user, k_BR_MISS_PRED_RETIRED,
                                weight_mispred) < 0
                    || dict_add(m->user, k_BTB_MISSES, bd.btb_misses) < 0)
                return NULL;
        }
        if (fold_branch(m->branch_obj, &bd) < 0)
            return NULL;
    }

    /* Bulk branch population (counters only; the predictor is untouched). */
    if (bulk > 0) {
        double carry = get_double_attr(ctx, s_bulk_carry, &err);
        if (err)
            return NULL;
        double expected = bulk_expected + carry;
        long bulk_mispred = (long)expected;  /* int(): truncation */
        if (set_double_attr(ctx, s_bulk_carry,
                            expected - (double)bulk_mispred) < 0)
            return NULL;
        if (dict_add(m->user, k_BR_INST_RETIRED, bulk) < 0
                || dict_add(m->user, k_BR_TAKEN_RETIRED, bulk_taken) < 0
                || dict_add(m->user, k_BR_MISS_PRED_RETIRED, bulk_mispred) < 0
                || dict_add(m->user, k_BTB_MISSES, bulk_btb) < 0)
            return NULL;
    }

    if (set_long_attr(ctx, s_visit_counter, visit_counter) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* workspace(ctx_state, touches) -- ``_touch_workspace`` alone (the
 * vectorized loop-body churn of ``visit_batch``). */
static PyObject *
cachesim_workspace(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    (void)module;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "workspace takes 2 arguments");
        return NULL;
    }
    CtxBox *cb = PyCapsule_GetPointer(args[0], CTX_CAPSULE);
    if (cb == NULL)
        return NULL;
    long touches = PyLong_AsLong(args[1]);
    if (touches == -1 && PyErr_Occurred())
        return NULL;
    if (touches <= 0)
        Py_RETURN_NONE;
    Machine *m = &cb->m;
    int err = 0;
    long cursor = get_long_attr(cb->ctx, s_workspace_cursor, &err);
    if (err)
        return NULL;
    Counts dc = {0, 0, 0, 0, 0, 0, 0, 0};
    long dtlb_acc = 0, dtlb_miss = 0;
    if (workspace_impl(m, cb->ws_base, cb->ws_stride, cb->ws_size, touches,
                       &cursor, &dc, &dtlb_acc, &dtlb_miss) < 0)
        return NULL;
    if (set_long_attr(cb->ctx, s_workspace_cursor, cursor) < 0
            || fold_data(m, &dc, touches, dtlb_acc, dtlb_miss, 0) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef cachesim_methods[] = {
    {"strided", cachesim_strided, METH_VARARGS,
     "Bulk strided access; returns counter deltas."},
    {"lines", cachesim_lines, METH_VARARGS,
     "Bulk line-run access; returns counter deltas."},
    {"pack_machine", cachesim_pack_machine, METH_O,
     "Parse a processor state tuple into a reusable capsule."},
    {"pack_ctx", cachesim_pack_ctx, METH_VARARGS,
     "Parse execution-context constants into a reusable capsule."},
    {"pack_segment", cachesim_pack_segment, METH_O,
     "Parse a code-segment handle tuple into a reusable capsule."},
    {"charged_strided", (PyCFunction)(void (*)(void))cachesim_charged_strided,
     METH_FASTCALL,
     "Charged strided data access (DTLB + caches + counters); returns misses."},
    {"fetch_run", (PyCFunction)(void (*)(void))cachesim_fetch_run,
     METH_FASTCALL,
     "Charged instruction-line run fetch (ITLB + L1I + counters); returns misses."},
    {"conjunct", (PyCFunction)(void (*)(void))cachesim_conjunct, METH_FASTCALL,
     "Per-row conjunct branch loop; returns (taken, mispredictions, btb_misses)."},
    {"visit", (PyCFunction)(void (*)(void))cachesim_visit, METH_FASTCALL,
     "One full executor-routine visit (fetch, counters, workspace, branches)."},
    {"workspace", (PyCFunction)(void (*)(void))cachesim_workspace, METH_FASTCALL,
     "Charged cyclic workspace touches (DTLB + caches + counters)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef cachesim_module = {
    PyModuleDef_HEAD_INIT, "_cachesim",
    "Native fast paths for the cache automaton and the charging loops.",
    -1, cachesim_methods, NULL, NULL, NULL, NULL,
};

static int
init_interned(void)
{
#define INTERN(var, text)                                  \
    do {                                                   \
        (var) = PyUnicode_InternFromString(text);          \
        if ((var) == NULL)                                 \
            return -1;                                     \
    } while (0)
    INTERN(s_stats, "stats");
    INTERN(s_accesses, "accesses");
    INTERN(s_misses, "misses");
    INTERN(s_writebacks, "writebacks");
    INTERN(s_branches, "branches");
    INTERN(s_taken, "taken");
    INTERN(s_mispredictions, "mispredictions");
    INTERN(s_btb_hits, "btb_hits");
    INTERN(s_btb_misses, "btb_misses");
    INTERN(s_tag, "tag");
    INTERN(s_history, "history");
    INTERN(s_counters, "counters");
    INTERN(s_move_to_end, "move_to_end");
    INTERN(s_popitem, "popitem");
    INTERN(s_visit_counter, "_visit_counter");
    INTERN(s_cold_cursor, "_cold_cursor");
    INTERN(s_workspace_cursor, "_workspace_cursor");
    INTERN(s_bulk_carry, "_bulk_mispred_carry");
    INTERN(s_l1i_stall, "_l1i_stall_cycles");
    INTERN(s_last_page, "_last_instruction_page");
    INTERN(k_IFU_IFETCH, "IFU_IFETCH");
    INTERN(k_IFU_IFETCH_MISS, "IFU_IFETCH_MISS");
    INTERN(k_L2_IFETCH, "L2_IFETCH");
    INTERN(k_L2_IFETCH_MISS, "L2_IFETCH_MISS");
    INTERN(k_ITLB_MISS, "ITLB_MISS");
    INTERN(k_INST_RETIRED, "INST_RETIRED");
    INTERN(k_INST_DECODED, "INST_DECODED");
    INTERN(k_UOPS_RETIRED, "UOPS_RETIRED");
    INTERN(k_DATA_MEM_REFS, "DATA_MEM_REFS");
    INTERN(k_PARTIAL_RAT_STALLS, "PARTIAL_RAT_STALLS");
    INTERN(k_FU_CONTENTION_STALLS, "FU_CONTENTION_STALLS");
    INTERN(k_ILD_STALL, "ILD_STALL");
    INTERN(k_RESOURCE_STALLS, "RESOURCE_STALLS");
    INTERN(k_DTLB_MISS, "DTLB_MISS");
    INTERN(k_DCU_LINES_IN, "DCU_LINES_IN");
    INTERN(k_L2_DATA_RQSTS, "L2_DATA_RQSTS");
    INTERN(k_L2_DATA_MISS, "L2_DATA_MISS");
    INTERN(k_BR_INST_RETIRED, "BR_INST_RETIRED");
    INTERN(k_BR_TAKEN_RETIRED, "BR_TAKEN_RETIRED");
    INTERN(k_BR_MISS_PRED_RETIRED, "BR_MISS_PRED_RETIRED");
    INTERN(k_BTB_MISSES, "BTB_MISSES");
#undef INTERN
    return 0;
}

PyMODINIT_FUNC
PyInit__cachesim(void)
{
    PyObject *module = PyModule_Create(&cachesim_module);
    if (module == NULL)
        return NULL;
    if (init_interned() < 0
            || PyModule_AddStringConstant(module, "source_hash",
                                          CACHESIM_SOURCE_HASH) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
