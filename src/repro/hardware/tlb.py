"""Translation lookaside buffer models.

The paper tracks two TLB-related stall components (Table 3.1):

* ``TITLB`` -- instruction TLB misses, charged at 32 cycles each (Table 4.2).
  The measured values are tiny because the DBMSs use few instruction pages.
* ``TDTLB`` -- data TLB misses.  The authors could not measure this component
  ("the event code is not available"), so the breakdown layer mirrors that by
  excluding it from ``TM`` by default while the simulator still tracks it for
  completeness.

Both TLBs are modelled as LRU-replacement page caches; the ITLB is fully
associative (32 entries) and the DTLB has 64 entries, matching the Pentium II.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .specs import TLBSpec


@dataclass
class TLBStats:
    """Hit/miss statistics for one TLB."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "TLBStats") -> "TLBStats":
        """Commutatively fold ``other``'s counts into this instance (sums
        only, so merge order cannot matter).  Returns ``self``."""
        self.accesses += other.accesses
        self.misses += other.misses
        return self

    def as_dict(self) -> dict:
        return {"accesses": self.accesses, "misses": self.misses, "miss_rate": self.miss_rate}


class TLB:
    """A fully-associative (or pseudo-LRU set-free) TLB.

    The Pentium II's TLBs are small enough that full associativity with true
    LRU is an accurate and cheap model; an :class:`collections.OrderedDict`
    provides O(1) LRU maintenance.
    """

    __slots__ = ("spec", "_page_shift", "_entries", "stats")

    def __init__(self, spec: TLBSpec) -> None:
        self.spec = spec
        self._page_shift = spec.page_bytes.bit_length() - 1
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.stats = TLBStats()

    def page_number(self, addr: int) -> int:
        return addr >> self._page_shift

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns 1 on a TLB miss, 0 on a hit."""
        page = addr >> self._page_shift
        entries = self._entries
        self.stats.accesses += 1
        if page in entries:
            entries.move_to_end(page)
            return 0
        self.stats.misses += 1
        entries[page] = None
        if len(entries) > self.spec.entries:
            entries.popitem(last=False)
        return 1

    def access_bulk(self, addr: int, count: int) -> int:
        """Translate ``count`` same-page accesses starting at ``addr`` in bulk.

        The span-charging fast path issues one call per page a vector touches
        instead of one per element.  The statistics and the LRU state end up
        exactly as if :meth:`access` had been called ``count`` times with
        addresses inside the page: ``count`` accesses, at most one miss, and
        the page left in the MRU position.
        """
        if count <= 0:
            return 0
        page = addr >> self._page_shift
        entries = self._entries
        self.stats.accesses += count
        if page in entries:
            entries.move_to_end(page)
            return 0
        self.stats.misses += 1
        entries[page] = None
        if len(entries) > self.spec.entries:
            entries.popitem(last=False)
        return 1

    def contains(self, addr: int) -> bool:
        return (addr >> self._page_shift) in self._entries

    def resident_pages(self) -> int:
        return len(self._entries)

    def flush(self) -> int:
        """Drop every translation (e.g. on a simulated context switch)."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def reset_stats(self) -> None:
        self.stats = TLBStats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TLB({self.spec.name}, {self.spec.entries} entries, {self.spec.page_bytes}B pages)"
