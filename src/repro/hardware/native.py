"""Build-on-demand loader for the native cache-automaton fast path.

``repro.hardware.cache`` asks this module for the compiled ``_cachesim``
extension (see ``_cachesim.c``).  The contract mirrors the repo's other
fast paths: the native module is *optional* -- when a C toolchain or the
Python headers are missing, or ``REPRO_NATIVE=0`` is set, every caller
falls back to the pure-Python automaton, which remains the oracle the
differential tests compare against.

The extension is compiled lazily, once, with the interpreter's own
headers.  The build is keyed by a hash of the C source: editing
``_cachesim.c`` invalidates previously built artifacts, so a stale ``.so``
can never masquerade as the current automaton.  Build products land next
to the source when the checkout is writable (the common dev case) or in a
per-source-hash temp directory otherwise; both locations are tried for
loading.  Any failure at any stage degrades silently to ``None``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import subprocess
import sys
import sysconfig
import tempfile
from typing import Optional

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_cachesim.c")


def _source_hash() -> str:
    with open(_SOURCE, "rb") as handle:
        return hashlib.sha1(handle.read()).hexdigest()[:16]


def _load_from(path: str, expected_hash: str) -> Optional[object]:
    if not os.path.exists(path):
        return None
    try:
        spec = importlib.util.spec_from_file_location("repro.hardware._cachesim", path)
        if spec is None or spec.loader is None:
            return None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    except Exception:
        return None
    if getattr(module, "source_hash", "") != expected_hash:
        return None
    return module


def _compile_into(directory: str, expected_hash: str) -> Optional[str]:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = os.path.join(directory, f"_cachesim{suffix}")
    include = sysconfig.get_paths()["include"]
    compiler = os.environ.get("CC", "cc")
    scratch = target + f".build-{os.getpid()}"
    command = [compiler, "-O2", "-fPIC", "-shared",
               f"-DCACHESIM_SOURCE_HASH=\"{expected_hash}\"",
               f"-I{include}", _SOURCE, "-o", scratch]
    try:
        os.makedirs(directory, exist_ok=True)
        subprocess.run(command, check=True, capture_output=True, timeout=120)
        os.replace(scratch, target)  # atomic: concurrent builders race safely
    except Exception:
        try:
            os.remove(scratch)
        except OSError:
            pass
        return None
    return target


def load_native() -> Optional[object]:
    """Return the compiled ``_cachesim`` module, building it if needed."""
    if os.environ.get("REPRO_NATIVE", "1").lower() in ("0", "off", "no", "false"):
        return None
    try:
        expected = _source_hash()
    except OSError:
        return None
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    package_dir = os.path.dirname(_SOURCE)
    temp_dir = os.path.join(
        tempfile.gettempdir(),
        f"repro-cachesim-{expected}-py{sys.version_info[0]}{sys.version_info[1]}")
    for directory in (package_dir, temp_dir):
        module = _load_from(os.path.join(directory, f"_cachesim{suffix}"), expected)
        if module is not None:
            return module
    for directory in (package_dir, temp_dir):
        built = _compile_into(directory, expected)
        if built is not None:
            module = _load_from(built, expected)
            if module is not None:
                return module
    return None
