"""Operating-system interference model.

Section 5.2.2 of the paper observes that increasing the record size increases
not only the L2 data misses (expected) but also the *L1 instruction* misses,
and offers three candidate explanations.  The one modelled here is the
NT-interference hypothesis: the operating system interrupts the processor
periodically for context switching, each interrupt replaces part of the L1
I-cache contents with operating-system code, and the DBMS has to re-fetch its
instructions when it resumes.  Larger records mean more execution time per
record, hence more interrupts per record, hence more instruction misses per
record.

The model is deliberately simple: every ``interval_instructions`` retired
user-mode instructions, an interrupt fires which

* evicts ``l1i_flush_fraction`` of the resident L1 I-cache lines,
* flushes the ITLB (kernel entry/exit reloads translations),
* retires ``kernel_instructions`` instructions in supervisor mode, and
* charges ``kernel_cycles`` supervisor-mode cycles.

The second candidate explanation -- page-boundary crossings executing buffer
pool management code -- is modelled directly by the executor (the per-page
code path is longer than the per-record code path), so both hypotheses can be
explored with the record-size sweep experiment.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OSInterferenceConfig:
    """Parameters of the periodic-interrupt model.

    ``interval_instructions`` defaults to 100k retired instructions which, at
    a CPI of ~1.5 on a 400 MHz part, corresponds to a few thousand interrupts
    per second -- the right order of magnitude for NT 4.0's timer tick plus
    background activity without dominating the measurement.
    """

    enabled: bool = True
    interval_instructions: int = 100_000
    l1i_flush_fraction: float = 0.5
    flush_itlb: bool = True
    kernel_instructions: int = 2_000
    kernel_cycles: int = 4_000


class OSInterference:
    """Stateful periodic-interrupt generator attached to a processor."""

    __slots__ = ("config", "_since_last", "interrupts")

    def __init__(self, config: OSInterferenceConfig | None = None) -> None:
        self.config = config or OSInterferenceConfig()
        self._since_last = 0
        self.interrupts = 0

    def note_instructions(self, count: int) -> int:
        """Account ``count`` retired user instructions.

        Returns the number of interrupts that should fire now (usually 0 or
        1; can be larger if a single bulk retirement spans several intervals).
        """
        if not self.config.enabled or count <= 0:
            return 0
        self._since_last += count
        interval = self.config.interval_instructions
        fired = self._since_last // interval
        if fired:
            self._since_last -= fired * interval
            self.interrupts += fired
        return int(fired)

    def reset(self) -> None:
        self._since_last = 0
        self.interrupts = 0
