"""The simulated processor.

:class:`SimulatedProcessor` is the meeting point of the hardware substrate:
it owns the cache hierarchy, the TLBs, the branch predictor, the main-memory
model, the OS-interference model and the hardware event counters, and it
exposes the narrow method API the execution engine drives while processing
records:

* :meth:`fetch_code` -- instruction-cache line fetches for a code path,
* :meth:`retire` -- retired instruction / micro-operation accounting,
* :meth:`data_read` / :meth:`data_write` -- simulated loads and stores,
* :meth:`data_read_strided` / :meth:`data_read_span` -- bulk element loads
  (the span-charging fast path for columnar batches: count-identical to
  per-address :meth:`data_read` calls, several times cheaper to simulate),
* :meth:`count_data_refs` -- bulk accounting for references that stay in L1D,
* :meth:`branch` / :meth:`count_branches` -- dynamic branch sites and the bulk
  branch population they represent,
* :meth:`add_resource_stalls` -- dependency / functional-unit / decoder stall
  cycles charged by the execution cost model,
* :meth:`record_done` -- record boundaries (per-record metrics, OS interrupt
  pacing).

Calling :meth:`finalize` assembles the ground-truth cycle count
(``CPU_CLK_UNHALTED``) from the accumulated events using the
:class:`~repro.hardware.pipeline.CycleModel` and returns an immutable counter
snapshot that the measurement (emon) and analysis layers consume.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .branch import BranchPredictor, _BTBEntry
from .cache import CacheHierarchy, _NATIVE
from .counters import EventCounters, MODE_SUP, MODE_USER, MODES
from .memory import MainMemory
from .os_interference import OSInterference, OSInterferenceConfig
from .pipeline import CycleBreakdown, CycleModel, OverlapModel
from .specs import PENTIUM_II_XEON, ProcessorSpec
from .tlb import TLB


class SimulatedProcessor:
    """Trace-driven model of the paper's Pentium II Xeon platform."""

    def __init__(self,
                 spec: ProcessorSpec = PENTIUM_II_XEON,
                 os_interference: Optional[OSInterferenceConfig] = None,
                 overlap: Optional[OverlapModel] = None) -> None:
        self.spec = spec
        self.caches = CacheHierarchy(spec.l1d, spec.l1i, spec.l2)
        self.dtlb = TLB(spec.dtlb)
        self.itlb = TLB(spec.itlb)
        self.branch_unit = BranchPredictor(spec.branch)
        self.memory = MainMemory(spec.memory, line_bytes=spec.l2.line_bytes)
        self.os = OSInterference(os_interference) if os_interference else None
        self.cycle_model = CycleModel(spec, overlap)
        self.counters = EventCounters()

        self._l1i_stall_cycles = 0.0
        self._last_instruction_page = -1
        self._finalized = False

        #: Constant block handed to the native charging fast paths
        #: (``_cachesim.c``), pre-parsed into a C capsule so the per-call
        #: cost is zero: the live microarchitectural state objects plus the
        #: scalar geometry the C code needs to drive them.  Only *stable*
        #: objects go in -- the per-component ``stats`` objects rebind on
        #: ``reset_stats`` and are re-fetched through ``getattr`` on every
        #: native call.  ``None`` (native module unavailable, or forced by a
        #: differential test) keeps every charge on the pure-Python oracle
        #: paths; the native paths are count- and state-identical by contract
        #: (asserted by tests/test_native_charging.py).
        self._native_state = (_NATIVE.pack_machine(self._build_native_state())
                              if _NATIVE is not None else None)

    def _build_native_state(self):
        caches = self.caches
        l1d, l1i, l2 = caches.l1d, caches.l1i, caches.l2
        dtlb, itlb = self.dtlb, self.itlb
        branch_unit = self.branch_unit
        spec = self.spec
        return (
            l1d, l1i, l2,
            l1d._nargs, l1i._nargs, l2._nargs,
            l1d._line_shift, l1i._line_shift,
            dtlb, itlb, dtlb._entries, itlb._entries,
            dtlb._page_shift, itlb._page_shift,
            dtlb.spec.entries, itlb.spec.entries,
            branch_unit, branch_unit._sets,
            branch_unit._set_mask, branch_unit._history_mask,
            1 if branch_unit.spec.static_backward_taken else 0,
            branch_unit.spec.history_bits, branch_unit.spec.btb_associativity,
            _BTBEntry,
            float(spec.pipeline.l1i_fetch_stall_cycles),
            float(spec.memory.latency_cycles),
            self.counters.user,
            self,
        )

    # ------------------------------------------------------------ code side
    def fetch_code(self, line_addresses: Sequence[int]) -> int:
        """Fetch the given instruction-cache lines; returns L1I miss count.

        The ITLB is consulted whenever the fetch stream moves to a different
        page.  Per-miss front-end stall cycles accumulate into the
        ``IFU_MEM_STALL`` counter ("actual stall time" in Table 4.2): an L1I
        miss satisfied by the L2 costs :attr:`PipelineSpec.
        l1i_fetch_stall_cycles`, and one that also misses the L2 additionally
        pays the full memory latency.
        """
        caches = self.caches
        counters = self.counters
        itlb = self.itlb
        page_shift = itlb._page_shift
        last_page = self._last_instruction_page
        itlb_misses = 0
        l2 = caches.l2
        l2i_misses_before = l2.stats.misses[2]

        # The ITLB is consulted only when the fetch stream changes page; the
        # line fetches themselves go to the L1I in one bulk call (the
        # instruction side of the span-charging fast path -- count-identical
        # to fetching line by line).
        for line_addr in line_addresses:
            page = line_addr >> page_shift
            if page != last_page:
                itlb_misses += itlb.access(line_addr)
                last_page = page
        self._last_instruction_page = last_page
        l1i_misses = caches.fetch_lines(line_addresses)

        l2i_misses = l2.stats.misses[2] - l2i_misses_before
        n_lines = len(line_addresses)
        # Counter-bank updates are inlined (bypassing EventCounters.add's
        # per-call validation) on the simulator's hottest paths.
        user = counters.user
        user["IFU_IFETCH"] = user.get("IFU_IFETCH", 0) + n_lines
        if l1i_misses:
            user["IFU_IFETCH_MISS"] = user.get("IFU_IFETCH_MISS", 0) + l1i_misses
            user["L2_IFETCH"] = user.get("L2_IFETCH", 0) + l1i_misses
            stall = (l1i_misses * self.spec.pipeline.l1i_fetch_stall_cycles
                     + l2i_misses * self.spec.memory.latency_cycles)
            self._l1i_stall_cycles += stall
        if l2i_misses:
            user["L2_IFETCH_MISS"] = user.get("L2_IFETCH_MISS", 0) + l2i_misses
        if itlb_misses:
            user["ITLB_MISS"] = user.get("ITLB_MISS", 0) + itlb_misses
        return l1i_misses

    def fetch_code_run(self, line_addr: int, count: int) -> int:
        """Fetch ``count`` *consecutive* instruction lines starting at the
        line-aligned ``line_addr``; returns the L1I miss count.

        Code segments are contiguous by construction (hot code is one run,
        cold code rotates through a contiguous pool), so this is the shape
        of every executor code fetch.  Count-identical to
        :meth:`fetch_code` over the expanded line tuple -- the ITLB is
        consulted once per page *transition* (at the first line of each new
        page) and the L1I once per line -- but the ITLB work collapses to
        O(pages) and no line tuple is materialised (the cache iterates a
        ``range``).
        """
        if count <= 0:
            return 0
        if self._native_state is not None:
            # Native fast path: ITLB page transitions, L1I line touches,
            # stall accumulation and counter folds in one C call --
            # count- and state-identical to the loop below.
            return _NATIVE.fetch_run(self._native_state, line_addr, count)
        caches = self.caches
        counters = self.counters
        itlb = self.itlb
        page_shift = itlb._page_shift
        line_bytes = caches.l1i.spec.line_bytes
        last_page = self._last_instruction_page
        itlb_misses = 0
        first_page = line_addr >> page_shift
        last_line = line_addr + (count - 1) * line_bytes
        # One ITLB consultation per page the run moves onto, issued at the
        # address of the first line inside that page (exactly what the
        # per-line loop of :meth:`fetch_code` does for an ascending run).
        if first_page != last_page:
            itlb_misses += itlb.access(line_addr)
        for page in range(first_page + 1, (last_line >> page_shift) + 1):
            itlb_misses += itlb.access(page << page_shift)
        self._last_instruction_page = last_line >> page_shift

        l2 = caches.l2
        l2i_misses_before = l2.stats.misses[2]
        l1i_misses = caches.fetch_lines(
            range(line_addr, line_addr + count * line_bytes, line_bytes))

        l2i_misses = l2.stats.misses[2] - l2i_misses_before
        user = counters.user
        user["IFU_IFETCH"] = user.get("IFU_IFETCH", 0) + count
        if l1i_misses:
            user["IFU_IFETCH_MISS"] = user.get("IFU_IFETCH_MISS", 0) + l1i_misses
            user["L2_IFETCH"] = user.get("L2_IFETCH", 0) + l1i_misses
            stall = (l1i_misses * self.spec.pipeline.l1i_fetch_stall_cycles
                     + l2i_misses * self.spec.memory.latency_cycles)
            self._l1i_stall_cycles += stall
        if l2i_misses:
            user["L2_IFETCH_MISS"] = user.get("L2_IFETCH_MISS", 0) + l2i_misses
        if itlb_misses:
            user["ITLB_MISS"] = user.get("ITLB_MISS", 0) + itlb_misses
        return l1i_misses

    def retire(self, instructions: int, uops: int = 0, mode: str = MODE_USER) -> None:
        """Retire ``instructions`` x86 instructions (``uops`` micro-operations).

        When ``uops`` is zero the spec's average expansion factor is applied.
        Retired user instructions also advance the OS-interference clock.
        """
        if instructions <= 0 and uops <= 0:
            return
        if uops <= 0:
            uops = int(round(instructions * self.spec.pipeline.uops_per_instruction))
        counters = self.counters
        if mode == MODE_USER:
            bank = counters.user
        elif mode == MODE_SUP:
            bank = counters.sup
        else:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        bank["INST_RETIRED"] = bank.get("INST_RETIRED", 0) + instructions
        bank["INST_DECODED"] = bank.get("INST_DECODED", 0) + instructions
        bank["UOPS_RETIRED"] = bank.get("UOPS_RETIRED", 0) + uops
        if self.os is not None and mode == MODE_USER:
            fired = self.os.note_instructions(instructions)
            if fired:
                self._service_interrupts(fired)

    def charge_routine(self, instructions: int, uops: int, data_refs: int,
                       dep_stall: int, fu_stall: int, ild_stall: int,
                       total_stall: int) -> None:
        """Fused per-visit charge: retirement, L1D-hit references and
        (pre-rounded) resource stalls in one counter pass.

        Equivalent to ``retire(instructions, uops)`` +
        ``count_data_refs(data_refs)`` + ``add_resource_stalls(...)`` with
        the ``int(round(...))`` of the stall components hoisted to segment
        construction -- the counter adds commute, so fusing them changes no
        totals.  This is the executor's per-routine-visit path.
        """
        user = self.counters.user
        user["INST_RETIRED"] = user.get("INST_RETIRED", 0) + instructions
        user["INST_DECODED"] = user.get("INST_DECODED", 0) + instructions
        user["UOPS_RETIRED"] = user.get("UOPS_RETIRED", 0) + uops
        if data_refs:
            user["DATA_MEM_REFS"] = user.get("DATA_MEM_REFS", 0) + data_refs
        if total_stall:
            if dep_stall:
                user["PARTIAL_RAT_STALLS"] = user.get("PARTIAL_RAT_STALLS", 0) + dep_stall
            if fu_stall:
                user["FU_CONTENTION_STALLS"] = \
                    user.get("FU_CONTENTION_STALLS", 0) + fu_stall
            if ild_stall:
                user["ILD_STALL"] = user.get("ILD_STALL", 0) + ild_stall
            user["RESOURCE_STALLS"] = user.get("RESOURCE_STALLS", 0) + total_stall
        if self.os is not None:
            fired = self.os.note_instructions(instructions)
            if fired:
                self._service_interrupts(fired)

    # ------------------------------------------------------------ data side
    def data_read(self, address: int, size: int = 4) -> int:
        """Simulated load; returns the number of L1D misses incurred."""
        if self._native_state is not None:
            return _NATIVE.charged_strided(self._native_state, address, 0, 1,
                                           size, 0)
        user = self.counters.user
        user["DATA_MEM_REFS"] = user.get("DATA_MEM_REFS", 0) + 1
        dtlb_miss = self.dtlb.access(address)
        if dtlb_miss:
            user["DTLB_MISS"] = user.get("DTLB_MISS", 0) + dtlb_miss
        l2 = self.caches.l2
        l2_data_misses_before = l2.stats.misses[0] + l2.stats.misses[1]
        misses = self.caches.read(address, size)
        if misses:
            user["DCU_LINES_IN"] = user.get("DCU_LINES_IN", 0) + misses
            user["L2_DATA_RQSTS"] = user.get("L2_DATA_RQSTS", 0) + misses
            l2_misses = (l2.stats.misses[0] + l2.stats.misses[1]) - l2_data_misses_before
            if l2_misses:
                user["L2_DATA_MISS"] = user.get("L2_DATA_MISS", 0) + l2_misses
        return misses

    def data_write(self, address: int, size: int = 4) -> int:
        """Simulated store; returns the number of L1D misses incurred."""
        if self._native_state is not None:
            return _NATIVE.charged_strided(self._native_state, address, 0, 1,
                                           size, 1)
        counters = self.counters
        counters.add("DATA_MEM_REFS", 1)
        dtlb_miss = self.dtlb.access(address)
        if dtlb_miss:
            counters.add("DTLB_MISS", dtlb_miss)
        l2 = self.caches.l2
        l2_data_misses_before = l2.stats.misses[0] + l2.stats.misses[1]
        misses = self.caches.write(address, size)
        if misses:
            counters.add("DCU_LINES_IN", misses)
            counters.add("L2_DATA_RQSTS", misses)
            l2_misses = (l2.stats.misses[0] + l2.stats.misses[1]) - l2_data_misses_before
            if l2_misses:
                counters.add("L2_DATA_MISS", l2_misses)
        return misses

    def data_read_span(self, address: int, size: int, refs: Optional[int] = None) -> int:
        """Streaming load of a contiguous span; returns the L1D misses incurred.

        This is the data side of the vectorized batch path: a tight loop
        issuing ``refs`` element loads over ``size`` contiguous bytes (one
        load per cache line when ``refs`` is omitted).  When ``refs`` evenly
        divides ``size`` the span is charged as ``refs`` contiguous
        element loads through :meth:`data_read_strided`, which is
        count-identical -- in every cache, TLB and counter -- to issuing the
        element loads one :meth:`data_read` at a time; the per-line
        fallback keeps the legacy "one load per cache line" accounting.
        """
        if size <= 0:
            return 0
        if refs is not None and refs > 0 and size % refs == 0:
            width = size // refs
            return self.data_read_strided(address, width, refs, width)
        line_bytes = self.caches.l1d.spec.line_bytes
        line_count = len(self.caches.l1d.lines_spanned(address, size))
        misses = self.data_read_strided(address, line_bytes, line_count, 1)
        if refs is not None and refs > line_count:
            # Extra element loads are line hits by construction; account the
            # references (and the L1D accesses) without re-probing.
            self.counters.add("DATA_MEM_REFS", refs - line_count)
            self.caches.l1d.stats.add_bulk(0, refs - line_count)
        return misses

    def data_read_strided(self, address: int, stride: int, count: int,
                          size: int = 4) -> int:
        """Bulk load of ``count`` ``size``-byte elements ``stride`` bytes
        apart; returns the L1D misses incurred.

        The span-charging fast path for columnar dataflow: one call charges
        a whole column-vector touch (contiguous when ``stride == size``, a
        field stride through NSM records, or the executor's cyclic workspace
        churn) with *identical* hit/miss counts, LRU evolution and counter
        values to ``count`` individual :meth:`data_read` calls in ascending
        address order.  The DTLB is updated once per page-run of elements
        (charging every element access), the caches once per call.
        """
        if count <= 0:
            return 0
        if self._native_state is not None:
            # Native fast path; covers the degenerate strides below too (the
            # C loop revisits the same element, like the scalar fallback).
            return _NATIVE.charged_strided(self._native_state, address,
                                           stride, count, size, 0)
        if count == 1 or stride <= 0:
            # Degenerate strides would revisit the same element; charge them
            # through the scalar path to keep the equivalence trivial.
            misses = 0
            for _ in range(max(count, 0)):
                misses += self.data_read(address, size)
            return misses
        user = self.counters.user
        user["DATA_MEM_REFS"] = user.get("DATA_MEM_REFS", 0) + count
        dtlb = self.dtlb
        page_shift = dtlb._page_shift
        dtlb_misses = 0
        position = 0
        while position < count:
            element = address + position * stride
            page_end = ((element >> page_shift) + 1) << page_shift
            run = min(count - position, (page_end - element + stride - 1) // stride)
            dtlb_misses += dtlb.access_bulk(element, run)
            position += run
        if dtlb_misses:
            user["DTLB_MISS"] = user.get("DTLB_MISS", 0) + dtlb_misses
        l2 = self.caches.l2
        l2_data_misses_before = l2.stats.misses[0] + l2.stats.misses[1]
        misses = self.caches.read_strided(address, stride, count, size)
        if misses:
            user["DCU_LINES_IN"] = user.get("DCU_LINES_IN", 0) + misses
            user["L2_DATA_RQSTS"] = user.get("L2_DATA_RQSTS", 0) + misses
            l2_misses = (l2.stats.misses[0] + l2.stats.misses[1]) - l2_data_misses_before
            if l2_misses:
                user["L2_DATA_MISS"] = user.get("L2_DATA_MISS", 0) + l2_misses
        return misses

    def data_write_strided(self, address: int, stride: int, count: int,
                           size: int = 4) -> int:
        """Bulk store of ``count`` ``size``-byte elements ``stride`` bytes
        apart; returns the L1D misses incurred.

        The store-side twin of :meth:`data_read_strided`: one call charges a
        whole line-run flush (page write-out) with identical hit/miss
        counts, LRU/dirty evolution and counter values to ``count``
        individual :meth:`data_write` calls in ascending address order.
        """
        if count <= 0:
            return 0
        if self._native_state is not None:
            return _NATIVE.charged_strided(self._native_state, address,
                                           stride, count, size, 1)
        if count == 1 or stride <= 0:
            misses = 0
            for _ in range(max(count, 0)):
                misses += self.data_write(address, size)
            return misses
        user = self.counters.user
        user["DATA_MEM_REFS"] = user.get("DATA_MEM_REFS", 0) + count
        dtlb = self.dtlb
        page_shift = dtlb._page_shift
        dtlb_misses = 0
        position = 0
        while position < count:
            element = address + position * stride
            page_end = ((element >> page_shift) + 1) << page_shift
            run = min(count - position, (page_end - element + stride - 1) // stride)
            dtlb_misses += dtlb.access_bulk(element, run)
            position += run
        if dtlb_misses:
            user["DTLB_MISS"] = user.get("DTLB_MISS", 0) + dtlb_misses
        l2 = self.caches.l2
        l2_data_misses_before = l2.stats.misses[0] + l2.stats.misses[1]
        misses = self.caches.write_strided(address, stride, count, size)
        if misses:
            user["DCU_LINES_IN"] = user.get("DCU_LINES_IN", 0) + misses
            user["L2_DATA_RQSTS"] = user.get("L2_DATA_RQSTS", 0) + misses
            l2_misses = (l2.stats.misses[0] + l2.stats.misses[1]) - l2_data_misses_before
            if l2_misses:
                user["L2_DATA_MISS"] = user.get("L2_DATA_MISS", 0) + l2_misses
        return misses

    def count_data_refs(self, count: int) -> None:
        """Account ``count`` loads/stores that hit the L1 D-cache.

        The paper observes that memory references are at least half of the
        retired instructions and that the overwhelming majority hit the L1
        D-cache because they touch hot private structures (Section 5.2).
        Simulating each of those hits individually would not change any miss
        counter, so they are accounted in bulk.
        """
        if count > 0:
            user = self.counters.user
            user["DATA_MEM_REFS"] = user.get("DATA_MEM_REFS", 0) + count

    # ---------------------------------------------------------- branch side
    def branch(self, site_address: int, taken: bool, backward: bool = False) -> bool:
        """Execute one dynamically simulated branch site visit."""
        btb_misses_before = self.branch_unit.stats.btb_misses
        mispredicted = self.branch_unit.execute(site_address, taken, backward)
        counters = self.counters
        counters.add("BR_INST_RETIRED", 1)
        if taken:
            counters.add("BR_TAKEN_RETIRED", 1)
        if mispredicted:
            counters.add("BR_MISS_PRED_RETIRED", 1)
        if self.branch_unit.stats.btb_misses != btb_misses_before:
            counters.add("BTB_MISSES", 1)
        return mispredicted

    def count_branches(self, count: int, taken: int = 0, mispredictions: int = 0,
                       btb_misses: int = 0) -> None:
        """Account branches represented statistically rather than per-site.

        The simulated branch *sites* capture the data-dependent behaviour
        (predicate outcomes, loop exits, index descent); the remaining branch
        population of the code path (error checks, call/returns, highly
        predictable internal loops) is accounted in bulk with the
        misprediction count the executor extrapolates for it.
        """
        if count <= 0:
            return
        user = self.counters.user
        user["BR_INST_RETIRED"] = user.get("BR_INST_RETIRED", 0) + count
        if taken:
            user["BR_TAKEN_RETIRED"] = user.get("BR_TAKEN_RETIRED", 0) + taken
        if mispredictions:
            user["BR_MISS_PRED_RETIRED"] = \
                user.get("BR_MISS_PRED_RETIRED", 0) + mispredictions
        if btb_misses:
            user["BTB_MISSES"] = user.get("BTB_MISSES", 0) + btb_misses

    # -------------------------------------------------------- resource side
    def add_resource_stalls(self, dependency_cycles: float = 0.0,
                            functional_unit_cycles: float = 0.0,
                            ild_cycles: float = 0.0) -> None:
        """Charge resource-related stall cycles (TDEP, TFU, TILD)."""
        user = self.counters.user
        total = 0
        if dependency_cycles > 0:
            cycles = int(round(dependency_cycles))
            user["PARTIAL_RAT_STALLS"] = user.get("PARTIAL_RAT_STALLS", 0) + cycles
            total += cycles
        if functional_unit_cycles > 0:
            cycles = int(round(functional_unit_cycles))
            user["FU_CONTENTION_STALLS"] = user.get("FU_CONTENTION_STALLS", 0) + cycles
            total += cycles
        if ild_cycles > 0:
            cycles = int(round(ild_cycles))
            user["ILD_STALL"] = user.get("ILD_STALL", 0) + cycles
            total += cycles
        if total:
            user["RESOURCE_STALLS"] = user.get("RESOURCE_STALLS", 0) + total

    # ------------------------------------------------------------- progress
    def record_done(self, count: int = 1) -> None:
        """Mark ``count`` records as processed."""
        if count > 0:
            self.counters.add("RECORDS_PROCESSED", count)

    # ------------------------------------------------------------ OS model
    def _service_interrupts(self, count: int) -> None:
        """Apply the effects of ``count`` simulated OS interrupts."""
        assert self.os is not None
        config = self.os.config
        counters = self.counters
        for _ in range(count):
            self.caches.l1i.invalidate_fraction(config.l1i_flush_fraction)
            if config.flush_itlb:
                self.itlb.flush()
                self._last_instruction_page = -1
        counters.add("OS_INTERRUPTS", count, MODE_SUP)
        counters.add("INST_RETIRED", config.kernel_instructions * count, MODE_SUP)
        counters.add("UOPS_RETIRED",
                     int(config.kernel_instructions * count
                         * self.spec.pipeline.uops_per_instruction), MODE_SUP)
        counters.add("CPU_CLK_UNHALTED", config.kernel_cycles * count, MODE_SUP)

    # ----------------------------------------------------------- finalising
    def finalize(self) -> EventCounters:
        """Assemble derived counters and return an immutable snapshot.

        This fills in ``IFU_MEM_STALL`` (accumulated front-end stall cycles),
        the memory-bus traffic counters, and the ground-truth
        ``CPU_CLK_UNHALTED`` cycle total computed by the
        :class:`~repro.hardware.pipeline.CycleModel`.  The processor can keep
        being driven afterwards; each call to :meth:`finalize` re-derives the
        totals from scratch for the counts accumulated so far.
        """
        counters = self.counters
        # Derived counters are recomputed from scratch on every call.
        counters.user.pop("IFU_MEM_STALL", None)
        counters.user.pop("CPU_CLK_UNHALTED", None)
        counters.user.pop("BUS_TRAN_MEM", None)
        counters.user.pop("MEMORY_LATENCY_CYCLES", None)
        counters.user.pop("L2_RQSTS", None)
        counters.user.pop("L2_LINES_IN", None)

        counters.add("IFU_MEM_STALL", int(round(self._l1i_stall_cycles)))

        l2_stats = self.caches.l2.stats
        l2_misses = l2_stats.total_misses
        counters.add("L2_RQSTS", l2_stats.total_accesses)
        counters.add("L2_LINES_IN", l2_misses)

        # Main-memory traffic: every L2 miss is a line fill, every L2
        # write-back is a line store.
        self.memory.reset_stats()
        self.memory.fill(l2_misses)
        self.memory.writeback(l2_stats.writebacks)
        counters.add("BUS_TRAN_MEM", l2_misses + l2_stats.writebacks)
        counters.add("MEMORY_LATENCY_CYCLES", self.memory.stats.latency_cycles_accumulated)

        breakdown = self.cycle_model.assemble(counters)
        counters.add("CPU_CLK_UNHALTED", int(round(breakdown.total)))
        self._finalized = True
        return counters.snapshot()

    def cycle_breakdown(self) -> CycleBreakdown:
        """Ground-truth cycle breakdown for the counts accumulated so far."""
        if not self._finalized:
            self.finalize()
        return self.cycle_model.assemble(self.counters)

    # -------------------------------------------------------------- queries
    def bandwidth_utilisation(self) -> float:
        """Fraction of peak memory bandwidth used by the run so far."""
        cycles = self.counters.get("CPU_CLK_UNHALTED")
        if not cycles:
            cycles = self.cycle_model.total_cycles(self.counters)
        return self.memory.bandwidth_utilisation(cycles)

    def reset(self) -> None:
        """Reset all statistics and microarchitectural state."""
        self.caches.reset_stats()
        self.caches.l1d.invalidate_all()
        self.caches.l1i.invalidate_all()
        self.caches.l2.invalidate_all()
        self.dtlb.flush()
        self.dtlb.reset_stats()
        self.itlb.flush()
        self.itlb.reset_stats()
        self.branch_unit.flush()
        self.branch_unit.reset_stats()
        self.memory.reset_stats()
        if self.os is not None:
            self.os.reset()
        self.counters.reset()
        self._l1i_stall_cycles = 0.0
        self._last_instruction_page = -1
        self._finalized = False

    def reset_counters(self) -> None:
        """Reset statistics but keep cache/TLB/BTB contents (warm measurement).

        This mirrors the paper's methodology of warming up the caches with
        multiple runs of a query before measuring it.
        """
        self.caches.reset_stats()
        self.dtlb.reset_stats()
        self.itlb.reset_stats()
        self.branch_unit.reset_stats()
        self.memory.reset_stats()
        if self.os is not None:
            self.os.reset()
        self.counters.reset()
        self._l1i_stall_cycles = 0.0
        self._finalized = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimulatedProcessor({self.spec.name})"
