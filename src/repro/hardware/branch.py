"""Branch Target Buffer and branch-direction prediction.

Section 5.3 of the paper attributes a significant share of execution time to
branch mispredictions and makes three quantitative observations that this
model is designed to reproduce:

* branch instructions account for roughly 20% of instructions retired,
* the BTB misses about 50% of the time on average, so the dynamic prediction
  hardware is only consulted for half the branches (static prediction --
  backward taken, forward not taken -- covers the rest), and
* the misprediction *rate* is largely insensitive to selectivity and record
  size, while the misprediction *stall time* tracks the L1 I-cache stall time
  because the Xeon's instruction prefetching couples the two.

The predictor implemented here follows the Pentium II's published design at
the level of detail the paper uses: a 512-entry, 4-way set-associative BTB
whose entries carry a small per-branch history register indexing a table of
2-bit saturating counters (two-level adaptive prediction, Yeh & Patt style),
with the static rule as fallback on BTB misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .specs import BranchSpec


@dataclass
class BranchStats:
    """Counters kept by the branch unit."""

    branches: int = 0
    taken: int = 0
    mispredictions: int = 0
    btb_hits: int = 0
    btb_misses: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def btb_miss_rate(self) -> float:
        return self.btb_misses / self.branches if self.branches else 0.0

    def merge(self, other: "BranchStats") -> "BranchStats":
        """Commutatively fold ``other``'s counts into this instance (sums
        only, so merge order cannot matter).  Returns ``self``."""
        self.branches += other.branches
        self.taken += other.taken
        self.mispredictions += other.mispredictions
        self.btb_hits += other.btb_hits
        self.btb_misses += other.btb_misses
        return self

    def as_dict(self) -> dict:
        return {
            "branches": self.branches,
            "taken": self.taken,
            "mispredictions": self.mispredictions,
            "btb_hits": self.btb_hits,
            "btb_misses": self.btb_misses,
            "misprediction_rate": self.misprediction_rate,
            "btb_miss_rate": self.btb_miss_rate,
        }


class _BTBEntry:
    """One BTB entry: branch history register + pattern table of 2-bit counters."""

    __slots__ = ("tag", "history", "counters")

    def __init__(self, tag: int, history_bits: int) -> None:
        self.tag = tag
        self.history = 0
        # Pattern table: 2-bit saturating counters, initialised weakly taken.
        self.counters = [2] * (1 << history_bits)

    def predict(self) -> bool:
        return self.counters[self.history] >= 2

    def update(self, taken: bool, history_mask: int) -> None:
        counter = self.counters[self.history]
        if taken:
            if counter < 3:
                self.counters[self.history] = counter + 1
        else:
            if counter > 0:
                self.counters[self.history] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & history_mask


class BranchPredictor:
    """Two-level adaptive predictor behind a set-associative BTB."""

    __slots__ = ("spec", "_sets", "_set_mask", "_history_mask", "stats")

    def __init__(self, spec: BranchSpec) -> None:
        self.spec = spec
        self._set_mask = spec.btb_sets - 1
        self._history_mask = (1 << spec.history_bits) - 1
        # Each set is a list of entries ordered MRU first.
        self._sets: List[List[_BTBEntry]] = [[] for _ in range(spec.btb_sets)]
        self.stats = BranchStats()

    # ------------------------------------------------------------------ API
    def execute(self, site_addr: int, taken: bool, backward: bool = False) -> bool:
        """Execute one dynamic branch at ``site_addr``.

        Parameters
        ----------
        site_addr:
            The (simulated) address of the branch instruction.  Branches at
            the same address share prediction state, which is what produces
            the data-dependent misprediction behaviour of the selection
            predicate as selectivity varies.
        taken:
            The actual outcome.
        backward:
            Whether the branch target lies at a lower address (loop-closing
            branches).  Only used by the static fallback prediction.

        Returns
        -------
        bool
            ``True`` when the branch was mispredicted.
        """
        stats = self.stats
        stats.branches += 1
        if taken:
            stats.taken += 1

        site = site_addr >> 4  # branches are sparse; drop low bits for indexing
        set_index = site & self._set_mask
        tag = site >> 0
        ways = self._sets[set_index]

        entry: Optional[_BTBEntry] = None
        for candidate in ways:
            if candidate.tag == tag:
                entry = candidate
                break

        if entry is not None:
            stats.btb_hits += 1
            prediction = entry.predict()
            if ways[0] is not entry:
                ways.remove(entry)
                ways.insert(0, entry)
            entry.update(taken, self._history_mask)
        else:
            stats.btb_misses += 1
            # Static prediction: backward taken, forward not taken.
            prediction = backward if self.spec.static_backward_taken else False
            # Allocate an entry for (only) taken branches, as real BTBs do --
            # not-taken branches that never hit in the BTB keep falling back
            # to static prediction, which is one of the reasons the measured
            # BTB miss ratio stays near 50%.
            if taken:
                entry = _BTBEntry(tag, self.spec.history_bits)
                entry.update(taken, self._history_mask)
                ways.insert(0, entry)
                if len(ways) > self.spec.btb_associativity:
                    ways.pop()

        mispredicted = prediction != taken
        if mispredicted:
            stats.mispredictions += 1
        return mispredicted

    # -------------------------------------------------------------- helpers
    def resident_entries(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def flush(self) -> None:
        """Clear all prediction state (used between unrelated experiments)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        self.stats = BranchStats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"BranchPredictor(BTB {self.spec.btb_entries} entries, "
                f"{self.spec.btb_associativity}-way, {self.spec.history_bits}-bit history)")
