"""Simulated processor and memory-hierarchy substrate.

This package models the hardware platform of the paper's experiments -- a
Pentium II Xeon with split 16 KB L1 caches, a unified 512 KB L2, small TLBs, a
BTB-based branch predictor and an out-of-order core -- at the level of detail
needed to regenerate the paper's hardware-counter measurements from the
reference stream a database engine produces.
"""

from .branch import BranchPredictor, BranchStats
from .cache import (Cache, CacheHierarchy, CacheStats, HierarchyStats,
                    PORT_DATA_READ, PORT_DATA_WRITE, PORT_INSTRUCTION)
from .counters import (EVENT_DESCRIPTIONS, EVENT_NAMES, EventCounters, MODE_SUP,
                       MODE_USER, UnknownEventError)
from .events import (Branch, BulkBranches, BulkDataRefs, CodeFetch, DataRead,
                     DataWrite, RecordBoundary, ResourceStall, RetireInstructions,
                     Trace, replay)
from .memory import MainMemory, MemoryStats
from .os_interference import OSInterference, OSInterferenceConfig
from .pipeline import CycleBreakdown, CycleModel, OverlapModel
from .processor import SimulatedProcessor
from .specs import (BranchSpec, CacheSpec, MemorySpec, PENTIUM_II_XEON,
                    PipelineSpec, ProcessorSpec, TLBSpec, larger_btb_xeon,
                    larger_l2_xeon, pentium_ii_xeon)
from .tlb import TLB, TLBStats

__all__ = [
    "BranchPredictor", "BranchStats",
    "Cache", "CacheHierarchy", "CacheStats", "HierarchyStats",
    "PORT_DATA_READ", "PORT_DATA_WRITE", "PORT_INSTRUCTION",
    "EVENT_DESCRIPTIONS", "EVENT_NAMES", "EventCounters", "MODE_SUP", "MODE_USER",
    "UnknownEventError",
    "Branch", "BulkBranches", "BulkDataRefs", "CodeFetch", "DataRead", "DataWrite",
    "RecordBoundary", "ResourceStall", "RetireInstructions", "Trace", "replay",
    "MainMemory", "MemoryStats",
    "OSInterference", "OSInterferenceConfig",
    "CycleBreakdown", "CycleModel", "OverlapModel",
    "SimulatedProcessor",
    "BranchSpec", "CacheSpec", "MemorySpec", "PENTIUM_II_XEON", "PipelineSpec",
    "ProcessorSpec", "TLBSpec", "larger_btb_xeon", "larger_l2_xeon", "pentium_ii_xeon",
    "TLB", "TLBStats",
]
