"""Hardware event counters.

The Pentium II exposes two programmable performance counters; the paper used
Intel's ``emon`` tool to multiplex 74 event types across repeated runs of each
query, in both user and kernel (supervisor) mode, and then combined the raw
counts through a set of formulae into the stall-time components of Table 4.2.

The simulated processor keeps *all* events simultaneously in an
:class:`EventCounters` register file.  The :mod:`repro.emon` package then
re-creates the measurement methodology on top of it: programming two logical
counters at a time, executing the unit of ten queries, repeating runs and
reporting standard deviations.  Keeping the full register file underneath lets
tests cross-check that the pairwise-multiplexed methodology converges to the
directly observed values.

Event names follow Intel's mnemonics where one exists (``INST_RETIRED``,
``BR_MISS_PRED_RETIRED``, ``IFU_MEM_STALL`` ...), with a few explicit
simulator-only extensions (e.g. ``L2_DATA_MISS`` instead of deriving it from
``L2_LINES_IN`` minus instruction fills).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple

#: Mode suffixes used by emon event specifications (``EVENT:USER`` etc.).
MODE_USER = "USER"
MODE_SUP = "SUP"
MODES = (MODE_USER, MODE_SUP)

#: The event vocabulary tracked by the simulated processor.  The docstring of
#: each event explains what the paper used it for.
EVENT_DESCRIPTIONS: Dict[str, str] = {
    "CPU_CLK_UNHALTED": "Cycles the processor is not halted (total execution cycles).",
    "INST_RETIRED": "Instructions retired; denominator of CPI and of the branch frequency.",
    "UOPS_RETIRED": "Micro-operations retired; TC is estimated from this count (Table 4.2).",
    "INST_DECODED": "Instructions decoded (drives the instruction-length decoder stall model).",
    "DATA_MEM_REFS": "All loads and stores (memory references).",
    "DCU_LINES_IN": "Lines allocated into the L1 D-cache, i.e. L1 D-cache misses.",
    "IFU_IFETCH": "Instruction fetch (line) accesses to the L1 I-cache.",
    "IFU_IFETCH_MISS": "L1 I-cache misses.",
    "IFU_MEM_STALL": "Cycles the instruction fetch unit is stalled (actual TL1I stall time).",
    "ILD_STALL": "Instruction-length decoder stall cycles (TILD / TMISC).",
    "L2_RQSTS": "All L2 cache requests (data + instruction).",
    "L2_DATA_RQSTS": "L2 requests caused by data-side L1 misses.",
    "L2_IFETCH": "L2 requests caused by instruction-side L1 misses.",
    "L2_LINES_IN": "Lines allocated into L2, i.e. L2 misses (data + instruction).",
    "L2_DATA_MISS": "L2 misses caused by data requests (drives TL2D).",
    "L2_IFETCH_MISS": "L2 misses caused by instruction fetches (drives TL2I).",
    "ITLB_MISS": "Instruction TLB misses (drives TITLB at 32 cycles each).",
    "DTLB_MISS": "Data TLB misses (tracked but, as in the paper, not part of TM).",
    "BR_INST_RETIRED": "Branch instructions retired.",
    "BR_TAKEN_RETIRED": "Taken branch instructions retired.",
    "BR_MISS_PRED_RETIRED": "Mispredicted branches retired (drives TB at 17 cycles each).",
    "BTB_MISSES": "Branches that missed in the Branch Target Buffer.",
    "RESOURCE_STALLS": "Cycles stalled on execution resources (TR = TFU + TDEP + TILD).",
    "PARTIAL_RAT_STALLS": "Register/dependency stall cycles (TDEP).",
    "FU_CONTENTION_STALLS": "Functional-unit contention stall cycles (TFU; simulator extension).",
    "BUS_TRAN_MEM": "Main-memory bus transactions (bandwidth-utilisation accounting).",
    "BUS_DRDY_CLOCKS": "Bus data-ready cycles (bandwidth-utilisation accounting).",
    "MEMORY_LATENCY_CYCLES": "Accumulated main-memory latency cycles (simulator extension).",
    "OS_INTERRUPTS": "Simulated periodic OS interrupts (context-switch interference).",
    "RECORDS_PROCESSED": "Records processed by the executor (simulator extension for per-record metrics).",
}

#: Tuple of all known event names, in a stable order.
EVENT_NAMES: Tuple[str, ...] = tuple(EVENT_DESCRIPTIONS)


class UnknownEventError(KeyError):
    """Raised when an event name outside the vocabulary is used."""


def _check_event(event: str) -> None:
    if event not in EVENT_DESCRIPTIONS:
        raise UnknownEventError(f"unknown hardware event: {event!r}")


def _check_mode(mode: str) -> None:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")


@dataclass
class EventCounters:
    """A register file of named event counters, split by execution mode.

    The paper runs every event in both user and kernel mode and reports user
    mode (queries spend more than 85% of their time at user level); the OS
    interference model is the only producer of kernel-mode counts here.
    """

    user: Dict[str, int] = field(default_factory=dict)
    sup: Dict[str, int] = field(default_factory=dict)

    # --------------------------------------------------------------- update
    def add(self, event: str, count: int = 1, mode: str = MODE_USER) -> None:
        """Increment ``event`` by ``count`` in the given mode."""
        # Validation is inlined: this is called once per simulated event
        # group and sits on the simulator's hottest path.
        if event not in EVENT_DESCRIPTIONS:
            raise UnknownEventError(f"unknown hardware event: {event!r}")
        if mode == MODE_USER:
            bank = self.user
        elif mode == MODE_SUP:
            bank = self.sup
        else:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        bank[event] = bank.get(event, 0) + count

    # ---------------------------------------------------------------- reads
    def get(self, event: str, mode: str = MODE_USER) -> int:
        _check_event(event)
        _check_mode(mode)
        bank = self.user if mode == MODE_USER else self.sup
        return bank.get(event, 0)

    def total(self, event: str) -> int:
        """User + kernel count for ``event``."""
        _check_event(event)
        return self.user.get(event, 0) + self.sup.get(event, 0)

    def __getitem__(self, event: str) -> int:
        return self.get(event, MODE_USER)

    def __contains__(self, event: str) -> bool:
        return event in EVENT_DESCRIPTIONS

    def events_with_counts(self) -> Iterator[Tuple[str, int, int]]:
        """Yield ``(event, user_count, kernel_count)`` for every known event."""
        for event in EVENT_NAMES:
            yield event, self.user.get(event, 0), self.sup.get(event, 0)

    # ------------------------------------------------------------ combining
    def snapshot(self) -> "EventCounters":
        """A deep copy usable as an immutable measurement result."""
        return EventCounters(user=dict(self.user), sup=dict(self.sup))

    def diff(self, earlier: "EventCounters") -> "EventCounters":
        """Counts accumulated since ``earlier`` (both from the same run)."""
        out = EventCounters()
        for event in EVENT_NAMES:
            du = self.user.get(event, 0) - earlier.user.get(event, 0)
            ds = self.sup.get(event, 0) - earlier.sup.get(event, 0)
            if du:
                out.user[event] = du
            if ds:
                out.sup[event] = ds
        return out

    def merged_with(self, other: "EventCounters") -> "EventCounters":
        """Sum of two counter snapshots (e.g. across the queries of a unit)."""
        out = self.snapshot()
        for event, count in other.user.items():
            out.user[event] = out.user.get(event, 0) + count
        for event, count in other.sup.items():
            out.sup[event] = out.sup.get(event, 0) + count
        return out

    def merge(self, other: "EventCounters") -> "EventCounters":
        """Commutatively fold ``other``'s counts into this register file.

        In-place counterpart of :meth:`merged_with`: every event is a plain
        sum, so folding any permutation of worker-local (or per-cell)
        snapshots produces identical totals -- the property the
        morsel-parallel subsystem and the benchmark grid rely on when
        combining results.  Returns ``self`` for chaining/``reduce``.
        """
        for event, count in other.user.items():
            self.user[event] = self.user.get(event, 0) + count
        for event, count in other.sup.items():
            self.sup[event] = self.sup.get(event, 0) + count
        return self

    def scaled(self, factor: float) -> "EventCounters":
        """Scale every count by ``factor`` (used for per-query averages)."""
        out = EventCounters()
        out.user = {event: int(round(count * factor)) for event, count in self.user.items()}
        out.sup = {event: int(round(count * factor)) for event, count in self.sup.items()}
        return out

    def reset(self) -> None:
        self.user.clear()
        self.sup.clear()

    # --------------------------------------------------------------- export
    def as_dict(self, mode: str = MODE_USER) -> Dict[str, int]:
        _check_mode(mode)
        bank = self.user if mode == MODE_USER else self.sup
        return {event: bank.get(event, 0) for event in EVENT_NAMES}

    @classmethod
    def from_dict(cls, user: Mapping[str, int],
                  sup: Mapping[str, int] | None = None) -> "EventCounters":
        counters = cls()
        for event, count in user.items():
            _check_event(event)
            counters.user[event] = int(count)
        for event, count in (sup or {}).items():
            _check_event(event)
            counters.sup[event] = int(count)
        return counters
