"""Trace-event vocabulary.

The execution engine normally drives the :class:`~repro.hardware.processor.
SimulatedProcessor` directly through its method API (the hot path).  For
testing, debugging and for building small hand-written traces, this module
provides an equivalent declarative representation: a sequence of event
objects that can be recorded, inspected, persisted and replayed onto a
processor.  Replaying a recorded trace produces identical counter values to
the original run, which the integration tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple, Union


@dataclass(frozen=True)
class CodeFetch:
    """Fetch of one or more instruction cache lines.

    ``line_addresses`` are byte addresses aligned (or alignable) to the
    instruction-cache line size; ``instructions`` and ``uops`` are the retired
    counts attributed to this stretch of code.
    """

    line_addresses: Tuple[int, ...]
    instructions: int = 0
    uops: int = 0


@dataclass(frozen=True)
class DataRead:
    """A load of ``size`` bytes from ``address``."""

    address: int
    size: int = 4


@dataclass(frozen=True)
class DataWrite:
    """A store of ``size`` bytes to ``address``."""

    address: int
    size: int = 4


@dataclass(frozen=True)
class BulkDataRefs:
    """Memory references accounted in bulk (they hit the L1 D-cache).

    Most of a DBMS's loads and stores touch small, hot, private working
    structures that stay resident in the 16 KB L1 D-cache (Section 5.2's
    explanation of the ~2% L1D miss rate).  Simulating each of them
    individually would add nothing but time, so the executor counts them in
    bulk and simulates only the accesses that can plausibly miss.
    """

    count: int


@dataclass(frozen=True)
class Branch:
    """A conditional branch with its outcome."""

    site_address: int
    taken: bool
    backward: bool = False


@dataclass(frozen=True)
class BulkBranches:
    """Branch instructions accounted in bulk.

    ``count`` branches are added to ``BR_INST_RETIRED`` without exercising the
    predictor; the dynamically simulated branch *sites* (one event per visit)
    determine the misprediction rate, which the executor applies to the bulk
    population.  ``mispredictions`` carries the extrapolated misprediction
    count for the bulk population.
    """

    count: int
    taken: int = 0
    mispredictions: int = 0


@dataclass(frozen=True)
class RetireInstructions:
    """Retire ``instructions`` x86 instructions (``uops`` micro-operations)."""

    instructions: int
    uops: int = 0


@dataclass(frozen=True)
class ResourceStall:
    """Resource-related stall cycles charged by the execution cost model."""

    dependency_cycles: float = 0.0
    functional_unit_cycles: float = 0.0
    ild_cycles: float = 0.0


@dataclass(frozen=True)
class RecordBoundary:
    """Marks the completion of ``count`` records (per-record metrics, OS ticks)."""

    count: int = 1


TraceEvent = Union[CodeFetch, DataRead, DataWrite, BulkDataRefs, Branch,
                   BulkBranches, RetireInstructions, ResourceStall, RecordBoundary]


class Trace:
    """An ordered collection of trace events."""

    def __init__(self, events: Iterable[TraceEvent] = ()) -> None:
        self._events: List[TraceEvent] = list(events)

    def append(self, event: TraceEvent) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self._events.extend(events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def counts_by_type(self) -> dict:
        out: dict = {}
        for event in self._events:
            name = type(event).__name__
            out[name] = out.get(name, 0) + 1
        return out


def replay(trace: Iterable[TraceEvent], processor) -> None:
    """Replay ``trace`` onto ``processor`` (a :class:`SimulatedProcessor`)."""
    for event in trace:
        if isinstance(event, CodeFetch):
            processor.fetch_code(event.line_addresses)
            if event.instructions or event.uops:
                processor.retire(event.instructions, event.uops)
        elif isinstance(event, DataRead):
            processor.data_read(event.address, event.size)
        elif isinstance(event, DataWrite):
            processor.data_write(event.address, event.size)
        elif isinstance(event, BulkDataRefs):
            processor.count_data_refs(event.count)
        elif isinstance(event, Branch):
            processor.branch(event.site_address, event.taken, event.backward)
        elif isinstance(event, BulkBranches):
            processor.count_branches(event.count, taken=event.taken,
                                     mispredictions=event.mispredictions)
        elif isinstance(event, RetireInstructions):
            processor.retire(event.instructions, event.uops)
        elif isinstance(event, ResourceStall):
            processor.add_resource_stalls(event.dependency_cycles,
                                          event.functional_unit_cycles,
                                          event.ild_cycles)
        elif isinstance(event, RecordBoundary):
            processor.record_done(event.count)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown trace event: {event!r}")
