"""Pipeline cost model: turning event counts into execution cycles.

The paper's framework (Section 3.1) decomposes query execution time as

    T_Q = T_C + T_M + T_B + T_R - T_OVL

The simulated processor produces *event counts* (cache misses, branch
mispredictions, retired micro-operations, resource-stall cycles charged by the
execution cost model).  This module assembles those counts into the cycle
total the hardware would report in ``CPU_CLK_UNHALTED``, applying a simple
overlap model for the stall classes the paper identifies as overlappable
(Section 3.2):

* L1 D-cache misses that hit in L2 are cheap and largely hidden by the
  out-of-order engine;
* L2 data misses can overlap with one another up to the number of outstanding
  misses supported by the non-blocking caches (4), but the workload is
  latency-bound so only a modest fraction is hidden;
* instruction-side stalls (L1I, L2I, ITLB) and branch mispredictions are
  serial bottlenecks that the paper argues cannot be hidden, so none of their
  cost is removed;
* a fraction of dependency/functional-unit stalls can be hidden behind memory
  stalls.

The analysis layer (:mod:`repro.analysis.formulae`) independently recomputes
the per-component estimates exactly the way the paper does from the counters
(miss counts times penalty constants, "actual" stall counters for the rest);
tests cross-check that the estimated components bound the simulated total the
same way the paper's upper-bound estimates behave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .counters import EventCounters, MODE_USER
from .specs import ProcessorSpec


@dataclass(frozen=True)
class OverlapModel:
    """Fractions of each overlappable stall class hidden by the OoO engine."""

    l1d_hidden_fraction: float = 0.80
    l2d_hidden_fraction: float = 0.15
    dtlb_hidden_fraction: float = 0.70
    resource_hidden_fraction: float = 0.20

    def __post_init__(self) -> None:
        for name in ("l1d_hidden_fraction", "l2d_hidden_fraction",
                     "dtlb_hidden_fraction", "resource_hidden_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass
class CycleBreakdown:
    """Ground-truth cycle components produced by the simulator.

    All values are in cycles.  ``total`` already has ``overlap`` subtracted,
    mirroring the paper's equation; the individual components are the
    *pre-overlap* values (upper bounds), which is also how the paper reports
    them.
    """

    computation: float = 0.0
    l1d: float = 0.0
    l1i: float = 0.0
    l2d: float = 0.0
    l2i: float = 0.0
    itlb: float = 0.0
    dtlb: float = 0.0
    branch: float = 0.0
    dependency: float = 0.0
    functional_unit: float = 0.0
    ild: float = 0.0
    overlap: float = 0.0
    total: float = 0.0

    @property
    def memory(self) -> float:
        """T_M: memory-hierarchy stall cycles (DTLB excluded, as in the paper)."""
        return self.l1d + self.l1i + self.l2d + self.l2i + self.itlb

    @property
    def resource(self) -> float:
        """T_R: resource-related stall cycles."""
        return self.dependency + self.functional_unit + self.ild

    @property
    def stall(self) -> float:
        """All stall cycles (everything except useful computation)."""
        return self.memory + self.branch + self.resource

    def as_dict(self) -> Dict[str, float]:
        return {
            "computation": self.computation,
            "l1d": self.l1d,
            "l1i": self.l1i,
            "l2d": self.l2d,
            "l2i": self.l2i,
            "itlb": self.itlb,
            "dtlb": self.dtlb,
            "branch": self.branch,
            "dependency": self.dependency,
            "functional_unit": self.functional_unit,
            "ild": self.ild,
            "overlap": self.overlap,
            "memory": self.memory,
            "resource": self.resource,
            "total": self.total,
        }


class CycleModel:
    """Assemble a :class:`CycleBreakdown` from counters and the platform spec."""

    def __init__(self, spec: ProcessorSpec, overlap: OverlapModel | None = None) -> None:
        self.spec = spec
        self.overlap = overlap or OverlapModel()

    def assemble(self, counters: EventCounters, mode: str = MODE_USER) -> CycleBreakdown:
        """Compute the ground-truth cycle breakdown for one measured run."""
        spec = self.spec
        get = lambda event: counters.get(event, mode)  # noqa: E731 - local shorthand

        breakdown = CycleBreakdown()

        # Useful computation: minimum cycles implied by retire bandwidth.
        breakdown.computation = get("UOPS_RETIRED") / spec.pipeline.retire_width_uops

        # Memory hierarchy stalls (upper bounds, as in Table 4.2).
        l1d_misses = get("DCU_LINES_IN")
        l2_data_misses = get("L2_DATA_MISS")
        l2_ifetch_misses = get("L2_IFETCH_MISS")
        l1d_l2_hits = max(l1d_misses - l2_data_misses, 0)
        breakdown.l1d = l1d_l2_hits * spec.l1d.miss_penalty_cycles
        breakdown.l1i = get("IFU_MEM_STALL")
        breakdown.l2d = l2_data_misses * spec.memory.latency_cycles
        breakdown.l2i = l2_ifetch_misses * spec.memory.latency_cycles
        breakdown.itlb = get("ITLB_MISS") * spec.itlb.miss_penalty_cycles
        breakdown.dtlb = get("DTLB_MISS") * spec.dtlb.miss_penalty_cycles

        # Branch misprediction penalty.
        breakdown.branch = (get("BR_MISS_PRED_RETIRED")
                            * spec.branch.misprediction_penalty_cycles)

        # Resource stalls are charged directly by the execution cost model.
        breakdown.dependency = get("PARTIAL_RAT_STALLS")
        breakdown.functional_unit = get("FU_CONTENTION_STALLS")
        breakdown.ild = get("ILD_STALL")

        # Overlap: the portion of the (overlappable) stalls hidden by the
        # out-of-order engine and the non-blocking caches.
        ovl = self.overlap
        breakdown.overlap = (
            ovl.l1d_hidden_fraction * breakdown.l1d
            + ovl.l2d_hidden_fraction * breakdown.l2d
            + ovl.dtlb_hidden_fraction * breakdown.dtlb
            + ovl.resource_hidden_fraction * breakdown.resource
        )

        gross = (breakdown.computation + breakdown.memory + breakdown.dtlb
                 + breakdown.branch + breakdown.resource)
        breakdown.total = max(gross - breakdown.overlap, breakdown.computation)
        return breakdown

    def total_cycles(self, counters: EventCounters, mode: str = MODE_USER) -> float:
        return self.assemble(counters, mode).total
