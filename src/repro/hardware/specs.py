"""Hardware specifications for the simulated processor platform.

The paper's experiments ran on a 6400 PII Xeon/MT Workstation with a single
400 MHz Pentium II Xeon, 512 MB of memory on a 100 MHz bus, and the cache
organisation summarised in the paper's Table 4.1:

===================  ==================  =============
Characteristic       L1 (split)          L2 (unified)
===================  ==================  =============
Cache size           16 KB D + 16 KB I   512 KB
Cache line size      32 bytes            32 bytes
Associativity        4-way               4-way
Miss penalty         4 cycles (L2 hit)   main memory
Non-blocking         yes                 yes
Misses outstanding   4                   4
Write policy         D: write-back       write-back
                     I: read-only
===================  ==================  =============

This module captures those characteristics (and the penalty constants of the
paper's Table 4.2) as plain dataclasses so that the rest of the simulator is
parameterised rather than hard-coded, and so that alternative platforms (e.g.
a larger L2, a bigger BTB as discussed in Section 5.3) can be modelled for
ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and behaviour of a single cache level.

    Parameters
    ----------
    name:
        Human readable identifier used in statistics and reports
        (``"L1D"``, ``"L1I"``, ``"L2"``).
    size_bytes:
        Total capacity of the cache.
    line_bytes:
        Cache line (block) size.  The Pentium II Xeon uses 32-byte lines at
        both levels.
    associativity:
        Number of ways per set.
    hit_latency_cycles:
        Access latency on a hit.  Only used for documentation / derived
        metrics; the breakdown model charges miss penalties, matching the
        paper's methodology.
    miss_penalty_cycles:
        Penalty charged per miss that is satisfied by the next level.  For L1
        caches this is the "4 cycles (w/ L2 hit)" figure of Table 4.1.  For
        the L2 cache the penalty is the measured main-memory latency and is
        taken from :class:`MemorySpec` instead.
    write_back:
        ``True`` for write-back caches, ``False`` for write-through.
    misses_outstanding:
        Number of simultaneous outstanding misses the (non-blocking) cache
        supports.  Used by the overlap model.
    """

    name: str
    size_bytes: int
    line_bytes: int = 32
    associativity: int = 4
    hit_latency_cycles: int = 1
    miss_penalty_cycles: int = 4
    write_back: bool = True
    misses_outstanding: int = 4

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"line_bytes*associativity ({self.line_bytes}*{self.associativity})"
            )
        if not _is_power_of_two(self.num_sets):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (capacity / (line size * associativity))."""
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class TLBSpec:
    """Geometry of a translation lookaside buffer.

    The Pentium II has a 32-entry ITLB and a 64-entry DTLB for 4 KB pages.
    The paper charges 32 cycles per ITLB miss (Table 4.2) and could not
    measure DTLB misses; both are modelled here, and the breakdown layer
    decides which ones to report.
    """

    name: str
    entries: int
    page_bytes: int = 4096
    miss_penalty_cycles: int = 32
    associativity: int = 0  # 0 == fully associative

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have a positive number of entries")
        if not _is_power_of_two(self.page_bytes):
            raise ValueError("page size must be a power of two")


@dataclass(frozen=True)
class BranchSpec:
    """Branch prediction hardware parameters.

    The Pentium II uses a 512-entry, 4-way set-associative Branch Target
    Buffer (BTB) with a two-level adaptive predictor (4 bits of per-entry
    history) and a static backward-taken / forward-not-taken fallback on BTB
    misses.  The paper charges 17 cycles per retired misprediction
    (Table 4.2).
    """

    btb_entries: int = 512
    btb_associativity: int = 4
    history_bits: int = 4
    misprediction_penalty_cycles: int = 17
    static_backward_taken: bool = True

    def __post_init__(self) -> None:
        if self.btb_entries % self.btb_associativity != 0:
            raise ValueError("btb_entries must be divisible by btb_associativity")
        if not 0 <= self.history_bits <= 16:
            raise ValueError("history_bits must be between 0 and 16")

    @property
    def btb_sets(self) -> int:
        return self.btb_entries // self.btb_associativity


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory latency/bandwidth parameters.

    Section 5.2.1 reports a measured memory latency of 60--70 cycles on the
    400 MHz Xeon with a 100 MHz bus; the workload "rarely uses more than a
    third of the available memory bandwidth", i.e. it is latency bound.
    """

    latency_cycles: int = 65
    peak_bandwidth_bytes_per_cycle: float = 8.0 * 100.0 / 400.0  # 64-bit bus at 100 MHz vs 400 MHz core
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.latency_cycles <= 0:
            raise ValueError("latency must be positive")
        if self.peak_bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")


@dataclass(frozen=True)
class PipelineSpec:
    """Parameters of the out-of-order core used by the cost model.

    The Pentium II decodes each x86 (CISC) instruction into up to three
    RISC-style micro-operations and can retire up to three micro-operations
    per cycle.  These widths bound the useful-computation component ``TC``
    ("estimated minimum based on micro-ops retired", Table 4.2).
    """

    retire_width_uops: int = 3
    decode_width_insts: int = 3
    uops_per_instruction: float = 1.35
    l1i_fetch_stall_cycles: float = 10.0
    """Average front-end stall observed per L1-I miss that hits in L2.

    The paper measures the *actual* I-fetch stall time with a hardware
    counter rather than multiplying misses by the 4-cycle L2 hit latency,
    because an instruction-fetch miss starves the pipeline for longer than
    the raw cache fill (decode restart, alignment, prefetch interaction).
    This constant plays the role of that measured per-miss cost.
    """

    def __post_init__(self) -> None:
        if self.retire_width_uops <= 0 or self.decode_width_insts <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.uops_per_instruction < 1.0:
            raise ValueError("uops_per_instruction must be >= 1.0")


@dataclass(frozen=True)
class ProcessorSpec:
    """Complete description of the simulated platform."""

    name: str
    clock_mhz: int
    l1d: CacheSpec
    l1i: CacheSpec
    l2: CacheSpec
    dtlb: TLBSpec
    itlb: TLBSpec
    branch: BranchSpec
    memory: MemorySpec
    pipeline: PipelineSpec
    inclusive_l2: bool = False
    """The Xeon does *not* enforce L1/L2 inclusion (Section 5.2.2)."""

    def with_overrides(self, **kwargs) -> "ProcessorSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)

    def table_4_1(self) -> Dict[str, Dict[str, str]]:
        """Render the cache characteristics in the shape of the paper's Table 4.1."""
        return {
            "L1 (split)": {
                "Cache size": f"{self.l1d.size_bytes // 1024}KB Data / {self.l1i.size_bytes // 1024}KB Instruction",
                "Cache line size": f"{self.l1d.line_bytes} bytes",
                "Associativity": f"{self.l1d.associativity}-way",
                "Miss Penalty": f"{self.l1d.miss_penalty_cycles} cycles (w/ L2 hit)",
                "Non-blocking": "Yes",
                "Misses outstanding": str(self.l1d.misses_outstanding),
                "Write Policy": "L1-D: Write-back / L1-I: Read-only",
            },
            "L2": {
                "Cache size": f"{self.l2.size_bytes // 1024}KB",
                "Cache line size": f"{self.l2.line_bytes} bytes",
                "Associativity": f"{self.l2.associativity}-way",
                "Miss Penalty": "Main memory",
                "Non-blocking": "Yes",
                "Misses outstanding": str(self.l2.misses_outstanding),
                "Write Policy": "Write-back",
            },
        }


def pentium_ii_xeon() -> ProcessorSpec:
    """Build the default platform: the paper's Pentium II Xeon at 400 MHz."""
    return ProcessorSpec(
        name="Pentium II Xeon 400MHz",
        clock_mhz=400,
        l1d=CacheSpec(name="L1D", size_bytes=16 * 1024, line_bytes=32, associativity=4,
                      hit_latency_cycles=1, miss_penalty_cycles=4, write_back=True,
                      misses_outstanding=4),
        l1i=CacheSpec(name="L1I", size_bytes=16 * 1024, line_bytes=32, associativity=4,
                      hit_latency_cycles=1, miss_penalty_cycles=4, write_back=False,
                      misses_outstanding=4),
        l2=CacheSpec(name="L2", size_bytes=512 * 1024, line_bytes=32, associativity=4,
                     hit_latency_cycles=4, miss_penalty_cycles=65, write_back=True,
                     misses_outstanding=4),
        dtlb=TLBSpec(name="DTLB", entries=64, page_bytes=4096, miss_penalty_cycles=32),
        itlb=TLBSpec(name="ITLB", entries=32, page_bytes=4096, miss_penalty_cycles=32),
        branch=BranchSpec(),
        memory=MemorySpec(latency_cycles=65),
        pipeline=PipelineSpec(),
    )


#: The default simulation platform, matching the paper's Table 4.1.
PENTIUM_II_XEON: ProcessorSpec = pentium_ii_xeon()


def larger_l2_xeon(l2_kb: int = 2048) -> ProcessorSpec:
    """A Xeon variant with a larger L2 cache.

    Section 5.2.1 notes the Xeon could be configured with up to a 2 MB L2
    (the experiments used 512 KB).  This variant is used by the ablation
    benchmarks to show how the L2-data-stall component shrinks as the data
    working set fits.
    """
    base = pentium_ii_xeon()
    return base.with_overrides(
        name=f"Pentium II Xeon 400MHz ({l2_kb}KB L2)",
        l2=CacheSpec(name="L2", size_bytes=l2_kb * 1024, line_bytes=32, associativity=4,
                     hit_latency_cycles=4, miss_penalty_cycles=65, write_back=True,
                     misses_outstanding=4),
    )


def larger_btb_xeon(entries: int = 16384) -> ProcessorSpec:
    """A Xeon variant with a larger BTB.

    Section 5.3 cites work showing that a BTB of up to 16K entries improves
    the BTB miss rate for OLTP workloads; this variant supports the
    corresponding ablation benchmark.
    """
    base = pentium_ii_xeon()
    return base.with_overrides(
        name=f"Pentium II Xeon 400MHz ({entries}-entry BTB)",
        branch=BranchSpec(btb_entries=entries, btb_associativity=4),
    )
