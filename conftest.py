"""Root test configuration: the no-numpy degradation contract.

The engine itself runs without numpy (the kernels package falls back to its
pure-Python backend and ``tests/test_kernels.py`` skips its differentials),
but every *dataset* in the repo is generated from numpy's PCG64 stream --
see ``repro.workloads._rng`` -- so tests that build a workload database
cannot run without it.  When numpy is missing those tests skip with a clear
reason instead of erroring; everything purely structural (storage, hardware
model, query layer, execution kernels' python backend, adaptive policies)
still runs, which is exactly what the no-numpy CI leg verifies.
"""

from __future__ import annotations

import pytest

try:
    import numpy  # noqa: F401
    NUMPY_AVAILABLE = True
except ImportError:
    NUMPY_AVAILABLE = False

#: Test files whose fixtures or bodies generate PCG64-seeded workload data.
_NEEDS_WORKLOAD_DATA = {
    "test_adaptive.py",
    "test_adaptive_decisions.py",
    "test_artifact.py",
    "test_emon.py",
    "test_engine_session.py",
    "test_experiments.py",
    "test_grid_and_gate.py",
    "test_integration_paper_claims.py",
    "test_sweep_properties.py",
    "test_tpc_differential.py",
    "test_workloads.py",
}


def pytest_collection_modifyitems(config, items):
    if NUMPY_AVAILABLE:
        return
    skip = pytest.mark.skip(
        reason="numpy unavailable: workload datasets are PCG64-seeded "
               "(pip install -e .[fast])")
    for item in items:
        name = item.path.name
        if name in _NEEDS_WORKLOAD_DATA or item.path.parent.name == "benchmarks":
            item.add_marker(skip)
