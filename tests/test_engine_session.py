"""Tests for the Database facade and measurement Session."""

import pytest

from repro.engine import Database, Session
from repro.hardware import OSInterferenceConfig, larger_l2_xeon
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_A, SYSTEM_B
from repro.query import UpdateQuery, avg, count_star, range_predicate, SelectionQuery


class TestDatabase:
    def test_create_load_and_summary(self):
        db = Database()
        db.create_table("t", [("k", ColumnType.INT32), ("v", ColumnType.INT32)],
                        record_size=64)
        loaded = db.load("t", ((i, i * i) for i in range(100)))
        assert loaded == 100
        assert db.row_count("t") == 100
        summary = db.summary()["t"]
        assert summary["rows"] == 100
        assert summary["record_size"] == 64
        assert db.resident_bytes() == 100 * 64

    def test_create_index_through_facade(self):
        db = Database()
        db.create_table("t", [("k", ColumnType.INT32)], record_size=32)
        db.load("t", ((i,) for i in range(10)))
        index = db.create_index("t", "k", unique=True)
        assert len(index) == 10
        db.drop_index("t", "k")
        assert db.table("t").index_on("k") is None


class TestSession:
    def test_query_result_scalar_matches_ground_truth(self, micro_workload, micro_database):
        session = Session(micro_database, SYSTEM_B)
        result = session.execute(micro_workload.sequential_range_selection(0.10))
        assert result.scalar == pytest.approx(micro_workload.expected_average(0.10))
        assert result.system == "B"
        assert result.counters.get("CPU_CLK_UNHALTED") > 0
        assert result.metrics.cpi > 0

    def test_plan_and_explain_follow_the_profile(self, micro_workload, micro_database):
        query = micro_workload.indexed_range_selection(0.10)
        assert "IndexRangeScan" in Session(micro_database, SYSTEM_B).explain(query)
        assert "SeqScan" in Session(micro_database, SYSTEM_A).explain(query)

    def test_warmup_runs_are_not_measured(self, micro_workload, micro_database):
        session = Session(micro_database, SYSTEM_B)
        query = micro_workload.sequential_range_selection(0.10)
        cold = session.execute(query, warmup_runs=0)
        warm = Session(micro_database, SYSTEM_B).execute(query, warmup_runs=2)
        # Instructions retired per measured unit are identical; only cache
        # behaviour changes with warm-up.
        assert warm.counters.get("INST_RETIRED") == cold.counters.get("INST_RETIRED")
        assert warm.counters.get("L2_DATA_MISS") <= cold.counters.get("L2_DATA_MISS")

    def test_unit_of_n_queries_scales_work(self, micro_workload, micro_database):
        query = micro_workload.sequential_range_selection(0.10)
        one = Session(micro_database, SYSTEM_B).execute(query, warmup_runs=0,
                                                        queries_per_unit=1)
        three = Session(micro_database, SYSTEM_B).execute(query, warmup_runs=0,
                                                          queries_per_unit=3)
        assert three.queries_in_unit == 3
        ratio = three.counters.get("INST_RETIRED") / one.counters.get("INST_RETIRED")
        assert ratio == pytest.approx(3.0, rel=0.01)

    def test_execute_suite_covers_all_queries(self, micro_workload, micro_database):
        queries = [micro_workload.sequential_range_selection(s) for s in (0.05, 0.10)]
        result = Session(micro_database, SYSTEM_B).execute_suite(queries, label="mini-suite")
        assert result.queries_in_unit == 2
        assert result.label == "mini-suite"
        assert result.breakdown.total_cycles > 0

    def test_update_query_through_session(self, micro_workload, micro_database):
        session = Session(micro_database, SYSTEM_B)
        result = session.execute(UpdateQuery(table="R", key_column="a2", key_value=1,
                                             set_column="a3", set_value=123))
        assert result.rows[0]["updated"] >= 1

    def test_execute_transaction_and_measure(self, micro_workload, micro_database):
        session = Session(micro_database, SYSTEM_B)
        statements = (
            SelectionQuery(table="R", aggregates=(count_star(),),
                           predicate=range_predicate("a2", 0, 3), prefer_index_on="a2"),
            UpdateQuery(table="R", key_column="a2", key_value=2,
                        set_column="a3", set_value=5),
        )
        session.execute_transaction(statements)
        counters, breakdown, metrics = session.measure()
        txn_instructions = SYSTEM_B.cost("txn_overhead").instructions
        assert counters.get("INST_RETIRED") >= txn_instructions
        assert breakdown.total_cycles > 0
        session.reset_measurement()
        assert session.processor.counters.get("INST_RETIRED") == 0

    def test_alternative_platform_spec(self, micro_workload, micro_database):
        spec = larger_l2_xeon(2048)
        session = Session(micro_database, SYSTEM_B, spec=spec)
        result = session.execute(micro_workload.sequential_range_selection(0.10))
        assert result.breakdown.total_cycles > 0

    def test_os_interference_can_be_disabled(self, micro_workload, micro_database):
        session = Session(micro_database, SYSTEM_B, os_interference=None)
        result = session.execute(micro_workload.sequential_range_selection(0.10))
        assert result.counters.get("OS_INTERRUPTS", "SUP") == 0
