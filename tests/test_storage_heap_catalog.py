"""Tests for the buffer pool, heap files, tables and the catalog."""

import pytest

from repro.storage import (BufferPool, BufferPoolError, Catalog, CatalogError,
                           HeapFileError, RecordId, microbenchmark_schema)
from repro.storage.address_space import AddressSpace
from repro.storage.heapfile import HeapFile
from repro.storage.schema import RecordLayout


class TestBufferPool:
    def test_allocate_assigns_page_aligned_disjoint_addresses(self):
        pool = BufferPool(AddressSpace(), page_size=8192)
        pages = [pool.allocate_page() for _ in range(4)]
        addresses = [page.base_address for page in pages]
        assert len(set(addresses)) == 4
        assert all(addr % 8192 == 0 for addr in addresses)

    def test_fetch_hit_statistics(self):
        pool = BufferPool(AddressSpace())
        page = pool.allocate_page()
        fetched = pool.fetch_page(page.page_number)
        assert fetched is page
        assert pool.stats.hits == 1
        assert pool.stats.hit_rate == 1.0

    def test_fetch_unknown_page_is_a_fault(self):
        pool = BufferPool(AddressSpace())
        with pytest.raises(BufferPoolError):
            pool.fetch_page(99)
        assert pool.stats.faults == 1

    def test_pin_unpin(self):
        pool = BufferPool(AddressSpace())
        page = pool.allocate_page()
        pool.pin(page.page_number)
        pool.pin(page.page_number)
        assert pool.pin_count(page.page_number) == 2
        pool.unpin(page.page_number)
        pool.unpin(page.page_number)
        assert pool.pin_count(page.page_number) == 0
        with pytest.raises(BufferPoolError):
            pool.unpin(page.page_number)

    def test_capacity_eviction_skips_pinned_pages(self):
        pool = BufferPool(AddressSpace(), capacity_pages=2)
        first = pool.allocate_page()
        pool.pin(first.page_number)
        pool.allocate_page()
        pool.allocate_page()          # must evict the unpinned page
        assert pool.stats.evictions == 1
        assert pool.page_exists(first.page_number)

    def test_all_pinned_and_full_raises(self):
        pool = BufferPool(AddressSpace(), capacity_pages=1)
        page = pool.allocate_page()
        pool.pin(page.page_number)
        with pytest.raises(BufferPoolError):
            pool.allocate_page()


class TestHeapFile:
    def make_heap(self) -> HeapFile:
        schema, layout = microbenchmark_schema(100)
        return HeapFile("R", layout, BufferPool(AddressSpace()))

    def test_insert_scan_roundtrip(self):
        heap = self.make_heap()
        rows = [(i, i * 2, i * 3) for i in range(300)]
        heap.insert_many(rows)
        assert heap.record_count == 300
        scanned = [heap.layout.decode(bytes(e.page.record_view(e.slot))) for e in heap.scan()]
        assert scanned == rows

    def test_records_span_multiple_pages_in_order(self):
        heap = self.make_heap()
        heap.insert_many((i, 0, 0) for i in range(300))
        assert heap.page_count > 1
        addresses = [entry.address for entry in heap.scan()]
        # Within the file, addresses are strictly increasing page by page.
        per_page = {}
        for entry in heap.scan():
            per_page.setdefault(entry.rid.page_number, []).append(entry.address)
        for addrs in per_page.values():
            assert addrs == sorted(addrs)

    def test_fetch_by_rid(self):
        heap = self.make_heap()
        rid = heap.insert((7, 8, 9))
        entry = heap.fetch(rid)
        assert heap.read_values(rid) == (7, 8, 9)
        assert entry.address == entry.page.slot_address(rid.slot)

    def test_update_and_delete(self):
        heap = self.make_heap()
        rid = heap.insert((1, 2, 3))
        heap.update(rid, (1, 20, 30))
        assert heap.read_values(rid) == (1, 20, 30)
        heap.delete(rid)
        assert heap.record_count == 0
        with pytest.raises(HeapFileError):
            heap.fetch(rid)

    def test_fetch_foreign_page_rejected(self):
        heap = self.make_heap()
        heap.insert((1, 2, 3))
        with pytest.raises(HeapFileError):
            heap.fetch(RecordId(999, 0))

    def test_data_bytes_and_records_per_page(self):
        heap = self.make_heap()
        heap.insert_many((i, 0, 0) for i in range(10))
        assert heap.data_bytes() == 10 * 100
        assert heap.records_per_page >= 70   # 8 KB page, 100-byte records + slots

    def test_scan_pages_yields_live_slots(self):
        heap = self.make_heap()
        rids = [heap.insert((i, 0, 0)) for i in range(5)]
        heap.delete(rids[2])
        pages = list(heap.scan_pages())
        assert sum(len(slots) for _, slots in pages) == 4


class TestCatalogAndTable:
    def test_create_table_and_insert(self, catalog):
        schema, _ = microbenchmark_schema(100)
        table = catalog.create_table("R", schema, record_size=100)
        table.insert_many((i, i, i) for i in range(50))
        assert table.row_count == 50
        assert catalog.table("R") is table
        assert catalog.total_data_bytes() == 50 * 100

    def test_duplicate_table_rejected(self, catalog):
        schema, _ = microbenchmark_schema(100)
        catalog.create_table("R", schema)
        with pytest.raises(CatalogError):
            catalog.create_table("R", schema)

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_create_index_populates_from_existing_rows(self, catalog):
        schema, _ = microbenchmark_schema(100)
        table = catalog.create_table("R", schema, record_size=100)
        table.insert_many((i, i % 7, i) for i in range(200))
        index = catalog.create_index("R", "a2")
        assert len(index) == 200
        rids = index.search(3)
        assert len(rids) == sum(1 for i in range(200) if i % 7 == 3)

    def test_insert_after_index_creation_maintains_index(self, catalog):
        schema, _ = microbenchmark_schema(100)
        table = catalog.create_table("R", schema, record_size=100)
        table.insert_many((i, i, i) for i in range(10))
        index = catalog.create_index("R", "a2")
        table.insert((100, 5, 0))
        assert len(index.search(5)) == 2

    def test_update_moves_index_entry(self, catalog):
        schema, _ = microbenchmark_schema(100)
        table = catalog.create_table("R", schema, record_size=100)
        rid = table.insert((1, 10, 0))
        catalog.create_index("R", "a2")
        table.update(rid, (1, 20, 0))
        index = table.index_on("a2")
        assert index.search(10) == []
        assert index.search(20) == [rid]

    def test_delete_removes_index_entry(self, catalog):
        schema, _ = microbenchmark_schema(100)
        table = catalog.create_table("R", schema, record_size=100)
        rid = table.insert((1, 10, 0))
        catalog.create_index("R", "a2")
        table.delete(rid)
        assert table.index_on("a2").search(10) == []
        assert table.row_count == 0

    def test_duplicate_index_rejected(self, catalog):
        schema, _ = microbenchmark_schema(100)
        catalog.create_table("R", schema)
        catalog.create_index("R", "a2")
        with pytest.raises(CatalogError):
            catalog.create_index("R", "a2")

    def test_drop_index_and_table(self, catalog):
        schema, _ = microbenchmark_schema(100)
        catalog.create_table("R", schema)
        catalog.create_index("R", "a2")
        catalog.drop_index("R", "a2")
        assert catalog.table("R").index_on("a2") is None
        catalog.drop_table("R")
        assert not catalog.has_table("R")

    def test_heap_and_index_pages_live_in_distinct_regions(self, catalog):
        schema, _ = microbenchmark_schema(100)
        table = catalog.create_table("R", schema, record_size=100)
        table.insert_many((i, i, i) for i in range(100))
        index = catalog.create_index("R", "a2")
        space = catalog.address_space
        heap_entry = next(table.heap.scan())
        assert space.region_of(heap_entry.address) == "heap"
        match = next(iter(index.range_search(None, None)))
        assert space.region_of(match.entry_address) == "index"
