"""Eviction/reload round trips through the buffer pool's backing store.

Before the spilling work, a capacity-limited :class:`BufferPool` silently
*discarded* evicted frames: ``fetch_page`` on an evicted page raised, and
any data on it was gone -- a data-loss bug masked only by the default
everything-resident configuration.  These tests pin the fixed contract:

* evicted frames land in the simulated backing store (the ``disk`` region)
  and come back bit-identical on the next fetch;
* dirty victims charge exactly one page write through the ``io`` cost
  model, clean victims charge nothing, and every reload charges one page
  read;
* the LRU victim choice respects recency and pins, and a freshly admitted
  frame is never the victim that makes room for itself;
* ``BufferPoolError`` is reserved for page numbers that were *never*
  allocated (plus genuine misuse: all-pinned-and-full, pin leaks);
* a :class:`HeapFile` survives on a pool far smaller than its data.
"""

from __future__ import annotations

import pytest

from repro.execution import ExecutionContext
from repro.hardware import SimulatedProcessor
from repro.storage import BufferPool, BufferPoolError, microbenchmark_schema
from repro.storage.address_space import AddressSpace
from repro.storage.heapfile import HeapFile
from repro.systems import SYSTEM_B


class RecordingIO:
    """Minimal ``io`` collaborator: records the charged page transfers."""

    def __init__(self):
        self.writes = []
        self.reads = []

    def page_io_out(self, address, nbytes):
        self.writes.append((address, nbytes))

    def page_io_in(self, address, nbytes):
        self.reads.append((address, nbytes))


class TestEvictionRoundTrip:
    def test_dirty_page_survives_eviction_and_reload(self):
        pool = BufferPool(AddressSpace(), capacity_pages=2)
        first = pool.allocate_page()
        slot = first.insert(b"payload-that-must-survive".ljust(64, b"\0"))
        pool.allocate_page()
        pool.allocate_page()          # capacity 2: evicts `first`
        assert not pool.is_resident(first.page_number)
        assert pool.page_exists(first.page_number)
        reloaded = pool.fetch_page(first.page_number)
        assert reloaded.record_bytes(slot) == b"payload-that-must-survive".ljust(64, b"\0")
        assert pool.stats.evictions >= 1
        assert pool.stats.faults == 1
        assert pool.stats.page_reads == 1

    def test_dirty_eviction_charges_one_write_clean_charges_none(self):
        io = RecordingIO()
        pool = BufferPool(AddressSpace(), capacity_pages=1, page_size=8192, io=io)
        dirty = pool.allocate_page()
        dirty.insert(b"x" * 16)
        assert dirty.dirty
        pool.allocate_page()          # evicts the dirty page: one charged write
        assert pool.stats.page_writes == 1
        assert io.writes == [(pool._disk_address(dirty.page_number), 8192)]
        # The victim this time is clean (never written): no charge.
        pool.allocate_page()
        assert pool.stats.page_writes == 1
        assert pool.stats.evictions == 2
        # Reloading charges a read from the same stable disk address.
        pool.fetch_page(dirty.page_number)
        assert pool.stats.page_reads == 1
        assert io.reads == [(pool._disk_address(dirty.page_number), 8192)]

    def test_reload_clears_dirty_until_rewritten(self):
        pool = BufferPool(AddressSpace(), capacity_pages=1)
        page = pool.allocate_page()
        page.insert(b"a" * 8)
        pool.allocate_page()                        # write-back clears dirty
        reloaded = pool.fetch_page(page.page_number)
        assert not reloaded.dirty
        pool.allocate_page()                        # clean re-eviction: no new write
        assert pool.stats.page_writes == 1

    def test_lru_victim_order_respects_recency(self):
        pool = BufferPool(AddressSpace(), capacity_pages=2)
        a = pool.allocate_page()
        b = pool.allocate_page()
        pool.fetch_page(a.page_number)   # touch a: b becomes LRU
        pool.allocate_page()
        assert pool.is_resident(a.page_number)
        assert not pool.is_resident(b.page_number)

    def test_never_allocated_page_still_raises_and_counts_a_fault(self):
        pool = BufferPool(AddressSpace(), capacity_pages=2)
        with pytest.raises(BufferPoolError, match="never allocated"):
            pool.fetch_page(1234)
        assert pool.stats.faults == 1
        assert pool.stats.page_reads == 0

    def test_stats_round_trip(self):
        pool = BufferPool(AddressSpace(), capacity_pages=1)
        page = pool.allocate_page()
        page.insert(b"y" * 4)
        pool.allocate_page()
        pool.fetch_page(page.page_number)
        stats = pool.stats.as_dict()
        assert stats["fetches"] == 1
        assert stats["hits"] == 0
        assert stats["faults"] == 1
        assert stats["evictions"] == 2          # second alloc + the reload's victim
        assert stats["page_writes"] == 1
        assert stats["page_reads"] == 1
        assert stats["hit_rate"] == 0.0


class TestAdmissionExemption:
    """A freshly admitted frame must never be its own eviction victim."""

    def test_fresh_allocation_survives_tight_capacity(self):
        pool = BufferPool(AddressSpace(), capacity_pages=1)
        first = pool.allocate_page()
        first.insert(b"z" * 8)
        second = pool.allocate_page()
        # The new page displaced the old one -- not itself.
        assert pool.is_resident(second.page_number)
        assert not pool.is_resident(first.page_number)
        assert pool.page_exists(first.page_number)

    def test_reload_is_exempt_from_its_own_eviction(self):
        pool = BufferPool(AddressSpace(), capacity_pages=1)
        first = pool.allocate_page()
        pool.allocate_page()
        reloaded = pool.fetch_page(first.page_number)
        assert reloaded is first
        assert pool.is_resident(first.page_number)

    def test_allocate_pinned_returns_a_pinned_page(self):
        pool = BufferPool(AddressSpace(), capacity_pages=1)
        page = pool.allocate_page(pin=True)
        assert pool.pin_count(page.page_number) == 1
        # Pool full of pinned pages: the next allocation must fail cleanly
        # without leaving the pool over capacity...
        with pytest.raises(BufferPoolError, match="pinned"):
            pool.allocate_page()
        assert len(pool) == 1
        assert pool.is_resident(page.page_number)
        # ...and succeed again once the pin is released.
        pool.unpin(page.page_number)
        pool.allocate_page()
        assert len(pool) == 1

    def test_pinned_page_is_never_the_victim(self):
        pool = BufferPool(AddressSpace(), capacity_pages=2)
        pinned = pool.allocate_page(pin=True)
        other = pool.allocate_page()
        pool.allocate_page()
        assert pool.is_resident(pinned.page_number)
        assert not pool.is_resident(other.page_number)


class TestChargedIOThroughContext:
    def test_execution_context_charges_page_transfers(self):
        space = AddressSpace()
        ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, space)
        pool = BufferPool(space, capacity_pages=1, io=ctx)
        page = pool.allocate_page()
        page.insert(b"q" * 32)
        pool.allocate_page()                 # dirty eviction: charged write
        pool.fetch_page(page.page_number)    # reload: charged read
        assert ctx.io_stats["page_writes"] == 1
        assert ctx.io_stats["page_reads"] >= 1
        assert ctx.io_stats["bytes_written"] == pool.page_size
        assert ctx.io_stats["bytes_read"] >= pool.page_size


class TestHeapFileOnTinyPool:
    @pytest.mark.parametrize("style", ["nsm", "pax"])
    def test_scan_returns_every_row_despite_evictions(self, style):
        schema, layout = microbenchmark_schema(100)
        pool = BufferPool(AddressSpace(), capacity_pages=2)
        heap = HeapFile("R", layout, pool, page_style=style)
        rows = [(i, i % 7, i * 3) for i in range(300)]
        heap.insert_many(rows)
        assert heap.page_count > 2           # data genuinely exceeds the pool
        assert pool.stats.evictions > 0
        scanned = [heap.read_values(entry.rid)[:3] for entry in list(heap.scan())]
        assert scanned == rows
        assert pool.stats.page_reads > 0     # the scan really faulted pages in
