"""Unit tests for the PAX (minipage) page layout and its storage plumbing."""

import pytest

from repro.engine import Database, Session
from repro.query import SelectionQuery, avg, count_star, range_predicate
from repro.storage import (Catalog, PAGE_HEADER_BYTES, PageError, PaxPage,
                           RecordId, microbenchmark_schema)
from repro.storage.heapfile import PAGE_STYLE_PAX
from repro.storage.schema import ColumnType, RecordLayout
from repro.systems import SYSTEM_B


def make_layout(record_size=100) -> RecordLayout:
    _, layout = microbenchmark_schema(record_size)
    return layout


def make_page(record_size=100, page_size=4096) -> PaxPage:
    return PaxPage(0, 0x4000_0000, make_layout(record_size), page_size=page_size)


class TestPaxPage:
    def test_capacity_matches_record_size(self):
        page = make_page(record_size=100, page_size=4096)
        assert page.capacity == (4096 - PAGE_HEADER_BYTES) // 100

    def test_insert_roundtrips_record_bytes(self):
        layout = make_layout()
        page = make_page()
        record = layout.encode((7, 42, 99))
        slot = page.insert(record)
        assert page.record_bytes(slot) == record
        assert layout.decode(bytes(page.record_view(slot))) == (7, 42, 99)

    def test_column_values_decode_from_minipages(self):
        layout = make_layout()
        page = make_page()
        for i in range(10):
            page.insert(layout.encode((i, i * 2, i * 3)))
        slots = list(page.live_slots())
        assert page.column_values("a2", slots) == [i * 2 for i in range(10)]
        assert page.column_values("a3", [3, 7]) == [9, 21]

    def test_minipage_values_are_contiguous(self):
        layout = make_layout()
        page = make_page()
        for i in range(5):
            page.insert(layout.encode((i, i, i)))
        base = page.column_address("a2")
        for slot in range(5):
            assert page.field_address(slot, layout.offset_of("a2")) == base + slot * 4
        address, span = page.column_span("a2", [1, 2, 3])
        assert address == base + 4
        assert span == 12

    def test_field_address_covers_padding_region(self):
        layout = make_layout(record_size=100)
        page = make_page()
        page.insert(layout.encode((1, 2, 3)))
        # Byte 50 lies in the anonymous filler; it must map into the padding
        # minipage, distinct for distinct slots.
        page.insert(layout.encode((4, 5, 6)))
        assert page.field_address(0, 50) != page.field_address(1, 50)
        with pytest.raises(PageError):
            page.field_address(0, 100)

    def test_delete_tombstones_and_update_in_place(self):
        layout = make_layout()
        page = make_page()
        for i in range(4):
            page.insert(layout.encode((i, i, i)))
        page.delete(2)
        assert list(page.live_slots()) == [0, 1, 3]
        assert not page.is_live(2)
        with pytest.raises(PageError):
            page.record_bytes(2)
        page.update_in_place(3, layout.encode((9, 9, 9)))
        assert layout.decode(page.record_bytes(3)) == (9, 9, 9)

    def test_page_full_raises(self):
        layout = make_layout(record_size=100)
        page = make_page(page_size=256)  # capacity 2
        page.insert(layout.encode((1, 1, 1)))
        page.insert(layout.encode((2, 2, 2)))
        assert not page.has_room_for(100)
        with pytest.raises(PageError):
            page.insert(layout.encode((3, 3, 3)))

    def test_wrong_record_size_rejected(self):
        page = make_page()
        with pytest.raises(PageError):
            page.insert(b"\x00" * 12)


class TestPaxHeapFile:
    def make_table(self, rows=300):
        catalog = Catalog()
        schema, _ = microbenchmark_schema(100, "R")
        table = catalog.create_table("R", schema, record_size=100,
                                     layout_style=PAGE_STYLE_PAX)
        table.insert_many((i, i % 40, i * 2) for i in range(rows))
        return catalog, table

    def test_heap_scan_preserves_insert_order(self):
        _, table = self.make_table()
        values = [table.heap.read_values(e.rid) for e in table.heap.scan()]
        assert values == [(i, i % 40, i * 2) for i in range(300)]

    def test_pages_are_pax_pages(self):
        _, table = self.make_table()
        for page, _slots in table.heap.scan_pages():
            assert isinstance(page, PaxPage)
            assert page.columnar

    def test_fetch_update_delete_through_rids(self):
        _, table = self.make_table(rows=50)
        rid = RecordId(0, 10)
        assert table.heap.read_values(rid) == (10, 10, 20)
        table.update(rid, (10, 10, 777))
        assert table.heap.read_values(rid) == (10, 10, 777)
        table.delete(rid)
        assert table.row_count == 49

    def test_index_over_pax_table(self):
        catalog, table = self.make_table()
        catalog.create_index("R", "a2")
        index = table.index_on("a2")
        matches = list(index.range_search(5, 5, include_low=True, include_high=True))
        assert {table.heap.read_values(m.rid)[0] for m in matches} \
            == {i for i in range(300) if i % 40 == 5}

    def test_unknown_layout_style_rejected(self):
        catalog = Catalog()
        schema, _ = microbenchmark_schema(100, "R")
        from repro.storage import HeapFileError
        with pytest.raises(HeapFileError):
            catalog.create_table("R", schema, record_size=100, layout_style="dsm")


class TestPaxCacheBehaviour:
    def test_pax_scan_misses_fewer_l2_lines_than_nsm(self):
        """A vectorized field scan over PAX touches only the needed
        minipages; over NSM it strides whole records -- the L2 data-miss
        gap is the PAX papers' headline effect."""
        import random

        def build(style):
            db = Database()
            columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
                       ("a3", ColumnType.INT32)]
            db.create_table("R", columns, record_size=100, layout_style=style)
            rng = random.Random(7)
            db.load("R", [(i, rng.randint(1, 50), rng.randint(0, 999))
                          for i in range(3000)])
            return db

        query = SelectionQuery(table="R", aggregates=(avg("a3"), count_star()),
                               predicate=range_predicate("a2", 5, 20))
        misses = {}
        for style in ("nsm", "pax"):
            session = Session(build(style), SYSTEM_B, os_interference=None,
                              engine="vectorized")
            result = session.execute(query, warmup_runs=0)
            misses[style] = result.counters.get("L2_DATA_MISS")
        assert misses["pax"] < 0.6 * misses["nsm"]
