"""Tests for the code layout, execution context, operators and executor."""

import pytest

from repro.execution import (CodeLayout, ExecutionContext, LINE_BYTES, build_plan,
                             execute_plan, execute_update)
from repro.execution.operators import OperatorError, row_value
from repro.hardware import SimulatedProcessor
from repro.query import (Planner, SelectionQuery, UpdateQuery, avg, count_star,
                         equals, range_predicate)
from repro.query.plans import (AggregatePlan, HashJoinPlan, IndexRangeScanPlan,
                               NestedLoopJoinPlan, SeqScanPlan)
from repro.storage import Catalog, microbenchmark_schema
from repro.systems import OPERATION_NAMES, SYSTEM_A, SYSTEM_B, SYSTEM_C


def make_catalog(rows=500) -> Catalog:
    catalog = Catalog()
    schema, _ = microbenchmark_schema(100, "R")
    table = catalog.create_table("R", schema, record_size=100)
    table.insert_many((i, i % 50 + 1, i * 2) for i in range(rows))
    schema_s, _ = microbenchmark_schema(100, "S")
    s = catalog.create_table("S", schema_s, record_size=100)
    s.insert_many((i, i * 3, i) for i in range(1, 51))
    catalog.create_index("R", "a2")
    catalog.create_index("S", "a1", unique=True)
    return catalog


def make_context(catalog, profile=SYSTEM_C) -> ExecutionContext:
    return ExecutionContext(SimulatedProcessor(), profile, catalog.address_space)


# ---------------------------------------------------------------------------
# Code layout
# ---------------------------------------------------------------------------
class TestCodeLayout:
    def test_every_operation_gets_a_segment_in_the_code_region(self):
        catalog = make_catalog(rows=10)
        layout = CodeLayout(SYSTEM_C, catalog.address_space)
        for operation in OPERATION_NAMES:
            segment = layout.segment(operation)
            assert len(segment.hot_lines) >= 1
            assert catalog.address_space.region_of(segment.base_address) == "code"
            assert all(addr % LINE_BYTES == 0 for addr in segment.hot_lines)

    def test_segments_do_not_overlap(self):
        catalog = make_catalog(rows=10)
        layout = CodeLayout(SYSTEM_C, catalog.address_space)
        lines = set()
        for operation in OPERATION_NAMES:
            segment_lines = set(layout.segment(operation).hot_lines)
            assert not (segment_lines & lines)
            lines |= segment_lines

    def test_hot_footprint_reflects_profile_code_bytes(self):
        catalog = make_catalog(rows=10)
        layout = CodeLayout(SYSTEM_C, catalog.address_space)
        segment = layout.segment("scan_next")
        expected_lines = -(-SYSTEM_C.cost("scan_next").code_bytes // LINE_BYTES)
        assert len(segment.hot_lines) == expected_lines

    def test_branch_sites_lie_inside_their_segment(self):
        catalog = make_catalog(rows=10)
        layout = CodeLayout(SYSTEM_B, catalog.address_space)
        segment = layout.segment("scan_next")
        for site in segment.branch_sites:
            assert segment.base_address <= site.address < segment.base_address + segment.hot_bytes

    def test_bulk_branches_complement_simulated_sites(self):
        catalog = make_catalog(rows=10)
        layout = CodeLayout(SYSTEM_B, catalog.address_space)
        segment = layout.segment("scan_next")
        total = round(segment.instructions * SYSTEM_B.branch_fraction)
        assert segment.bulk_branches + segment.simulated_branch_weight == total

    def test_unknown_operation_raises(self):
        catalog = make_catalog(rows=10)
        layout = CodeLayout(SYSTEM_B, catalog.address_space)
        with pytest.raises(KeyError):
            layout.segment("fly_to_the_moon")


# ---------------------------------------------------------------------------
# Execution context
# ---------------------------------------------------------------------------
class TestExecutionContext:
    def test_visit_charges_instructions_code_and_stalls(self):
        catalog = make_catalog(rows=10)
        ctx = make_context(catalog)
        ctx.visit("scan_next")
        counters = ctx.processor.counters
        cost = SYSTEM_C.cost("scan_next")
        assert counters.get("INST_RETIRED") == cost.instructions
        assert counters.get("IFU_IFETCH") > 0
        assert counters.get("DATA_MEM_REFS") >= cost.data_refs
        assert counters.get("BR_INST_RETIRED") == round(cost.instructions * SYSTEM_C.branch_fraction)
        assert counters.get("PARTIAL_RAT_STALLS") > 0
        assert counters.get("ILD_STALL") > 0

    def test_repeat_visits_scale_linearly(self):
        catalog = make_catalog(rows=10)
        ctx = make_context(catalog)
        ctx.visit("predicate", data_taken=True, repeat=10)
        cost = SYSTEM_C.cost("predicate")
        assert ctx.processor.counters.get("INST_RETIRED") == 10 * cost.instructions

    def test_workspace_touches_stay_in_workspace_region(self):
        catalog = make_catalog(rows=10)
        ctx = make_context(catalog)
        assert catalog.address_space.region_of(ctx.workspace_base) == "workspace"

    def test_cold_code_rotates_through_the_pool(self):
        catalog = make_catalog(rows=10)
        ctx = make_context(catalog)
        first = ctx._next_cold_lines(4)
        second = ctx._next_cold_lines(4)
        assert set(first).isdisjoint(second)
        assert all(catalog.address_space.region_of(a) == "code" for a in first)

    def test_fields_only_vs_full_record_access(self):
        catalog = make_catalog(rows=10)
        table = catalog.table("R")
        entry = next(table.heap.scan())

        ctx_b = make_context(catalog, SYSTEM_B)        # fields_only
        values = ctx_b.read_fields(entry, table.layout, ("a2", "a3"))
        assert values == {"a2": 1, "a3": 0}
        refs_fields_only = ctx_b.processor.counters.get("DCU_LINES_IN")

        ctx_c = make_context(catalog, SYSTEM_C)        # full_record
        ctx_c.read_fields(entry, table.layout, ("a2", "a3"))
        refs_full = ctx_c.processor.counters.get("DCU_LINES_IN")
        assert refs_full > refs_fields_only

    def test_data_branch_outcome_feeds_predictor(self):
        catalog = make_catalog(rows=10)
        ctx = make_context(catalog)
        # Alternate the predicate outcome: the data-dependent site will mispredict often.
        for i in range(200):
            ctx.visit("predicate", data_taken=bool(i % 2))
        rate_alternating = ctx.processor.branch_unit.stats.misprediction_rate
        ctx2 = make_context(catalog)
        for _ in range(200):
            ctx2.visit("predicate", data_taken=False)
        rate_constant = ctx2.processor.branch_unit.stats.misprediction_rate
        assert rate_alternating > rate_constant

    def test_record_done_counts_records(self):
        catalog = make_catalog(rows=10)
        ctx = make_context(catalog)
        ctx.record_done(3)
        assert ctx.processor.counters.get("RECORDS_PROCESSED") == 3


# ---------------------------------------------------------------------------
# Operators and executor
# ---------------------------------------------------------------------------
class TestExecutorCorrectness:
    def expected_avg(self, catalog, low, high):
        rows = [catalog.table("R").heap.read_values(e.rid) for e in catalog.table("R").heap.scan()]
        selected = [a3 for _, a2, a3 in rows if low < a2 < high]
        return sum(selected) / len(selected)

    def test_seq_scan_aggregate_matches_ground_truth(self):
        catalog = make_catalog()
        ctx = make_context(catalog, SYSTEM_A)
        plan = Planner(catalog, SYSTEM_A).plan(SelectionQuery(
            table="R", aggregates=(avg("a3"), count_star()),
            predicate=range_predicate("a2", 5, 16)))
        assert isinstance(plan.input, SeqScanPlan)
        rows = execute_plan(plan, catalog, ctx)
        assert rows[0]["avg(a3)"] == pytest.approx(self.expected_avg(catalog, 5, 16))
        assert rows[0]["count(*)"] == sum(1 for e in catalog.table("R").heap.scan()
                                          if 5 < catalog.table("R").heap.read_values(e.rid)[1] < 16)

    def test_index_scan_and_seq_scan_agree(self):
        catalog = make_catalog()
        query = SelectionQuery(table="R", aggregates=(avg("a3"),),
                               predicate=range_predicate("a2", 5, 10), prefer_index_on="a2")
        plan_b = Planner(catalog, SYSTEM_B).plan(query)
        plan_a = Planner(catalog, SYSTEM_A).plan(query)
        assert isinstance(plan_b.input, IndexRangeScanPlan)
        assert isinstance(plan_a.input, SeqScanPlan)
        result_b = execute_plan(plan_b, catalog, make_context(catalog, SYSTEM_B))
        result_a = execute_plan(plan_a, catalog, make_context(catalog, SYSTEM_A))
        assert result_b[0]["avg(a3)"] == pytest.approx(result_a[0]["avg(a3)"])

    def test_hash_join_matches_ground_truth(self):
        catalog = make_catalog()
        ctx = make_context(catalog, SYSTEM_B)
        from repro.query import JoinQuery
        plan = Planner(catalog, SYSTEM_B).plan(JoinQuery(
            left_table="R", right_table="S", left_column="a2", right_column="a1",
            aggregates=(avg("R.a3"), count_star())))
        assert isinstance(plan.input, HashJoinPlan)
        rows = execute_plan(plan, catalog, ctx)
        r_rows = [catalog.table("R").heap.read_values(e.rid) for e in catalog.table("R").heap.scan()]
        s_keys = {catalog.table("S").heap.read_values(e.rid)[0] for e in catalog.table("S").heap.scan()}
        matching = [a3 for _, a2, a3 in r_rows if a2 in s_keys]
        assert rows[0]["count(*)"] == len(matching)
        assert rows[0]["avg(R.a3)"] == pytest.approx(sum(matching) / len(matching))

    def test_nested_loop_join_agrees_with_hash_join(self):
        catalog = make_catalog(rows=120)
        from repro.query import JoinQuery
        from repro.query.planner import DefaultPolicy
        query = JoinQuery(left_table="R", right_table="S", left_column="a2",
                          right_column="a1", aggregates=(count_star(),))
        hash_plan = Planner(catalog, DefaultPolicy(join_algorithm="hash")).plan(query)
        nl_plan = Planner(catalog, DefaultPolicy(join_algorithm="nested_loop")).plan(query)
        assert isinstance(nl_plan.input, NestedLoopJoinPlan)
        hash_count = execute_plan(hash_plan, catalog, make_context(catalog))[0]["count(*)"]
        nl_count = execute_plan(nl_plan, catalog, make_context(catalog))[0]["count(*)"]
        assert hash_count == nl_count

    def test_index_nested_loop_join_agrees(self):
        catalog = make_catalog(rows=120)
        from repro.query import JoinQuery
        from repro.query.planner import DefaultPolicy
        query = JoinQuery(left_table="R", right_table="S", left_column="a2",
                          right_column="a1", aggregates=(count_star(),))
        inl_plan = Planner(catalog, DefaultPolicy(join_algorithm="index_nested_loop")).plan(query)
        hash_plan = Planner(catalog, DefaultPolicy(join_algorithm="hash")).plan(query)
        assert execute_plan(inl_plan, catalog, make_context(catalog))[0]["count(*)"] == \
            execute_plan(hash_plan, catalog, make_context(catalog))[0]["count(*)"]

    def test_update_through_index(self):
        catalog = make_catalog(rows=100)
        ctx = make_context(catalog, SYSTEM_B)
        plan = Planner(catalog, SYSTEM_B).plan(UpdateQuery(
            table="S", key_column="a1", key_value=7, set_column="a3", set_value=999))
        updated = execute_update(plan, catalog, ctx)
        assert updated == 1
        rows = [catalog.table("S").heap.read_values(e.rid)
                for e in catalog.table("S").heap.scan()]
        assert any(row == (7, 21, 999) for row in rows)

    def test_execution_charges_query_setup_once(self):
        catalog = make_catalog(rows=50)
        ctx = make_context(catalog, SYSTEM_A)
        plan = Planner(catalog, SYSTEM_A).plan(SelectionQuery(
            table="R", aggregates=(count_star(),), predicate=None))
        execute_plan(plan, catalog, ctx)
        setup = SYSTEM_A.cost("query_setup").instructions
        assert ctx.processor.counters.get("INST_RETIRED") >= setup

    def test_records_processed_counts_scanned_rows(self):
        catalog = make_catalog(rows=200)
        ctx = make_context(catalog, SYSTEM_A)
        plan = Planner(catalog, SYSTEM_A).plan(SelectionQuery(
            table="R", aggregates=(count_star(),), predicate=range_predicate("a2", 0, 10)))
        execute_plan(plan, catalog, ctx)
        assert ctx.processor.counters.get("RECORDS_PROCESSED") == 200

    def test_row_value_qualified_lookup(self):
        assert row_value({"a3": 5}, "R.a3") == 5
        with pytest.raises(OperatorError):
            row_value({"a3": 5}, "R.a9")
