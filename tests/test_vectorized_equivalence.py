"""Differential harness: the vectorized engine must be indistinguishable
from the tuple engine at the result level, and span charging must be
indistinguishable from per-address charging at the hardware level.

Every planner-producible plan shape (sequential scan, index range and point
access, nested-loop / index-nested-loop / hash joins, scalar aggregation,
point update) is executed under both engines on seeded random tables, and
the harness asserts row-for-row identical results (same rows, same order)
and identical ``query_setup`` charge counts.  Batch sizes of 1 (degenerate:
every batch is one record), a prime (batches straddle page boundaries
unevenly) and the default 256 are exercised throughout.

The charge-mode half replays the same plans under ``charge_mode="span"``
(bulk strided cache/TLB operations, the simulation fast path) and
``charge_mode="per_address"`` (one probe per address, the reference) on
identically seeded databases and asserts *identical* cache and TLB hit+miss
counts, identical event counters and identical result rows -- span charging
must be a pure simulator optimisation, never a model change.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import Database, Session
from repro.execution import ExecutionContext, execute_plan, execute_update
from repro.hardware import SimulatedProcessor
from repro.query import (ExecutionConfig, JoinQuery, Planner, SelectionQuery,
                         UpdateQuery, avg, count_star, equals, range_predicate)
from repro.query.planner import DefaultPolicy
from repro.query.plans import (AggregatePlan, HashJoinPlan, IndexPointLookupPlan,
                               IndexRangeScanPlan, SeqScanPlan, UpdatePlan)
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_B, SYSTEM_C

BATCH_SIZES = (1, 7, 256)

R_ROWS = 420
S_ROWS = 40
A2_DOMAIN = 60


def build_database(layout_style: str = "nsm", seed: int = 42) -> Database:
    """Seeded random R (with index on a2) and S (unique index on a1)."""
    db = Database()
    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=100, layout_style=layout_style)
    db.create_table("S", columns, record_size=100, layout_style=layout_style)
    rng = random.Random(seed)
    db.load("R", [(i + 1, rng.randint(1, A2_DOMAIN), rng.randint(0, 9_999))
                  for i in range(R_ROWS)])
    db.load("S", [(i + 1, rng.randint(1, A2_DOMAIN), rng.randint(0, 9_999))
                  for i in range(S_ROWS)])
    db.create_index("R", "a2")
    db.create_index("S", "a1", unique=True)
    return db


@pytest.fixture(scope="module")
def database() -> Database:
    return build_database()


def make_context(db: Database, profile=SYSTEM_B) -> ExecutionContext:
    return ExecutionContext(SimulatedProcessor(), profile, db.address_space)


def run_both(db: Database, plan, batch_size: int, profile=SYSTEM_B):
    """Execute one plan under both engines; assert the differential contract."""
    ctx_tuple = make_context(db, profile)
    ctx_vec = make_context(db, profile)
    rows_tuple = execute_plan(plan, db.catalog, ctx_tuple)
    rows_vec = execute_plan(plan, db.catalog, ctx_vec,
                            execution=ExecutionConfig(engine="vectorized",
                                                      batch_size=batch_size))
    assert rows_vec == rows_tuple
    assert (ctx_vec.op_invocations.get("query_setup")
            == ctx_tuple.op_invocations.get("query_setup") == 1)
    return rows_tuple, ctx_tuple, ctx_vec


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_seq_scan_without_predicate(database, batch_size):
    plan = SeqScanPlan(table="R", predicate=None)
    rows, _, _ = run_both(database, plan, batch_size)
    assert rows == [{}] * R_ROWS  # no output columns requested: empty rows


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_seq_scan_with_predicate(database, batch_size):
    plan = SeqScanPlan(table="R", predicate=range_predicate("a2", 10, 30))
    rows, _, _ = run_both(database, plan, batch_size)
    assert rows  # the window selects something at this seed
    assert all(10 < row["a2"] < 30 for row in rows)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_aggregate_over_seq_scan(database, batch_size):
    plan = Planner(database.catalog, SYSTEM_C).plan(SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=range_predicate("a2", 5, 25)))
    assert isinstance(plan.input, SeqScanPlan)
    run_both(database, plan, batch_size, profile=SYSTEM_C)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_index_range_scan(database, batch_size):
    plan = IndexRangeScanPlan(table="R", column="a2", low=10, high=30)
    rows, _, _ = run_both(database, plan, batch_size)
    assert rows
    assert all(10 < row["a2"] < 30 for row in rows)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_index_range_scan_with_residual_predicate(database, batch_size):
    plan = IndexRangeScanPlan(table="R", column="a2", low=5, high=45,
                              residual_predicate=range_predicate("a3", 1000, 9000))
    rows, _, _ = run_both(database, plan, batch_size)
    assert all(1000 < row["a3"] < 9000 for row in rows)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_aggregate_over_index_range_scan(database, batch_size):
    plan = Planner(database.catalog, SYSTEM_B).plan(SelectionQuery(
        table="R", aggregates=(avg("a3"),),
        predicate=range_predicate("a2", 10, 20), prefer_index_on="a2"))
    assert isinstance(plan.input, IndexRangeScanPlan)
    run_both(database, plan, batch_size)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_index_point_lookup(database, batch_size):
    plan = IndexPointLookupPlan(table="S", column="a1", value=7)
    rows, _, _ = run_both(database, plan, batch_size)
    assert len(rows) == 1 and rows[0]["a1"] == 7


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------
JOIN_QUERY = JoinQuery(left_table="R", right_table="S", left_column="a2",
                       right_column="a1", aggregates=(avg("R.a3"), count_star()))


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("algorithm", ["hash", "nested_loop", "index_nested_loop"])
def test_joins_under_every_algorithm(database, algorithm, batch_size):
    plan = Planner(database.catalog,
                   DefaultPolicy(join_algorithm=algorithm)).plan(JOIN_QUERY)
    rows, _, _ = run_both(database, plan, batch_size)
    assert rows[0]["count(*)"] > 0


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_bare_hash_join_rows_match_in_order(database, batch_size):
    plan = Planner(database.catalog,
                   DefaultPolicy(join_algorithm="hash")).plan(JOIN_QUERY)
    join_plan = plan.input
    assert isinstance(join_plan, HashJoinPlan)
    rows, _, _ = run_both(database, join_plan, batch_size)
    assert len(rows) > 0


def test_join_results_agree_across_algorithms(database):
    counts = set()
    for algorithm in ("hash", "nested_loop", "index_nested_loop"):
        plan = Planner(database.catalog,
                       DefaultPolicy(join_algorithm=algorithm)).plan(JOIN_QUERY)
        rows, _, _ = run_both(database, plan, 64)
        counts.add(rows[0]["count(*)"])
    assert len(counts) == 1


# ---------------------------------------------------------------------------
# Updates (each engine gets its own identically seeded database)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_update_produces_identical_table_state(batch_size):
    results = {}
    for engine in ("tuple", "vectorized"):
        db = build_database()
        ctx = make_context(db)
        plan = Planner(db.catalog, SYSTEM_B).plan(UpdateQuery(
            table="S", key_column="a1", key_value=11,
            set_column="a3", set_value=-5))
        execution = (ExecutionConfig(engine="vectorized", batch_size=batch_size)
                     if engine == "vectorized" else None)
        updated = execute_update(plan, db.catalog, ctx, execution=execution)
        table = db.table("S")
        contents = [table.heap.read_values(e.rid) for e in table.heap.scan()]
        results[engine] = (updated, contents, ctx.op_invocations.get("query_setup"))
    assert results["tuple"] == results["vectorized"]
    assert results["tuple"][0] == 1


# ---------------------------------------------------------------------------
# The point of the exercise: strictly fewer interpreted invocations
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["hash", "nested_loop", "index_nested_loop"])
def test_vectorized_charges_strictly_fewer_invocations(database, algorithm):
    plan = Planner(database.catalog,
                   DefaultPolicy(join_algorithm=algorithm)).plan(JOIN_QUERY)
    _, ctx_tuple, ctx_vec = run_both(database, plan, 256)
    assert ctx_vec.total_invocations() < ctx_tuple.total_invocations()


def test_vectorized_scan_charges_strictly_fewer_invocations(database):
    plan = Planner(database.catalog, SYSTEM_C).plan(SelectionQuery(
        table="R", aggregates=(count_star(),),
        predicate=range_predicate("a2", 1, 50)))
    _, ctx_tuple, ctx_vec = run_both(database, plan, 256, profile=SYSTEM_C)
    assert ctx_vec.total_invocations() < ctx_tuple.total_invocations()


# ---------------------------------------------------------------------------
# Engines agree on PAX tables too (layout and engine are orthogonal axes)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("batch_size", (7, 256))
def test_differential_contract_holds_on_pax_layout(batch_size):
    db = build_database(layout_style="pax")
    plan = Planner(db.catalog, SYSTEM_B).plan(SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=range_predicate("a2", 10, 40)))
    run_both(db, plan, batch_size)


def test_pax_and_nsm_return_identical_results():
    for engine in ("tuple", "vectorized"):
        rows = {}
        for style in ("nsm", "pax"):
            db = build_database(layout_style=style)
            session = Session(db, SYSTEM_B, os_interference=None, engine=engine)
            result = session.execute(SelectionQuery(
                table="R", aggregates=(avg("a3"), count_star()),
                predicate=range_predicate("a2", 10, 40)), warmup_runs=0)
            rows[style] = result.rows
        assert rows["nsm"] == rows["pax"]


# ---------------------------------------------------------------------------
# Morsel parallelism: identical rows and counts for every worker count
# (the full per-shape matrix lives in tests/test_parallel_execution.py)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("layout_style", ("nsm", "pax"))
def test_parallel_workers_match_serial_engine(layout_style):
    outcomes = {}
    for workers in (1, 3):
        db = build_database(layout_style=layout_style)
        session = Session(db, SYSTEM_B, os_interference=None,
                          engine="vectorized", parallelism=workers,
                          parallel_backend="inline", morsel_pages=1)
        result = session.execute(SelectionQuery(
            table="R", aggregates=(avg("a3"), count_star()),
            predicate=range_predicate("a2", 10, 40)), warmup_runs=0)
        outcomes[workers] = (result.rows,
                             result.counters.get("CPU_CLK_UNHALTED"),
                             hardware_counts(session.processor))
        session.close()
    assert outcomes[3] == outcomes[1]


# ---------------------------------------------------------------------------
# Span charging vs per-address charging: identical hardware counts
# ---------------------------------------------------------------------------
def hardware_counts(processor: SimulatedProcessor) -> dict:
    """Every cache/TLB access, hit and miss count plus the event counters."""
    snap = processor.caches.snapshot()
    return {
        "l1d": snap.l1d, "l1i": snap.l1i, "l2": snap.l2,
        "dtlb": processor.dtlb.stats.as_dict(),
        "itlb": processor.itlb.stats.as_dict(),
        "branch": processor.branch_unit.stats.as_dict(),
        "user": dict(processor.counters.user),
        "sup": dict(processor.counters.sup),
    }


def run_charge_modes(plan_factory, layout_style: str, engine: str = "vectorized",
                     batch_size: int = 256, profile=SYSTEM_B):
    """Execute one plan under both charge modes on identically seeded
    databases; assert identical rows and identical hardware counts."""
    outcomes = {}
    for mode in ("per_address", "span"):
        db = build_database(layout_style=layout_style)
        processor = SimulatedProcessor()
        ctx = ExecutionContext(processor, profile, db.address_space,
                               charge_mode=mode)
        plan = plan_factory(db)
        execution = ExecutionConfig(engine=engine, batch_size=batch_size,
                                    charge_mode=mode)
        if isinstance(plan, UpdatePlan):
            rows = [{"updated": execute_update(plan, db.catalog, ctx,
                                               execution=execution)}]
        else:
            rows = execute_plan(plan, db.catalog, ctx, execution=execution)
        processor.finalize()
        outcomes[mode] = (rows, hardware_counts(processor))
    rows_span, counts_span = outcomes["span"]
    rows_ref, counts_ref = outcomes["per_address"]
    assert rows_span == rows_ref
    assert counts_span == counts_ref
    return rows_span


CHARGE_MODE_PLANS = {
    "seq_scan": lambda db: SeqScanPlan(table="R",
                                       predicate=range_predicate("a2", 10, 30)),
    "seq_scan_bare": lambda db: SeqScanPlan(table="R", predicate=None),
    "agg_seq_scan": lambda db: Planner(db.catalog, SYSTEM_C).plan(
        SelectionQuery(table="R", aggregates=(avg("a3"), count_star()),
                       predicate=range_predicate("a2", 5, 25))),
    "index_range": lambda db: IndexRangeScanPlan(
        table="R", column="a2", low=5, high=45,
        residual_predicate=range_predicate("a3", 1000, 9000)),
    "agg_index_range": lambda db: Planner(db.catalog, SYSTEM_B).plan(
        SelectionQuery(table="R", aggregates=(avg("a3"),),
                       predicate=range_predicate("a2", 10, 20),
                       prefer_index_on="a2")),
    "point_lookup": lambda db: IndexPointLookupPlan(table="S", column="a1", value=7),
    "hash_join": lambda db: Planner(db.catalog,
                                    DefaultPolicy(join_algorithm="hash")).plan(JOIN_QUERY),
    "nested_loop_join": lambda db: Planner(
        db.catalog, DefaultPolicy(join_algorithm="nested_loop")).plan(JOIN_QUERY),
    "index_nested_loop_join": lambda db: Planner(
        db.catalog, DefaultPolicy(join_algorithm="index_nested_loop")).plan(JOIN_QUERY),
    "update": lambda db: Planner(db.catalog, SYSTEM_B).plan(UpdateQuery(
        table="S", key_column="a1", key_value=11, set_column="a3", set_value=-5)),
}


@pytest.mark.parametrize("layout_style", ("nsm", "pax"))
@pytest.mark.parametrize("shape", sorted(CHARGE_MODE_PLANS))
def test_span_charging_is_count_identical_vectorized(shape, layout_style):
    factory = CHARGE_MODE_PLANS[shape]
    profile = SYSTEM_C if shape == "agg_seq_scan" else SYSTEM_B
    run_charge_modes(factory, layout_style, engine="vectorized", profile=profile)


@pytest.mark.parametrize("layout_style", ("nsm", "pax"))
@pytest.mark.parametrize("shape", ("agg_seq_scan", "hash_join", "update"))
def test_span_charging_is_count_identical_tuple_engine(shape, layout_style):
    """The fast path also backs the tuple engine's workspace/record charges."""
    factory = CHARGE_MODE_PLANS[shape]
    profile = SYSTEM_C if shape == "agg_seq_scan" else SYSTEM_B
    run_charge_modes(factory, layout_style, engine="tuple", profile=profile)


@pytest.mark.parametrize("batch_size", (1, 7))
def test_span_charging_count_identical_at_odd_batch_sizes(batch_size):
    run_charge_modes(CHARGE_MODE_PLANS["agg_seq_scan"], "pax",
                     engine="vectorized", batch_size=batch_size,
                     profile=SYSTEM_C)
