"""Property tests for the columnar batch dataflow and the span-charging
fast path.

Covers the edge cases the differential harness's fixed seeds might miss:
empty batches and empty tables, batch size 1, ``None`` values inside
vectors, duplicate column names across join sides (dict-merge semantics),
column order stability through gather/merge/materialization, and -- via
hypothesis -- the count-identity of the bulk strided/span hardware charging
against per-address probing for arbitrary geometries (including elements
that straddle cache lines and pages).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Database
from repro.execution import (ColumnBatch, ExecutionContext, OperatorError,
                             execute_plan, merge_gather)
from repro.hardware import SimulatedProcessor
from repro.query import (ExecutionConfig, Planner, SelectionQuery, avg,
                         count_star, range_predicate)
from repro.query.plans import HashJoinPlan, SeqScanPlan
from repro.storage.schema import ColumnType
from repro.systems import SYSTEM_B

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# ColumnBatch invariants
# ---------------------------------------------------------------------------
class TestColumnBatch:
    def test_empty_batch_materializes_no_rows(self):
        assert ColumnBatch({}, 0).to_rows() == []
        assert ColumnBatch({"a": []}).to_rows() == []

    def test_projection_free_batch_keeps_row_count(self):
        batch = ColumnBatch({}, 5)
        assert len(batch) == 5
        assert batch.to_rows() == [{}] * 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(OperatorError):
            ColumnBatch({"a": [1, 2], "b": [1]})

    def test_none_values_survive_gather_and_materialization(self):
        batch = ColumnBatch({"a": [1, None, 3], "b": [None, None, "x"]})
        assert batch.to_rows() == [{"a": 1, "b": None},
                                   {"a": None, "b": None},
                                   {"a": 3, "b": "x"}]
        gathered = batch.gather([2, 0])
        assert gathered.to_rows() == [{"a": 3, "b": "x"}, {"a": 1, "b": None}]

    def test_column_order_is_stable_through_gather(self):
        batch = ColumnBatch({"z": [1, 2], "a": [3, 4], "m": [5, 6]})
        assert batch.column_names() == ("z", "a", "m")
        assert batch.gather([1]).column_names() == ("z", "a", "m")
        assert list(batch.to_rows()[0]) == ["z", "a", "m"]

    def test_vector_accepts_qualified_names(self):
        batch = ColumnBatch({"a2": [7]})
        assert batch.vector("R.a2") == [7]
        with pytest.raises(OperatorError):
            batch.vector("R.missing")

    def test_batch_of_one_row(self):
        batch = ColumnBatch({"a": [42]})
        assert len(batch) == 1
        assert batch.row(0) == {"a": 42}
        assert batch.to_rows() == [{"a": 42}]


class TestMergeGather:
    def test_duplicate_columns_take_right_values_at_left_position(self):
        """dict(build_row); update(probe_row): shared names keep the left
        (build) position but carry the right (probe) value."""
        left = ColumnBatch({"a": [1, 2], "shared": [10, 20]})
        right = ColumnBatch({"shared": [77, 88], "b": [5, 6]})
        merged = merge_gather(left, [0, 1], right, [1, 0])
        assert merged.column_names() == ("a", "shared", "b")
        assert merged.to_rows() == [{"a": 1, "shared": 88, "b": 6},
                                    {"a": 2, "shared": 77, "b": 5}]

    def test_mismatched_position_lists_rejected(self):
        with pytest.raises(OperatorError):
            merge_gather(ColumnBatch({"a": [1]}), [0],
                         ColumnBatch({"b": [2]}), [0, 0])


# ---------------------------------------------------------------------------
# Engine-level edge cases
# ---------------------------------------------------------------------------
def build_db(rows, layout_style="nsm"):
    db = Database()
    columns = [("a1", ColumnType.INT32), ("a2", ColumnType.INT32),
               ("a3", ColumnType.INT32)]
    db.create_table("R", columns, record_size=60, layout_style=layout_style)
    db.create_table("S", columns, record_size=60, layout_style=layout_style)
    db.load("R", rows)
    db.load("S", rows[: max(len(rows) // 4, 1)] if rows else [])
    return db


def run_engines(db, plan, batch_size=256):
    results = {}
    for engine in ("tuple", "vectorized"):
        ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space)
        execution = (ExecutionConfig(engine="vectorized", batch_size=batch_size)
                     if engine == "vectorized" else None)
        results[engine] = execute_plan(plan, db.catalog, ctx, execution=execution)
    assert results["vectorized"] == results["tuple"]
    return results["tuple"]


@pytest.mark.parametrize("layout_style", ("nsm", "pax"))
def test_empty_table_yields_empty_batches_everywhere(layout_style):
    db = build_db([], layout_style=layout_style)
    plan = Planner(db.catalog, SYSTEM_B).plan(SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=range_predicate("a2", 1, 50)))
    rows = run_engines(db, plan)
    assert rows == [{"avg(a3)": None, "count(*)": 0}]


def test_duplicate_output_columns_across_join_sides_match_tuple_engine():
    """Both sides of the join carry a column named ``a3``; the probe side's
    value must win, exactly as the tuple engine's dict merge decides."""
    rows = [(i + 1, (i % 7) + 1, i * 11) for i in range(50)]
    db = build_db(rows)
    plan = HashJoinPlan(probe=SeqScanPlan(table="R", predicate=None),
                        build=SeqScanPlan(table="S", predicate=None),
                        probe_column="a2", build_column="a1")
    # Request the ambiguous unqualified column from both sides.
    from repro.execution import build_vectorized_join, build_join
    out = {}
    for engine in ("tuple", "vectorized"):
        ctx = ExecutionContext(SimulatedProcessor(), SYSTEM_B, db.address_space)
        if engine == "tuple":
            operator = build_join(plan, db.catalog, ctx, output_columns=["a3"])
        else:
            operator = build_vectorized_join(plan, db.catalog, ctx,
                                             output_columns=["a3"])
        out[engine] = list(operator.rows())
    assert out["tuple"] == out["vectorized"]
    assert out["tuple"], "the join must produce rows for this check to bite"
    # a3 appears once per row and carries the probe (R) side's value, which
    # is a multiple of 11 by construction.
    for row in out["tuple"]:
        assert row["a3"] % 11 == 0


@SETTINGS
@given(row_count=st.integers(min_value=0, max_value=60),
       batch_size=st.sampled_from([1, 2, 3, 17, 256]),
       layout_style=st.sampled_from(["nsm", "pax"]),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_columnar_engine_matches_tuple_engine_on_random_tables(
        row_count, batch_size, layout_style, seed):
    rng = random.Random(seed)
    rows = [(i + 1, rng.randint(1, 10), rng.randint(0, 99))
            for i in range(row_count)]
    db = build_db(rows, layout_style=layout_style)
    plan = Planner(db.catalog, SYSTEM_B).plan(SelectionQuery(
        table="R", aggregates=(avg("a3"), count_star()),
        predicate=range_predicate("a2", 2, 9)))
    run_engines(db, plan, batch_size=batch_size)


# ---------------------------------------------------------------------------
# Span charging == per-address charging for arbitrary geometries
# ---------------------------------------------------------------------------
def full_counts(processor):
    snap = processor.caches.snapshot()
    return (snap.l1d, snap.l1i, snap.l2, processor.dtlb.stats.as_dict(),
            processor.itlb.stats.as_dict(), dict(processor.counters.user))


@SETTINGS
@given(base=st.integers(min_value=0, max_value=1 << 22),
       stride=st.integers(min_value=1, max_value=512),
       count=st.integers(min_value=0, max_value=300),
       width=st.integers(min_value=1, max_value=64),
       prelude=st.lists(st.integers(min_value=0, max_value=1 << 22),
                        max_size=20))
def test_data_read_strided_is_count_identical_to_scalar_loop(
        base, stride, count, width, prelude):
    """Bulk strided reads must leave every cache, TLB and counter in exactly
    the state a per-address loop produces -- including elements that cross
    line and page boundaries, and starting from a warmed, arbitrary state."""
    bulk = SimulatedProcessor()
    scalar = SimulatedProcessor()
    for processor in (bulk, scalar):
        for addr in prelude:
            processor.data_read(addr, 4)
    bulk.data_read_strided(base, stride, count, width)
    for position in range(count):
        scalar.data_read(base + position * stride, width)
    assert full_counts(bulk) == full_counts(scalar)


@SETTINGS
@given(base=st.integers(min_value=0, max_value=1 << 22),
       refs=st.integers(min_value=1, max_value=200),
       width=st.integers(min_value=1, max_value=64))
def test_data_read_span_matches_per_element_loads(base, refs, width):
    """A contiguous span of ``refs`` ``width``-byte elements charges exactly
    like ``refs`` individual element loads."""
    bulk = SimulatedProcessor()
    scalar = SimulatedProcessor()
    bulk.data_read_span(base, refs * width, refs=refs)
    for position in range(refs):
        scalar.data_read(base + position * width, width)
    assert full_counts(bulk) == full_counts(scalar)
