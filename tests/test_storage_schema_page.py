"""Tests for schemas, record layouts, slotted pages and the address space."""

import pytest

from repro.storage.address_space import AddressSpace, AddressSpaceError
from repro.storage.page import PAGE_HEADER_BYTES, PageError, RecordId, SlottedPage
from repro.storage.schema import (Column, ColumnType, RecordLayout, Schema, SchemaError,
                                  microbenchmark_schema)


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        space = AddressSpace()
        regions = space.regions()
        spans = sorted((r.base, r.end) for r in regions.values())
        for (b1, e1), (b2, _) in zip(spans, spans[1:]):
            assert e1 <= b2

    def test_allocation_is_aligned_and_monotonic(self):
        space = AddressSpace()
        a = space.allocate("heap", 100, alignment=64)
        b = space.allocate("heap", 100, alignment=64)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 100

    def test_region_of(self):
        space = AddressSpace()
        addr = space.allocate("index", 10)
        assert space.region_of(addr) == "index"
        assert space.region_of(0) is None

    def test_unknown_region_raises(self):
        with pytest.raises(AddressSpaceError):
            AddressSpace().allocate("not-a-region", 10)

    def test_exhaustion_raises(self):
        space = AddressSpace(region_size=1024)
        space.allocate("heap", 1024)
        with pytest.raises(AddressSpaceError):
            space.allocate("heap", 1)

    def test_bad_alignment_raises(self):
        with pytest.raises(AddressSpaceError):
            AddressSpace().allocate("heap", 10, alignment=3)


class TestSchema:
    def test_microbenchmark_schema_layout(self):
        schema, layout = microbenchmark_schema(100)
        assert schema.column_names() == ("a1", "a2", "a3")
        assert layout.record_size == 100
        assert layout.offsets == (0, 4, 8)
        assert layout.packed_size == 12
        assert layout.padding_bytes == 88

    def test_record_size_smaller_than_fields_rejected(self):
        schema, _ = microbenchmark_schema(100)
        with pytest.raises(SchemaError):
            RecordLayout.build(schema, record_size=8)
        with pytest.raises(SchemaError):
            microbenchmark_schema(8)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(Column("a"), Column("a"))

    def test_char_column_requires_width(self):
        with pytest.raises(SchemaError):
            Column("name", ColumnType.CHAR)

    def test_encode_decode_roundtrip(self):
        schema = Schema.of(Column("k", ColumnType.INT32), Column("v", ColumnType.INT64),
                           Column("x", ColumnType.FLOAT64), Column("s", ColumnType.CHAR, width=8))
        layout = RecordLayout.build(schema, record_size=64)
        values = (7, 1 << 40, 2.5, "hello")
        data = layout.encode(values)
        assert len(data) == 64
        assert layout.decode(data) == values

    def test_decode_single_column(self):
        _, layout = microbenchmark_schema(100)
        data = layout.encode((1, 2, 3))
        assert layout.decode_column(data, "a2") == 2
        assert layout.decode_column(data, "a3") == 3

    def test_field_slice(self):
        _, layout = microbenchmark_schema(100)
        assert layout.field_slice("a2") == (4, 4)

    def test_encode_wrong_arity_rejected(self):
        _, layout = microbenchmark_schema(100)
        with pytest.raises(SchemaError):
            layout.encode((1, 2))

    def test_index_of_unknown_column(self):
        schema, _ = microbenchmark_schema(100)
        with pytest.raises(SchemaError):
            schema.index_of("nope")


class TestSlottedPage:
    def make_page(self, page_size=8192) -> SlottedPage:
        return SlottedPage(page_number=3, base_address=0x2000_0000, page_size=page_size)

    def test_insert_and_read_back(self):
        page = self.make_page()
        slot = page.insert(b"x" * 100)
        assert page.record_bytes(slot) == b"x" * 100
        assert page.live_records == 1

    def test_slot_and_field_addresses(self):
        page = self.make_page()
        s0 = page.insert(b"a" * 100)
        s1 = page.insert(b"b" * 100)
        assert page.slot_address(s0) == 0x2000_0000 + PAGE_HEADER_BYTES
        assert page.slot_address(s1) == page.slot_address(s0) + 100
        assert page.field_address(s1, 8) == page.slot_address(s1) + 8

    def test_capacity_enforced(self):
        page = self.make_page(page_size=512)
        inserted = 0
        with pytest.raises(PageError):
            while True:
                page.insert(b"r" * 100)
                inserted += 1
        assert 1 <= inserted <= 4
        assert page.live_records == inserted

    def test_delete_tombstones_and_preserves_other_slots(self):
        page = self.make_page()
        s0 = page.insert(b"a" * 10)
        s1 = page.insert(b"b" * 10)
        page.delete(s0)
        assert not page.is_live(s0)
        assert page.record_bytes(s1) == b"b" * 10
        assert list(page.live_slots()) == [s1]
        with pytest.raises(PageError):
            page.record_bytes(s0)

    def test_update_in_place_requires_same_size(self):
        page = self.make_page()
        slot = page.insert(b"a" * 10)
        page.update_in_place(slot, b"c" * 10)
        assert page.record_bytes(slot) == b"c" * 10
        with pytest.raises(PageError):
            page.update_in_place(slot, b"too long" * 10)

    def test_invalid_slot_rejected(self):
        page = self.make_page()
        with pytest.raises(PageError):
            page.record_bytes(0)

    def test_dirty_flag(self):
        page = self.make_page()
        assert page.dirty is False
        page.insert(b"a")
        assert page.dirty is True

    def test_free_space_decreases_monotonically(self):
        page = self.make_page()
        previous = page.free_space()
        for _ in range(5):
            page.insert(b"z" * 50)
            assert page.free_space() < previous
            previous = page.free_space()
