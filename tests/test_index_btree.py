"""Tests for the non-clustered B+-tree index."""

import random

import pytest

from repro.index.btree import BTreeError, BTreeIndex
from repro.storage.address_space import AddressSpace
from repro.storage.page import RecordId


def make_index(**kwargs) -> BTreeIndex:
    return BTreeIndex("test_idx", AddressSpace(), **kwargs)


def rid(i: int) -> RecordId:
    return RecordId(i // 100, i % 100)


class TestInsertSearch:
    def test_insert_and_exact_search(self):
        index = make_index(leaf_capacity=4, internal_capacity=4)
        for i in range(100):
            index.insert(i, rid(i))
        for i in (0, 17, 55, 99):
            assert index.search(i) == [rid(i)]
        assert index.search(1000) == []
        index.check_invariants()

    def test_duplicate_keys_supported(self):
        index = make_index(leaf_capacity=4, internal_capacity=4)
        for i in range(30):
            index.insert(i % 5, rid(i))
        assert len(index.search(3)) == 6
        index.check_invariants()

    def test_unique_index_rejects_duplicates(self):
        index = make_index(unique=True)
        index.insert(1, rid(1))
        with pytest.raises(BTreeError):
            index.insert(1, rid(2))

    def test_height_grows_with_inserts(self):
        index = make_index(leaf_capacity=4, internal_capacity=4)
        for i in range(200):
            index.insert(i, rid(i))
        assert index.height >= 3
        assert index.entry_count == 200
        index.check_invariants()

    def test_random_insert_order_stays_sorted(self):
        index = make_index(leaf_capacity=8, internal_capacity=8)
        keys = list(range(500))
        random.Random(5).shuffle(keys)
        for key in keys:
            index.insert(key, rid(key))
        assert index.keys_in_order() == sorted(keys)
        index.check_invariants()


class TestBulkLoad:
    def test_bulk_load_builds_searchable_tree(self):
        index = make_index(leaf_capacity=16, internal_capacity=16)
        index.bulk_load((i % 40, rid(i)) for i in range(1000))
        index.check_invariants()
        assert index.entry_count == 1000
        assert len(index.search(7)) == 25

    def test_bulk_load_requires_empty_index(self):
        index = make_index()
        index.insert(1, rid(1))
        with pytest.raises(BTreeError):
            index.bulk_load([(2, rid(2))])

    def test_bulk_load_unique_duplicate_rejected(self):
        index = make_index(unique=True)
        with pytest.raises(BTreeError):
            index.bulk_load([(1, rid(1)), (1, rid(2))])

    def test_bulk_load_empty_input(self):
        index = make_index()
        index.bulk_load([])
        assert len(index) == 0
        assert index.search(1) == []

    def test_insert_after_bulk_load(self):
        index = make_index(leaf_capacity=8, internal_capacity=8)
        index.bulk_load((i, rid(i)) for i in range(100))
        index.insert(1000, rid(1000))
        assert index.search(1000) == [rid(1000)]
        index.check_invariants()


class TestRangeSearch:
    def test_range_bounds_inclusive_exclusive(self):
        index = make_index()
        index.bulk_load((i, rid(i)) for i in range(20))
        keys = [m.key for m in index.range_search(5, 10, include_low=True, include_high=False)]
        assert keys == [5, 6, 7, 8, 9]
        keys = [m.key for m in index.range_search(5, 10, include_low=False, include_high=True)]
        assert keys == [6, 7, 8, 9, 10]

    def test_unbounded_range_returns_everything_in_order(self):
        index = make_index(leaf_capacity=4, internal_capacity=4)
        index.bulk_load((i, rid(i)) for i in range(50))
        keys = [m.key for m in index.range_search(None, None)]
        assert keys == list(range(50))

    def test_range_with_duplicates(self):
        index = make_index()
        index.bulk_load((i % 3, rid(i)) for i in range(30))
        matches = list(index.range_search(1, 1, include_low=True, include_high=True))
        assert len(matches) == 10
        assert all(m.key == 1 for m in matches)

    def test_empty_range(self):
        index = make_index()
        index.bulk_load((i * 10, rid(i)) for i in range(10))
        assert list(index.range_search(41, 49, include_low=True, include_high=True)) == []

    def test_match_entry_addresses_lie_in_index_region(self):
        space = AddressSpace()
        index = BTreeIndex("idx", space)
        index.bulk_load((i, rid(i)) for i in range(100))
        for match in index.range_search(10, 20):
            assert space.region_of(match.entry_address) == "index"


class TestDescend:
    def test_descend_visits_height_nodes_ending_at_leaf(self):
        index = make_index(leaf_capacity=4, internal_capacity=4)
        index.bulk_load((i, rid(i)) for i in range(200))
        steps = index.descend(57)
        assert len(steps) == index.height
        assert steps[-1].is_leaf
        assert all(not step.is_leaf for step in steps[:-1])

    def test_descend_single_leaf_tree(self):
        index = make_index()
        index.insert(1, rid(1))
        steps = index.descend(1)
        assert len(steps) == 1 and steps[0].is_leaf


class TestDelete:
    def test_delete_specific_rid(self):
        index = make_index()
        index.insert(5, rid(1))
        index.insert(5, rid(2))
        removed = index.delete(5, rid(1))
        assert removed == 1
        assert index.search(5) == [rid(2)]

    def test_delete_all_under_key(self):
        index = make_index(leaf_capacity=4, internal_capacity=4)
        index.bulk_load((i % 5, rid(i)) for i in range(50))
        removed = index.delete(2)
        assert removed == 10
        assert index.search(2) == []
        assert len(index) == 40

    def test_delete_missing_key_is_noop(self):
        index = make_index()
        index.bulk_load((i, rid(i)) for i in range(10))
        assert index.delete(99) == 0
        assert len(index) == 10
